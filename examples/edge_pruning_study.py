#!/usr/bin/env python
"""Study the degree-sensitive edge dropout (DegreeDrop) vs uniform DropEdge.

Run with:
    python examples/edge_pruning_study.py [dataset]

The script reproduces, at example scale, the convergence comparison of
Fig. 3(a) (best validation epoch per dropout ratio) and the accuracy
comparison of Table IV (recall/NDCG at the best epoch), and prints how the
item-degree distribution of the dataset (Fig. 4) explains the gap.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import (
    ExperimentScale,
    degree_skew_summary,
    format_table,
    run_convergence_sweep,
    run_degree_cdf,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", nargs="?", default="mooc",
                        choices=["mooc", "games", "food", "yelp"])
    parser.add_argument("--ratios", type=float, nargs="+", default=[0.2, 0.5, 0.7])
    parser.add_argument("--epochs", type=int, default=25)
    args = parser.parse_args()

    scale = ExperimentScale(embedding_dim=32, epochs=args.epochs, dataset_scale=0.6)

    print(f"=== item-degree profile of '{args.dataset}' (context for Fig. 4) ===")
    cdf = run_degree_cdf(datasets=(args.dataset,), scale=0.6)
    print(format_table(degree_skew_summary(cdf),
                       ["dataset", "num_items", "mean_degree", "median_degree",
                        "p90_degree", "max_degree", "share_rooted_below_10"]))

    print(f"\n=== convergence and accuracy per dropout ratio ({args.dataset}) ===")
    rows = run_convergence_sweep(dataset=args.dataset, ratios=tuple(args.ratios), scale=scale)
    print(format_table(rows, ["dropout_type", "dropout_ratio", "best_epoch",
                              "best_valid_score", "recall@20"]))

    for dropout_type in ("dropedge", "degreedrop"):
        epochs = [row["best_epoch"] for row in rows if row["dropout_type"] == dropout_type]
        print(f"mean best epoch with {dropout_type:>10s}: {np.mean(epochs):.1f}")
    print("\nThe paper's observation: DegreeDrop converges in fewer epochs and is most "
          "helpful on datasets whose items have large degrees (e.g. the MOOC preset).")


if __name__ == "__main__":
    main()
