#!/usr/bin/env python
"""Over-smoothing study: accuracy vs GCN depth for LayerGCN and LightGCN.

Run with:
    python examples/layer_depth_study.py [dataset]

Reproduces the qualitative behaviour of Fig. 6 and Table III: LightGCN's
accuracy peaks at a shallow depth and then degrades as layers are stacked
(over-smoothing), while LayerGCN's layer refinement keeps deeper models
competitive.  Also prints the Fig. 1 / Fig. 5 weighting trajectories that
motivate the design.
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    ExperimentScale,
    format_layer_sweep,
    run_layer_sweep,
    run_layer_similarities,
    run_weight_collapse,
    summarize_trajectory,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", nargs="?", default="mooc",
                        choices=["mooc", "games", "food", "yelp"])
    parser.add_argument("--depths", type=int, nargs="+", default=[1, 2, 4, 6])
    parser.add_argument("--epochs", type=int, default=25)
    args = parser.parse_args()

    scale = ExperimentScale(embedding_dim=32, epochs=args.epochs, dataset_scale=0.6)

    print(f"=== accuracy vs depth on '{args.dataset}' (Fig. 6 / Table III) ===")
    rows = run_layer_sweep(dataset=args.dataset, layers=tuple(args.depths), scale=scale)
    print(format_layer_sweep(rows))

    print("\n=== learnable layer weights of LightGCN (Fig. 1) ===")
    collapse = run_weight_collapse(dataset=args.dataset, num_layers=4, scale=scale)
    labels = ["ego"] + [f"{i}-hop" for i in range(1, 5)]
    print(summarize_trajectory(collapse["trajectory"], labels))
    print(f"ego-layer weight moved from {collapse['ego_weight_initial']:.3f} "
          f"to {collapse['ego_weight_final']:.3f} during training")

    print("\n=== LayerGCN refinement similarities (Fig. 5) ===")
    sims = run_layer_similarities(dataset=args.dataset, num_layers=4, scale=scale)
    print(summarize_trajectory(sims["trajectory"], [f"{i}-hop" for i in range(1, 5)]))
    print(f"largest single-layer share of the weighting: {sims['max_final_share']:.3f} "
          "(no ego-layer collapse)")


if __name__ == "__main__":
    main()
