#!/usr/bin/env python
"""Quickstart: train LayerGCN on a synthetic dataset and produce recommendations.

Run with:
    python examples/quickstart.py

The script generates a small implicit-feedback dataset, splits it
chronologically (70/10/20 as in the paper), trains LayerGCN with
degree-sensitive edge dropout, evaluates Recall@K / NDCG@K under the
all-ranking protocol, and prints the top recommendations for a few users.
"""

from __future__ import annotations

from repro import LayerGCN, Trainer, TrainerConfig, evaluate_model, prepare_split


def main() -> None:
    # 1. Data: a Games-like synthetic preset, chronologically split.
    split = prepare_split("games", seed=0, scale=0.5)
    print(f"dataset: {split}")

    # 2. Model: LayerGCN with the paper's default configuration
    #    (4 layers, DegreeDrop edge pruning, BPR + L2 objective).
    model = LayerGCN(
        split,
        embedding_dim=32,
        num_layers=4,
        edge_dropout="degreedrop",
        dropout_ratio=0.1,
        l2_reg=1e-3,
        seed=0,
    )
    print(f"model: {model} ({model.num_parameters()} parameters)")

    # 3. Training with validation-based early stopping.  Batching is owned
    #    by the vectorized repro.data.pipeline subsystem: batch_size (and,
    #    for multi-negative models, num_negatives) can be set here instead
    #    of on the model, and negatives are sampled for whole batches at a
    #    time against the engine's CSR index.
    config = TrainerConfig(
        learning_rate=0.005,
        epochs=30,
        early_stopping_patience=5,
        validation_metric="recall@20",
        batch_size=1024,
        verbose=True,
    )
    history = Trainer(model, split, config).fit()
    print(f"trained for {history.num_epochs_run} epochs; "
          f"best validation recall@20={history.best_score:.4f} at epoch {history.best_epoch}")

    # 4. Evaluation with the all-ranking protocol (Recall@K / NDCG@K).
    result = evaluate_model(model, split, ks=(10, 20, 50))
    print("test metrics:", result.format_row(["recall@10", "recall@20", "recall@50",
                                              "ndcg@10", "ndcg@20", "ndcg@50"]))

    # 5. Serving: the engine's RecommendationService batches top-K requests,
    #    excludes training items through a precomputed index and caches
    #    repeated per-user requests in an LRU.
    service = model.inference_service()
    batch_top5 = service.top_k(range(3), k=5)
    for user, items in enumerate(batch_top5):
        print(f"user {user}: top-5 recommended items -> {[int(i) for i in items]}")
    service.recommend(0, k=5)
    service.recommend(0, k=5)  # second call is served from the LRU cache
    print(f"service state: {service!r}")

    # 6. Sharded serving: past the single-worker memory wall the item
    #    catalogue partitions item-wise into S shards; each shard ranks its
    #    own candidates and the exact merge reproduces the unsharded ranking
    #    bit-for-bit.  parallel=True fans shard scoring out over threads
    #    (the per-shard matmul releases the GIL).  Same flags on the CLI:
    #    `repro recommend --shards 4 --parallel`.
    from repro.engine import RecommendationService

    sharded = RecommendationService(model, split, num_shards=4, parallel=True)
    sharded_top5 = sharded.top_k(range(3), k=5)
    assert (batch_top5 == sharded_top5).all(), "sharding must be exact"
    print(f"sharded service (identical results): {sharded!r}")
    sharded.close()

    # 7. Quantised two-stage serving: past the point where even one exact
    #    full-catalogue pass per request is too expensive, candidate_mode
    #    scores a quantised item matrix first (int8 codes are ~6x smaller
    #    than the float64 snapshot), keeps candidate_factor*k candidates per
    #    user under a Cauchy–Schwarz upper bound, and rescores only those
    #    exactly.  Each batch reports a certificate: when it fires, the
    #    result is provably identical to exhaustive search.  Same flags on
    #    the CLI: `repro recommend --candidates int8 --candidate-factor 8`.
    quantised = RecommendationService(model, split, candidate_mode="int8",
                                      candidate_factor=8)
    quantised_top5 = quantised.top_k(range(3), k=5)
    stats = quantised.certificate_stats
    print(f"quantised service: {stats['certified_users']}/{stats['users']} "
          f"users certified exact ({stats['mode']}, "
          f"factor {stats['factor']})")
    if quantised.candidates.last_certificate.all_certified:
        assert (batch_top5 == quantised_top5).all(), \
            "a fired certificate guarantees exact results"

    # 8. Online serving: new interactions stream in without a rebuild.
    #    ingest() folds events into a delta overlaid on the frozen exclusion
    #    index — consumed items drop out of those users' lists immediately,
    #    unseen user ids get a fallback embedding row, only touched users
    #    lose their cache entries, and compact() merges the delta into a
    #    fresh index bit-identical to a from-scratch rebuild.  Same flow on
    #    the CLI: `repro recommend --ingest events.csv --compact-threshold N`.
    from repro.engine import OnlineRecommendationService

    online = OnlineRecommendationService(model, split, compact_threshold=10_000)
    before = online.recommend(0, k=5)
    stats = online.ingest([0, 0], [before[0], before[1]])  # user 0 consumes two
    after = online.recommend(0, k=5)
    assert before[0] not in after and before[1] not in after
    print(f"online ingest: {stats['ingested']} new pairs folded in; "
          f"user 0 top-5 {before} -> {after}")
    online.compact()
    # top_k bypasses the LRU cache, so this genuinely re-serves post-compact.
    assert [int(i) for i in online.top_k([0], k=5)[0]] == after, \
        "compaction never changes results"
    print(f"online service state: {online!r}")

    # 9. Zero-copy snapshots: freeze the whole serving state (embeddings,
    #    item norms, exclusion CSR, quantised blocks) into ONE versioned,
    #    checksummed file, then serve straight from it — load_snapshot maps
    #    the sections read-only and zero-copy, so a worker's cold start is
    #    O(open) instead of re-freezing from the model.  executor="process"
    #    fans shards out to worker processes that re-open the snapshot by
    #    offset (no matrices are ever pickled); the merge stays bit-exact.
    #    Same flow on the CLI:
    #      repro snapshot save games.snap --model layergcn --dataset games
    #      repro snapshot inspect games.snap
    #      repro recommend --snapshot games.snap --shards 4 --executor process
    import tempfile
    from pathlib import Path

    from repro.engine import save_snapshot

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = save_snapshot(Path(tmp) / "games.snap", service.index)
        print(f"snapshot: {snap_path.stat().st_size} bytes on disk")
        with RecommendationService(snapshot=snap_path, num_shards=4,
                                   executor="process") as from_disk:
            snapshot_top5 = from_disk.top_k(range(3), k=5)
        assert (batch_top5 == snapshot_top5).all(), \
            "snapshot serving must be bit-identical to in-memory serving"
        print("snapshot-served results identical across 4 worker processes")

    # 10. Async micro-batching frontend: production traffic is many
    #     concurrent single-user requests, not pre-formed batches.  The
    #     frontend coalesces concurrent `await recommend(...)` calls (and
    #     `await ingest(...)` events) into shared scoring batches within a
    #     batch_window_ms deadline — results stay bit-identical to calling
    #     service.top_k directly, and a bounded queue sheds load above
    #     max_pending.  Same flow on the CLI:
    #       repro recommend --serve --batch-window-ms 5 --max-batch-size 32
    import asyncio

    from repro.engine import AsyncRecommendationFrontend

    async def concurrent_clients():
        async with AsyncRecommendationFrontend(
                service, max_batch_size=32, batch_window_ms=5.0) as frontend:
            rows = await asyncio.gather(
                *[frontend.recommend(user, 5) for user in range(32)])
            return rows, frontend.stats()

    rows, stats = asyncio.run(concurrent_clients())
    direct = service.top_k(range(32), k=5)
    assert all(row == [int(i) for i in want]
               for row, want in zip(rows, direct)), \
        "coalescing never changes results"
    print(f"async frontend: {stats['requests']} concurrent requests served "
          f"in {stats['batches']} batches "
          f"(mean occupancy {stats['mean_occupancy']:.1f}); "
          f"cache {service.cache_stats()['hit_rate']:.0%} hit rate")

    # 11. Multi-host serving over sockets: when the catalogue outgrows one
    #     host, each shard runs as its own server process (here two on
    #     localhost; in production one per host via `repro shard-server
    #     games.snap --shard-id I --num-shards S --port P`) serving its
    #     mmap'd slice of the same snapshot.  The router fans every request
    #     out over TCP and keeps the certified exact merge — results stay
    #     bit-identical, and the tier fails closed: a dead shard raises a
    #     typed RemoteShardError (never a silently truncated ranking) and a
    #     shard serving a different snapshot is rejected at handshake.
    #     Same flow on the CLI:
    #       repro recommend --snapshot games.snap --executor remote \
    #           --shard-addr host-a:9000 --shard-addr host-b:9000
    from repro.engine import spawn_shard_server

    with tempfile.TemporaryDirectory() as tmp:
        snap_path = save_snapshot(Path(tmp) / "games.snap", service.index)
        servers = [spawn_shard_server(snap_path, shard_id, 2)
                   for shard_id in range(2)]
        addresses = ["{}:{}".format(*address) for _, address in servers]
        try:
            with RecommendationService(snapshot=snap_path, executor="remote",
                                       shard_addresses=addresses) as router:
                remote_top5 = router.top_k(range(3), k=5)
            assert (batch_top5 == remote_top5).all(), \
                "remote serving must be bit-identical to in-memory serving"
            print(f"remote-served results identical across 2 shard servers "
                  f"({', '.join(addresses)})")
        finally:
            for process, _ in servers:
                process.terminate()
                process.join()

    # 12. Fault tolerance: each --shard-addr can name a replica SET
    #     (`h1:p,h2:p`).  Kill a replica mid-traffic and the router fails
    #     over to its sibling — the answer never changes, only which
    #     replica computes it; a per-replica circuit breaker keeps the dead
    #     one out of the hot path until a half-open probe revives it.  The
    #     WAL makes ingest durable: with wal_path=…, acknowledged events
    #     are replayed on restart bit-identically to a service that never
    #     crashed.  Same flow on the CLI:
    #       repro recommend --executor remote \
    #           --shard-addr host-a:9000,host-b:9000 \
    #           --wal ingest.wal --wal-fsync always
    with tempfile.TemporaryDirectory() as tmp:
        snap_path = save_snapshot(Path(tmp) / "games.snap", service.index)
        replicas = [spawn_shard_server(snap_path, 0, 1) for _ in range(2)]
        replica_set = [["{}:{}".format(*address) for _, address in replicas]]
        try:
            with RecommendationService(snapshot=snap_path, executor="remote",
                                       shard_addresses=replica_set) as router:
                before_kill = router.top_k(range(3), k=5)
                # Kill whichever replica is serving the traffic.
                health = router.health_stats()
                busy = max(range(2), key=lambda r:
                           health["shards"][0]["replicas"][r]["requests"])
                replicas[busy][0].kill()
                replicas[busy][0].join()
                after_kill = router.top_k(range(3), k=5)
                assert (before_kill == after_kill).all(), \
                    "failover never changes results"
                failovers = router.health_stats()["failovers"]
            print(f"replica kill absorbed: {failovers} failover(s), "
                  f"results bit-identical")
        finally:
            for process, _ in replicas:
                if process.is_alive():
                    process.terminate()
                process.join()

        wal_path = Path(tmp) / "ingest.wal"
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as durable:
            target = int(durable.top_k([0], k=1)[0][0])
            durable.ingest([0], [target])  # acked => on disk
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as recovered:
            assert recovered.wal_replayed == 1
            assert target not in recovered.top_k([0], k=5)[0], \
                "acknowledged ingest must survive a restart"
            print(f"WAL recovery: {recovered.wal_replayed} acknowledged "
                  f"batch replayed bit-identically after restart")

    # 13. Observability: every hot path is instrumented into a process
    #     metrics registry (counters + exact-percentile latency
    #     histograms), and installing a Tracer turns each request into a
    #     span tree — carried across asyncio, the frontend's worker
    #     thread, and even the remote wire protocol, so a sharded
    #     request's tree contains the spans the shard SERVERS recorded.
    #     Instrumentation is observation only: results stay
    #     bit-identical with telemetry on or off (gated in CI).
    #     service.stats() is the one unified surface over every stats
    #     dict (cache, certificates, health, online, wal, frontend,
    #     faults, metrics).  Same flow on the CLI:
    #       repro recommend --executor remote --shard-addr … --trace 3
    #       repro recommend --json … | repro stats -
    from repro.engine import Tracer, format_trace, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            snap_path = save_snapshot(Path(tmp) / "games.snap", service.index)
            servers = [spawn_shard_server(snap_path, shard_id, 2)
                       for shard_id in range(2)]
            addresses = ["{}:{}".format(*address) for _, address in servers]
            try:
                with RecommendationService(
                        snapshot=snap_path, executor="remote",
                        shard_addresses=addresses) as router:
                    router.top_k(range(3), k=5)
                    stats = router.stats()
            finally:
                for process, _ in servers:
                    process.terminate()
                    process.join()
    finally:
        set_tracer(None)
    slowest = tracer.slowest(1)[0]
    shard_spans = sum(1 for s in slowest.spans() if s.origin == "shard")
    assert shard_spans == 2, "shard-server spans must stitch into the trace"
    print("slowest request trace (note the [shard] spans that crossed "
          "the wire):")
    print(format_trace(slowest))
    counters = stats["metrics"]["counters"]
    top_k_ms = stats["metrics"]["histograms"]["service.top_k_s"]["p50"] * 1e3
    print(f"unified stats: {counters['remote.requests']} remote requests, "
          f"{counters['service.top_k_calls']} top_k call(s), "
          f"p50 {top_k_ms:.2f} ms; sections = {sorted(stats)}")


if __name__ == "__main__":
    main()
