#!/usr/bin/env python
"""Train LayerGCN on your own interaction log (CSV of user, item, timestamp).

Run with:
    python examples/custom_dataset.py path/to/interactions.csv
    python examples/custom_dataset.py              # demo mode with a generated CSV

The CSV needs a header and three columns: user id, item id, unix timestamp
(ids may be arbitrary strings).  The script applies the paper's preprocessing
(k-core filtering, chronological 70/10/20 split with cold-start removal),
trains LayerGCN and writes the top-10 recommendations per user to stdout.
"""

from __future__ import annotations

import argparse
import csv
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import LayerGCN, Trainer, TrainerConfig, evaluate_model
from repro.data import chronological_split, k_core_filter, load_interactions_csv


def _write_demo_csv() -> Path:
    """Generate a small demo CSV so the example runs without arguments."""
    rng = np.random.default_rng(0)
    path = Path(tempfile.mkstemp(suffix=".csv")[1])
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user", "item", "timestamp"])
        for t in range(4000):
            user = f"user-{rng.integers(200)}"
            item = f"item-{int(rng.zipf(1.3)) % 120}"
            writer.writerow([user, item, t])
    print(f"(demo mode) generated synthetic interaction log at {path}")
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path", nargs="?", default=None)
    parser.add_argument("--k-core", type=int, default=3,
                        help="minimum interactions per user and per item")
    parser.add_argument("--epochs", type=int, default=30)
    args = parser.parse_args()

    csv_path = Path(args.csv_path) if args.csv_path else _write_demo_csv()
    if not csv_path.exists():
        sys.exit(f"no such file: {csv_path}")

    dataset = load_interactions_csv(csv_path, name=csv_path.stem)
    print(f"loaded {dataset}")
    dataset = k_core_filter(dataset, k_user=args.k_core, k_item=args.k_core)
    print(f"after {args.k_core}-core filtering: {dataset}")

    split = chronological_split(dataset)
    print(f"split: {split}")

    model = LayerGCN(split, embedding_dim=32, num_layers=4,
                     edge_dropout="degreedrop", dropout_ratio=0.1, seed=0)
    config = TrainerConfig(learning_rate=0.005, epochs=args.epochs,
                           early_stopping_patience=5)
    Trainer(model, split, config).fit()

    result = evaluate_model(model, split, ks=(10, 20))
    print("held-out metrics:", result.format_row(["recall@10", "recall@20",
                                                  "ndcg@10", "ndcg@20"]))

    print("\nsample recommendations (internal item indices):")
    for user in range(min(5, split.num_users)):
        print(f"  user {user}: {model.recommend(user, k=10)}")


if __name__ == "__main__":
    main()
