#!/usr/bin/env python
"""Compare LayerGCN against the paper's baselines on one dataset (mini Table II).

Run with:
    python examples/compare_models.py [dataset] [--full]

``dataset`` is one of mooc / games / food / yelp (default: mooc).  By default a
reduced model list and a scaled-down dataset are used so the script finishes in
about a minute on a laptop; pass ``--full`` to train every Table II model.
"""

from __future__ import annotations

import argparse

from repro.eval import compare_per_user
from repro.experiments import (
    ExperimentScale,
    TABLE2_MODELS,
    format_table,
    load_splits,
    metric_keys,
    train_and_evaluate,
)

QUICK_MODELS = ("BPR", "LightGCN", "UltraGCN", "LayerGCN (w/o Dropout)", "LayerGCN (Full)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", nargs="?", default="mooc",
                        choices=["mooc", "games", "food", "yelp"])
    parser.add_argument("--full", action="store_true",
                        help="train every Table II model instead of the quick subset")
    parser.add_argument("--epochs", type=int, default=25)
    args = parser.parse_args()

    scale = ExperimentScale(embedding_dim=32, epochs=args.epochs, dataset_scale=0.6)
    split = load_splits([args.dataset], scale=scale)[args.dataset]
    print(f"dataset: {split}\n")

    model_names = list(TABLE2_MODELS) if args.full else list(QUICK_MODELS)
    rows = []
    results = {}
    for display_name in model_names:
        spec = TABLE2_MODELS[display_name]
        print(f"training {display_name} ...")
        _, history, result = train_and_evaluate(spec["name"], split, scale,
                                                model_kwargs=spec["kwargs"])
        results[display_name] = result
        rows.append({"model": display_name, "best_epoch": history.best_epoch,
                     **result.as_dict()})

    print()
    print(format_table(rows, ["model"] + metric_keys(scale.eval_ks) + ["best_epoch"]))

    if "LayerGCN (Full)" in results and "LightGCN" in results:
        report = compare_per_user(results["LayerGCN (Full)"], results["LightGCN"], "recall@20")
        print(f"\nLayerGCN (Full) vs LightGCN on recall@20: "
              f"improvement {report.improvement:+.2f}%, p-value {report.p_value:.4f} "
              f"({'significant' if report.significant else 'not significant'} at 0.05)")


if __name__ == "__main__":
    main()
