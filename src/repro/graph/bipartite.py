"""Bipartite user-item interaction graph.

The paper treats the interaction matrix :math:`R \\in \\{0,1\\}^{N_U \\times N_I}`
as a bipartite graph whose adjacency matrix is

.. math::

    A = \\begin{pmatrix} 0 & R \\\\ R^\\top & 0 \\end{pmatrix}    \\qquad (Eq.~4)

with users occupying node indices ``[0, num_users)`` and items occupying
``[num_users, num_users + num_items)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["BipartiteGraph"]


@dataclass(frozen=True)
class _GraphStats:
    """Simple container for summary statistics used by Table I."""

    num_users: int
    num_items: int
    num_interactions: int
    sparsity: float


class BipartiteGraph:
    """Immutable user-item bipartite interaction graph.

    Parameters
    ----------
    num_users, num_items:
        Sizes of the two node partitions.
    user_indices, item_indices:
        Parallel integer arrays describing the observed interactions.  Item
        indices are *local* (``0 .. num_items-1``); the graph maps them to the
        global node id space internally.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        user_indices: Sequence[int],
        item_indices: Sequence[int],
    ) -> None:
        user_indices = np.asarray(user_indices, dtype=np.int64)
        item_indices = np.asarray(item_indices, dtype=np.int64)
        if user_indices.shape != item_indices.shape:
            raise ValueError("user_indices and item_indices must have the same length")
        if user_indices.size and (user_indices.min() < 0 or user_indices.max() >= num_users):
            raise ValueError("user index out of range")
        if item_indices.size and (item_indices.min() < 0 or item_indices.max() >= num_items):
            raise ValueError("item index out of range")

        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.user_indices = user_indices
        self.item_indices = item_indices

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Total node count N = N_U + N_I."""
        return self.num_users + self.num_items

    @property
    def num_edges(self) -> int:
        """Number of user-item interactions M (undirected edges)."""
        return int(self.user_indices.size)

    @property
    def sparsity(self) -> float:
        """1 - |E| / (N_U * N_I), matching the 'Sparsity' column of Table I."""
        possible = self.num_users * self.num_items
        if possible == 0:
            return 1.0
        return 1.0 - self.num_edges / possible

    def stats(self) -> _GraphStats:
        return _GraphStats(self.num_users, self.num_items, self.num_edges, self.sparsity)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(users={self.num_users}, items={self.num_items}, "
            f"edges={self.num_edges}, sparsity={self.sparsity:.4%})"
        )

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #
    def interaction_matrix(self) -> sp.csr_matrix:
        """The binary interaction matrix R (users x items)."""
        values = np.ones(self.num_edges, dtype=np.float64)
        matrix = sp.csr_matrix(
            (values, (self.user_indices, self.item_indices)),
            shape=(self.num_users, self.num_items),
        )
        # Collapse duplicate interactions to a single binary entry.
        matrix.data[:] = 1.0
        return matrix

    def adjacency_matrix(
        self,
        user_indices: Optional[np.ndarray] = None,
        item_indices: Optional[np.ndarray] = None,
    ) -> sp.csr_matrix:
        """Symmetric bipartite adjacency A over the full node id space (Eq. 4).

        ``user_indices``/``item_indices`` default to every observed edge; the
        pruning samplers pass a subset to build the sparsified adjacency A_p.
        """
        if user_indices is None:
            user_indices = self.user_indices
        if item_indices is None:
            item_indices = self.item_indices
        user_indices = np.asarray(user_indices, dtype=np.int64)
        item_indices = np.asarray(item_indices, dtype=np.int64)
        item_nodes = item_indices + self.num_users
        rows = np.concatenate([user_indices, item_nodes])
        cols = np.concatenate([item_nodes, user_indices])
        values = np.ones(rows.size, dtype=np.float64)
        adjacency = sp.csr_matrix((values, (rows, cols)), shape=(self.num_nodes, self.num_nodes))
        adjacency.data[:] = 1.0
        return adjacency

    # ------------------------------------------------------------------ #
    # Degree views
    # ------------------------------------------------------------------ #
    def user_degrees(self) -> np.ndarray:
        """Number of interactions per user."""
        return np.bincount(self.user_indices, minlength=self.num_users).astype(np.float64)

    def item_degrees(self) -> np.ndarray:
        """Number of interactions per item."""
        return np.bincount(self.item_indices, minlength=self.num_items).astype(np.float64)

    def node_degrees(self) -> np.ndarray:
        """Degrees over the full node id space (users then items)."""
        return np.concatenate([self.user_degrees(), self.item_degrees()])

    def edge_endpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """Global node ids (user node, item node) of every edge."""
        return self.user_indices.copy(), self.item_indices + self.num_users

    # ------------------------------------------------------------------ #
    # Neighbourhood access
    # ------------------------------------------------------------------ #
    def user_items(self) -> Dict[int, np.ndarray]:
        """Mapping user -> sorted array of interacted item indices."""
        matrix = self.interaction_matrix()
        return {
            user: matrix.indices[matrix.indptr[user]:matrix.indptr[user + 1]]
            for user in range(self.num_users)
        }

    def positive_item_sets(self) -> List[set]:
        """Per-user set of interacted items, used by the negative samplers."""
        sets: List[set] = [set() for _ in range(self.num_users)]
        for user, item in zip(self.user_indices, self.item_indices):
            sets[user].add(int(item))
        return sets

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]], num_users: Optional[int] = None,
                   num_items: Optional[int] = None) -> "BipartiteGraph":
        """Build a graph from an iterable of ``(user, item)`` pairs."""
        pairs = list(pairs)
        if pairs:
            users, items = zip(*pairs)
        else:
            users, items = (), ()
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if num_users is None:
            num_users = int(users.max()) + 1 if users.size else 0
        if num_items is None:
            num_items = int(items.max()) + 1 if items.size else 0
        return cls(num_users, num_items, users, items)
