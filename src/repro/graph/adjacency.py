"""Adjacency normalisation utilities.

Two normalisations appear in the paper:

* ``symmetric_normalize`` — :math:`D^{-1/2} A D^{-1/2}`, the LightGCN /
  LayerGCN transition matrix (Eq. 2 and the matrix used at inference).
* ``renormalize`` — the GCN "re-normalisation trick"
  :math:`\\hat{D}^{-1/2} (A + I) \\hat{D}^{-1/2}` (Eq. 1), also applied to the
  pruned adjacency :math:`A_p` during LayerGCN training (Section III-B-1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .bipartite import BipartiteGraph

__all__ = [
    "symmetric_normalize",
    "renormalize",
    "add_self_loops",
    "normalized_adjacency",
    "propagation_matrix",
]


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` in CSR format."""
    n = adjacency.shape[0]
    return (adjacency + weight * sp.eye(n, format="csr")).tocsr()


def symmetric_normalize(adjacency: sp.spmatrix, eps: float = 1e-12) -> sp.csr_matrix:
    """Symmetric normalisation :math:`D^{-1/2} A D^{-1/2}`.

    Isolated nodes (degree 0) keep all-zero rows/columns instead of producing
    NaNs; ``eps`` only guards the division.
    """
    adjacency = adjacency.tocsr().astype(np.float64)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > eps
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    d_inv_sqrt = sp.diags(inv_sqrt)
    return (d_inv_sqrt @ adjacency @ d_inv_sqrt).tocsr()


def renormalize(adjacency: sp.spmatrix, self_loop_weight: float = 1.0) -> sp.csr_matrix:
    """GCN re-normalisation trick: :math:`\\hat{D}^{-1/2} (A + I) \\hat{D}^{-1/2}`."""
    return symmetric_normalize(add_self_loops(adjacency, weight=self_loop_weight))


def normalized_adjacency(graph: BipartiteGraph, self_loops: bool = False) -> sp.csr_matrix:
    """Normalised adjacency of the full bipartite graph.

    ``self_loops=False`` gives the LightGCN/LayerGCN transition matrix,
    ``self_loops=True`` gives the vanilla-GCN re-normalised matrix.
    """
    adjacency = graph.adjacency_matrix()
    if self_loops:
        return renormalize(adjacency)
    return symmetric_normalize(adjacency)


def propagation_matrix(
    graph: BipartiteGraph,
    user_indices: Optional[np.ndarray] = None,
    item_indices: Optional[np.ndarray] = None,
    self_loops: bool = False,
) -> sp.csr_matrix:
    """Normalised propagation matrix for an (optionally pruned) edge subset.

    This is the matrix :math:`\\hat{A}_p` that LayerGCN uses during training
    (Section III-B-1): build the adjacency from the retained edges, then apply
    the same normalisation as for the full graph.
    """
    adjacency = graph.adjacency_matrix(user_indices=user_indices, item_indices=item_indices)
    if self_loops:
        return renormalize(adjacency)
    return symmetric_normalize(adjacency)
