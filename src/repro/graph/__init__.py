"""Graph substrate: bipartite interaction graphs, normalisation and pruning."""

from .bipartite import BipartiteGraph
from .adjacency import (
    add_self_loops,
    normalized_adjacency,
    propagation_matrix,
    renormalize,
    symmetric_normalize,
)
from .pruning import DegreeDrop, DropEdge, EdgeDropout, MixedDrop, build_edge_dropout

__all__ = [
    "BipartiteGraph",
    "add_self_loops",
    "normalized_adjacency",
    "propagation_matrix",
    "renormalize",
    "symmetric_normalize",
    "EdgeDropout",
    "DropEdge",
    "DegreeDrop",
    "MixedDrop",
    "build_edge_dropout",
]
