"""Edge-dropout (graph sparsification) strategies.

The paper compares three ways of pruning the training graph each epoch:

* :class:`DropEdge` — uniform random pruning (Rong et al., ICLR 2020), the
  baseline the paper calls "DropEdge"/"EdgeDrop".
* :class:`DegreeDrop` — the proposed degree-sensitive pruning (Eq. 5): an edge
  connecting nodes ``i`` and ``j`` is *kept* with probability proportional to
  :math:`1 / (\\sqrt{d_i}\\sqrt{d_j})`, so edges between popular nodes are the
  most likely to be removed.
* :class:`MixedDrop` — alternates the two on a per-epoch basis (Table V).

All samplers return the *kept* edge index array; the caller rebuilds the
pruned propagation matrix from it via
:func:`repro.graph.adjacency.propagation_matrix`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["EdgeDropout", "DropEdge", "DegreeDrop", "MixedDrop", "build_edge_dropout"]


class EdgeDropout:
    """Base class for edge-dropout samplers.

    Parameters
    ----------
    dropout_ratio:
        Fraction ``m / M`` of edges removed each call.  ``0`` disables pruning.
    rng:
        Optional ``numpy.random.Generator`` for reproducibility.
    """

    name = "none"

    def __init__(self, dropout_ratio: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= dropout_ratio < 1.0:
            raise ValueError("dropout_ratio must lie in [0, 1)")
        self.dropout_ratio = float(dropout_ratio)
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------ #
    def keep_probabilities(self, graph: BipartiteGraph) -> np.ndarray:
        """Unnormalised per-edge keep weights; subclasses override."""
        return np.ones(graph.num_edges, dtype=np.float64)

    def num_kept(self, num_edges: int) -> int:
        """Number of edges retained after pruning (M - m)."""
        kept = int(round(num_edges * (1.0 - self.dropout_ratio)))
        return max(1, min(num_edges, kept)) if num_edges else 0

    def sample_edges(self, graph: BipartiteGraph, epoch: int = 0) -> np.ndarray:
        """Indices (into the graph's edge arrays) of the edges to keep."""
        num_edges = graph.num_edges
        if num_edges == 0:
            return np.empty(0, dtype=np.int64)
        if self.dropout_ratio <= 0.0:
            return np.arange(num_edges, dtype=np.int64)
        kept = self.num_kept(num_edges)
        weights = self.keep_probabilities(graph)
        total = weights.sum()
        if total <= 0:
            probabilities = np.full(num_edges, 1.0 / num_edges)
        else:
            probabilities = weights / total
        return self.rng.choice(num_edges, size=kept, replace=False, p=probabilities)

    def __call__(self, graph: BipartiteGraph, epoch: int = 0) -> np.ndarray:
        return self.sample_edges(graph, epoch=epoch)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dropout_ratio={self.dropout_ratio})"


class DropEdge(EdgeDropout):
    """Uniform random edge pruning (the DropEdge baseline)."""

    name = "dropedge"

    def keep_probabilities(self, graph: BipartiteGraph) -> np.ndarray:
        return np.ones(graph.num_edges, dtype=np.float64)


class DegreeDrop(EdgeDropout):
    """Degree-sensitive edge pruning (Eq. 5 of the paper).

    The keep probability of edge ``e = (i, j)`` is
    ``p_e = 1 / (sqrt(d_i) * sqrt(d_j))`` where the degrees are taken on the
    *full* training graph, so edges between two popular nodes are dropped
    preferentially.
    """

    name = "degreedrop"

    def keep_probabilities(self, graph: BipartiteGraph) -> np.ndarray:
        user_deg = graph.user_degrees()
        item_deg = graph.item_degrees()
        d_u = user_deg[graph.user_indices]
        d_i = item_deg[graph.item_indices]
        product = np.sqrt(np.maximum(d_u, 1.0)) * np.sqrt(np.maximum(d_i, 1.0))
        return 1.0 / product


class MixedDrop(EdgeDropout):
    """Alternate DegreeDrop and DropEdge across epochs (Table V, "Mixed").

    Even epochs use the degree-sensitive distribution, odd epochs use the
    uniform one; the paper describes this as "alternating degree-sensitive and
    random pruning".
    """

    name = "mixed"

    def __init__(self, dropout_ratio: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(dropout_ratio, rng)
        self._degree = DegreeDrop(dropout_ratio, self.rng)
        self._uniform = DropEdge(dropout_ratio, self.rng)

    def sample_edges(self, graph: BipartiteGraph, epoch: int = 0) -> np.ndarray:
        sampler = self._degree if epoch % 2 == 0 else self._uniform
        return sampler.sample_edges(graph, epoch=epoch)


_REGISTRY = {
    DropEdge.name: DropEdge,
    DegreeDrop.name: DegreeDrop,
    MixedDrop.name: MixedDrop,
    "uniform": DropEdge,
    "degree": DegreeDrop,
}


def build_edge_dropout(kind: str, dropout_ratio: float,
                       rng: Optional[np.random.Generator] = None) -> Optional[EdgeDropout]:
    """Factory used by model configs: ``kind`` in {'dropedge', 'degreedrop', 'mixed', 'none'}."""
    if kind in (None, "none", ""):
        return None
    key = kind.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown edge-dropout kind '{kind}'; options: {sorted(_REGISTRY)}")
    return _REGISTRY[key](dropout_ratio=dropout_ratio, rng=rng)
