"""Process-local serving telemetry: a metrics registry and request tracing.

Two cooperating facilities, both designed around one non-negotiable
invariant — **instrumentation never changes results**.  Every hook in the
serving stack reads ``time.perf_counter`` and bumps process-local state;
nothing feeds back into scoring, merging, caching, or the wire protocol's
array payloads, so serving with telemetry on is bit-identical to serving
with the no-op registry (pinned by parity tests and
``benchmarks/bench_observability.py``).

**Metrics registry** — named counters, gauges, and fixed-bucket latency
histograms.  Histograms keep a numpy-backed bucket vector (log-spaced
bounds from 1 µs to 50 s by default) plus a bounded window of raw samples
so ``summary()`` reports *exact* p50/p90/p99 over recent observations,
computed with the same sort-and-interpolate percentile math as
``benchmarks/artifacts.py`` (``percentile`` here mirrors it and is pinned
against ``np.percentile`` by tests).  The process-global registry is
swappable: ``set_metrics(NullMetricsRegistry())`` turns every hook into a
no-op, which is how the overhead benchmark measures the cost of telemetry
itself.

Instrument catalogue (stable names; ``_s`` suffix = seconds histogram):

================================  =============================================
``frontend.requests`` etc.        batch assembly / flush / shed counters,
                                  ``frontend.flush_s``, ``frontend.batch_occupancy``
``service.top_k_s``               per-call serving latency; ``service.cache.hits``
                                  / ``.misses`` count cache probes
``candidates.stage1_s`` / ``2_s`` quantised bound pass vs exact rescore,
                                  plus escalation / exact-fallback counters
``sharding.fan_out_s``            executor fan-out wall time; ``sharding.merge_s``
                                  the certified merge; ``sharding.shard.<i>.task_s``
                                  per-shard work (in-process executors)
``remote.request_s``              per round-trip; ``remote.shard.<i>.request_s``
                                  per shard; retries / failovers / breaker
                                  transition counters
``wal.append_s`` / ``fsync_s``    durability path; replay / rotate counters
``online.ingest_s`` etc.          ingest / compact / publish
``server.request_s``              shard-server side execution
================================  =============================================

**Request tracing** — a :class:`TraceContext` (trace id + span stack)
propagated via :mod:`contextvars` through asyncio coroutines and — with an
explicit ``contextvars.copy_context().run`` at the frontend's executor
seam — into the scoring worker thread.  ``traced(name)`` opens a root
trace when a :class:`Tracer` is installed (``set_tracer``) and no trace is
active, or a child span otherwise; with no tracer it is a no-op.  Trace
ids ride the remote wire protocol's JSON meta (never the array payloads):
the router stamps ``fields["trace"] = {"id": ...}`` into each request and
the shard server answers with its own timed spans, which the router
stitches back into the live trace — so one request tree spans processes.
Garbled or missing trace meta always degrades to an untraced request,
never an error.  Completed traces land in the tracer's bounded ring
buffer; ``Tracer.slowest(n)`` backs the CLI's ``--trace N`` flag.
"""
from __future__ import annotations

import bisect
import contextvars
import os
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "metrics",
    "set_metrics",
    "Span",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "current_trace",
    "traced",
    "span",
    "format_trace",
    "trace_request_fields",
    "shard_reply_trace",
    "parse_wire_spans",
]

# Log-spaced latency bounds: 1 µs .. 50 s in a 1 / 2.5 / 5 ladder, plus an
# implicit overflow bucket.  Fixed at registration so bucket counts from
# different processes / runs line up column-for-column.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** exponent * mantissa, 12)
    for exponent in range(-6, 2)
    for mantissa in (1.0, 2.5, 5.0)
)

#: Power-of-two bounds for size-shaped histograms (batch occupancy).
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(2 ** i) for i in range(13))

#: Raw samples retained per histogram for exact percentile reporting.
DEFAULT_SAMPLE_WINDOW = 4096


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact percentile with linear interpolation.

    Same math as ``benchmarks/artifacts.py`` (and numpy's default
    ``np.percentile`` interpolation); duplicated here because the engine
    package cannot import from ``benchmarks/``.  Pinned against
    ``np.percentile`` by ``tests/engine/test_observability.py``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(float(s) for s in samples)
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram plus a bounded raw-sample window.

    Buckets give the coarse shape (bucket ``i`` counts observations in
    ``(bounds[i-1], bounds[i]]``; the final slot is overflow); the sample
    window keeps the last *window* raw values so percentiles are exact
    over recent traffic rather than bucket-interpolated.
    """

    __slots__ = ("name", "bounds", "_counts", "_window", "_pos", "_filled",
                 "_count", "_total", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None,
                 window: int = DEFAULT_SAMPLE_WINDOW) -> None:
        self.name = name
        bounds = tuple(sorted(float(b) for b in
                              (DEFAULT_LATENCY_BUCKETS if buckets is None
                               else buckets)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._window = np.zeros(max(1, int(window)), dtype=np.float64)
        self._pos = 0
        self._filled = 0
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect.bisect_left(self.bounds, value)] += 1
            self._window[self._pos] = value
            self._pos = (self._pos + 1) % self._window.shape[0]
            self._filled = min(self._filled + 1, self._window.shape[0])
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def samples(self) -> np.ndarray:
        """The retained raw-sample window (most recent observations)."""
        with self._lock:
            return self._window[:self._filled].copy()

    def percentile(self, q: float) -> float:
        return percentile(self.samples(), q)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            retained = self._window[:self._filled].copy()
            count = self._count
            total = self._total
            low = self._min
            high = self._max
            counts = self._counts.tolist()
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "total": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": percentile(retained, 50),
            "p90": percentile(retained, 90),
            "p99": percentile(retained, 99),
            "buckets": {"bounds": list(self.bounds), "counts": counts},
        }


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Process-local, lock-cheap registry of named instruments.

    Instrument lookup is a plain dict probe (no lock on the hot path —
    creation falls back to a locked ``setdefault``); counters and
    histograms take a short per-instrument lock only while mutating their
    own state.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, buckets))
        return instrument

    # Convenience single-call forms — these are what the engine hot paths
    # use, so NullMetricsRegistry can void them wholesale.
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, buckets).observe(value)

    def timer(self, name: str):
        """Context manager observing elapsed ``perf_counter`` seconds."""
        return _Timer(self.histogram(name))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "enabled": self.enabled,
            "counters": {name: counters[name].value
                         for name in sorted(counters)},
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {name: histograms[name].summary()
                           for name in sorted(histograms)},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class NullMetricsRegistry(MetricsRegistry):
    """Same surface, no work — the telemetry-off baseline."""

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        pass

    def timer(self, name: str):
        return _NULL_TIMER

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": False, "counters": {}, "gauges": {},
                "histograms": {}}


_metrics: MetricsRegistry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry every instrumentation point writes to."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


# --------------------------------------------------------------------------
# Tracing
# --------------------------------------------------------------------------

class Span:
    """One timed operation inside a trace; spans nest into a tree."""

    __slots__ = ("name", "origin", "started", "duration", "children")

    def __init__(self, name: str, origin: str = "local") -> None:
        self.name = name
        self.origin = origin
        self.started = time.perf_counter()
        self.duration: Optional[float] = None
        self.children: List["Span"] = []

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "origin": self.origin,
            "duration_ms": (None if self.duration is None
                            else self.duration * 1e3),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        ms = "?" if self.duration is None else f"{self.duration * 1e3:.3f}"
        return f"Span({self.name!r}, origin={self.origin!r}, {ms} ms)"


class TraceContext:
    """A trace id plus the span stack for one logical request.

    Propagated through asyncio via a :mod:`contextvars` variable; the
    frontend copies the context across its ``run_in_executor`` seam so the
    scoring worker thread lands inside the same trace.
    """

    __slots__ = ("trace_id", "root", "_stack")

    def __init__(self, name: str, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else os.urandom(8).hex()
        self.root = Span(name)
        self._stack: List[Span] = [self.root]

    def push(self, name: str, origin: str = "local") -> Span:
        child = Span(name, origin)
        self._stack[-1].children.append(child)
        self._stack.append(child)
        return child

    def pop(self, span_: Span) -> None:
        if span_.duration is None:
            span_.duration = time.perf_counter() - span_.started
        if self._stack and self._stack[-1] is span_:
            self._stack.pop()

    def attach(self, spans: Sequence[Span]) -> None:
        """Adopt already-finished spans (e.g. parsed off a shard reply)."""
        self._stack[-1].children.extend(spans)

    def finish(self) -> None:
        while len(self._stack) > 1:          # abandoned children, if any
            self.pop(self._stack[-1])
        if self.root.duration is None:
            self.root.duration = time.perf_counter() - self.root.started

    @property
    def duration(self) -> float:
        if self.root.duration is not None:
            return self.root.duration
        return time.perf_counter() - self.root.started

    def spans(self) -> Iterator[Span]:
        """Depth-first walk over every span in the tree."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def format_tree(self) -> str:
        return format_trace(self)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "duration_ms": self.duration * 1e3,
            "root": self.root.as_dict(),
        }

    def __repr__(self) -> str:
        return (f"TraceContext(id={self.trace_id}, name={self.root.name!r}, "
                f"{self.duration * 1e3:.3f} ms)")


def format_trace(trace: TraceContext) -> str:
    lines = [f"trace {trace.trace_id} · {trace.duration * 1e3:.3f} ms"]

    def walk(span_: Span, prefix: str, is_last: bool) -> None:
        joint = "└─ " if is_last else "├─ "
        ms = ("?" if span_.duration is None
              else f"{span_.duration * 1e3:.3f} ms")
        origin = "" if span_.origin == "local" else f" [{span_.origin}]"
        lines.append(f"{prefix}{joint}{span_.name}{origin}  {ms}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(span_.children):
            walk(child, child_prefix, i == len(span_.children) - 1)

    ms = ("?" if trace.root.duration is None
          else f"{trace.root.duration * 1e3:.3f} ms")
    lines.append(f"{trace.root.name}  {ms}")
    for i, child in enumerate(trace.root.children):
        walk(child, "", i == len(trace.root.children) - 1)
    return "\n".join(lines)


_TRACE_VAR: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_trace", default=None)

_tracer: Optional["Tracer"] = None


class Tracer:
    """Bounded ring buffer of completed traces."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._traces: "deque[TraceContext]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(self, trace: TraceContext) -> None:
        with self._lock:
            self._traces.append(trace)

    @property
    def traces(self) -> List[TraceContext]:
        with self._lock:
            return list(self._traces)

    def slowest(self, n: int) -> List[TraceContext]:
        """The ``n`` slowest retained traces, slowest first."""
        retained = self.traces
        retained.sort(key=lambda t: t.duration, reverse=True)
        return retained[:max(0, int(n))]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


def get_tracer() -> Optional[Tracer]:
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or remove, with ``None``) the global tracer; returns the
    previous one.  With no tracer installed, ``traced`` and ``span`` are
    near-free no-ops."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def current_trace() -> Optional[TraceContext]:
    return _TRACE_VAR.get()


class _TracedHandle:
    """``traced(name)``: root trace if a tracer is installed and none is
    active; child span of the active trace otherwise; else a no-op."""

    __slots__ = ("name", "_trace", "_span", "_token", "_tracer", "_active")

    def __init__(self, name: str) -> None:
        self.name = name
        self._trace = None
        self._span = None
        self._token = None
        self._tracer = None
        self._active = None

    def __enter__(self) -> "_TracedHandle":
        active = _TRACE_VAR.get()
        if active is not None:
            self._active = active
            self._span = active.push(self.name)
        else:
            tracer = _tracer
            if tracer is not None:
                self._tracer = tracer
                self._trace = TraceContext(self.name)
                self._token = _TRACE_VAR.set(self._trace)
        return self

    def __exit__(self, *exc) -> None:
        if self._span is not None:
            self._active.pop(self._span)
        elif self._trace is not None:
            _TRACE_VAR.reset(self._token)
            self._trace.finish()
            self._tracer.record(self._trace)


class _SpanHandle:
    """``span(name)``: child span of the active trace, else a no-op."""

    __slots__ = ("name", "origin", "_trace", "_span")

    def __init__(self, name: str, origin: str) -> None:
        self.name = name
        self.origin = origin
        self._trace = None
        self._span = None

    def __enter__(self) -> "_SpanHandle":
        trace = _TRACE_VAR.get()
        if trace is not None:
            self._trace = trace
            self._span = trace.push(self.name, self.origin)
        return self

    def __exit__(self, *exc) -> None:
        if self._span is not None:
            self._trace.pop(self._span)


def traced(name: str) -> _TracedHandle:
    return _TracedHandle(name)


def span(name: str, origin: str = "local") -> _SpanHandle:
    return _SpanHandle(name, origin)


# --------------------------------------------------------------------------
# Wire-protocol trace meta (remote executor <-> shard server)
# --------------------------------------------------------------------------
# Trace identity rides the JSON meta of the framed protocol, never the
# array payloads: requests carry {"trace": {"id": ...}}, replies carry
# {"trace": {"id": ..., "spans": [...]}}.  Every parser below swallows
# malformed input — garbled trace meta means an untraced request, never a
# failed one.

def trace_request_fields(trace: Optional[TraceContext]) -> Dict[str, object]:
    """Extra request fields announcing the active trace (empty when none)."""
    if trace is None:
        return {}
    return {"trace": {"id": trace.trace_id}}


def shard_reply_trace(request_fields: Dict[str, object], *, shard_id: int,
                      kind: str, duration: float) -> Dict[str, object]:
    """Reply fields echoing the request's trace id with the server's span.

    Returns ``{}`` when the request carried no (well-formed) trace meta.
    """
    try:
        meta = request_fields.get("trace")
        if not isinstance(meta, dict):
            return {}
        trace_id = meta.get("id")
        if not isinstance(trace_id, str) or not trace_id:
            return {}
        return {"trace": {
            "id": trace_id,
            "spans": [{"name": f"shard{int(shard_id)}.{kind}",
                       "origin": "shard", "duration_s": float(duration)}],
        }}
    except Exception:
        return {}


def parse_wire_spans(reply_fields: Dict[str, object],
                     trace_id: str) -> List[Span]:
    """Spans from a shard reply, or ``[]`` on any mismatch or garbage."""
    spans: List[Span] = []
    try:
        meta = reply_fields.get("trace")
        if not isinstance(meta, dict) or meta.get("id") != trace_id:
            return []
        for item in meta.get("spans", []):
            parsed = Span(str(item["name"]),
                          origin=str(item.get("origin", "shard")))
            parsed.duration = float(item["duration_s"])
            spans.append(parsed)
    except Exception:
        return []
    return spans
