"""Multi-host shard serving: TCP shard servers + a socket-backed executor.

The executor seam (:mod:`repro.engine.sharding`) already abstracts *where* a
shard task runs: a payload-shipping executor receives task *descriptions*
(``("top_k", users, k, …)``) instead of closures, executes them against its
own mmap'd view of the snapshot file, and hands small per-shard candidate
arrays back to the router, which keeps the certified exact S·k merge.  This
module adds the last transport: the same payloads over a socket, so one
catalogue spreads across hosts.

* :class:`ShardServer` — one process, one shard.  Opens its slice of a
  published snapshot (zero-copy, via the PR 6 worker cache) and serves exact
  top-k and certified two-stage candidate payloads over a length-prefixed
  binary protocol.  Router-side divergence (``user_block`` overrides after
  online user growth, ``extra_pairs`` exclusions the file does not hold)
  rides along with each request exactly as it does for the process executor,
  so online serving over sockets stays bit-identical too.
* :class:`RemoteExecutor` — ``ships_payloads`` executor bound to a list of
  ``host:port`` addresses, one per shard.  Fans each request out to every
  shard concurrently and returns results in shard order; the router's merge
  is untouched.

Failure semantics are *fail closed*: a request either reflects every shard
or raises :class:`RemoteShardError` — a partial merge is never returned.
Transport faults (connect refused, reset, timeout) are retried with
exponential backoff up to ``max_retries`` times, reconnecting and
re-handshaking each attempt; deterministic rejections (protocol version
mismatch, wrong shard geometry, a shard serving a different snapshot file)
are raised immediately.  The handshake pins protocol version and snapshot
identity via :func:`repro.engine.snapshot.snapshot_fingerprint` — a
content fingerprint, not an inode, so router and shard hosts need not share
a filesystem, only a byte-identical snapshot file.

Wire format (all integers little-endian)::

    frame   := magic[4] body_len[u64] body
    body    := meta_len[u32] meta_json[meta_len] array_bytes...
    meta    := {"kind": str, "fields": {...}, "arrays": [
                   {"name": str, "dtype": str, "shape": [int, ...]}, ...]}

Array buffers are raw C-order bytes concatenated after the JSON header in
declaration order — no pickling anywhere on the wire.
"""

from __future__ import annotations

import json
import math
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

import numpy as np

from .sharding import PARTITION_POLICIES, _ExecutorBase
from .snapshot import (
    _execute_shard_payload,
    _worker_shard,
    snapshot_fingerprint,
)

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteExecutor",
    "RemoteProtocolError",
    "RemoteShardError",
    "ShardServer",
    "parse_address",
    "spawn_shard_server",
]

PROTOCOL_VERSION = 1

_FRAME_MAGIC = b"RSHD"
_FRAME = struct.Struct("<4sQ")  # magic, body length
_META_LEN = struct.Struct("<I")

# Sanity ceiling on a single frame (1 GiB).  A request is O(batch x dim) and
# a reply O(batch x k); anything near this is a corrupt length prefix or a
# foreign peer, and must not turn into an attempted multi-GiB allocation.
MAX_FRAME_BYTES = 1 << 30


class RemoteShardError(RuntimeError):
    """A remote shard could not serve a request (fail-closed).

    Raised by :class:`RemoteExecutor` when any shard is unreachable after
    the bounded retries, rejects the handshake (stale snapshot, wrong
    geometry, protocol mismatch), or reports a server-side failure.  The
    router never falls back to a partial merge.
    """


class RemoteProtocolError(RemoteShardError):
    """A peer sent bytes that do not parse as a protocol frame/message."""


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #

def encode_message(kind: str, fields: Optional[dict] = None,
                   arrays: Optional[dict] = None) -> bytes:
    """Serialise one protocol message to a framed byte string.

    ``fields`` must be JSON-serialisable scalars; ``arrays`` maps names to
    numpy arrays (``None`` values are dropped, signalling absence).
    """
    blocks = []
    specs = []
    for name, array in (arrays or {}).items():
        if array is None:
            continue
        array = np.ascontiguousarray(array)
        specs.append({"name": name, "dtype": array.dtype.str,
                      "shape": list(array.shape)})
        blocks.append(array.tobytes())
    meta = json.dumps({"kind": kind, "fields": fields or {},
                       "arrays": specs}).encode("utf-8")
    body = b"".join([_META_LEN.pack(len(meta)), meta, *blocks])
    return _FRAME.pack(_FRAME_MAGIC, len(body)) + body


def decode_message(body: bytes) -> Tuple[str, dict, dict]:
    """Parse a frame body back into ``(kind, fields, arrays)``."""
    try:
        if len(body) < _META_LEN.size:
            raise ValueError("truncated body")
        (meta_len,) = _META_LEN.unpack_from(body, 0)
        offset = _META_LEN.size + meta_len
        if offset > len(body):
            raise ValueError("meta length exceeds body")
        meta = json.loads(body[_META_LEN.size:offset].decode("utf-8"))
        kind = meta["kind"]
        fields = meta["fields"]
        arrays = {}
        for spec in meta["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            count = math.prod(shape)
            nbytes = count * dtype.itemsize
            if offset + nbytes > len(body):
                raise ValueError(f"array {spec['name']!r} exceeds body")
            arrays[spec["name"]] = np.frombuffer(
                body, dtype=dtype, count=count, offset=offset).reshape(shape)
            offset += nbytes
        return kind, fields, arrays
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
        raise RemoteProtocolError(f"malformed protocol message: {error}") \
            from error


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(min(count - len(chunks), 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.extend(chunk)
    return bytes(chunks)


def _recv_message(sock: socket.socket) -> Tuple[str, dict, dict]:
    """Read one framed message off a socket."""
    header = _recv_exact(sock, _FRAME.size)
    magic, body_len = _FRAME.unpack(header)
    if magic != _FRAME_MAGIC:
        raise RemoteProtocolError(
            f"bad frame magic {magic!r}; peer is not a repro shard endpoint")
    if body_len > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {body_len} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return decode_message(_recv_exact(sock, body_len))


def parse_address(address) -> Tuple[str, int]:
    """Normalise ``"host:port"`` (or an ``(host, port)`` pair) to a tuple."""
    if isinstance(address, (tuple, list)):
        if len(address) != 2:
            raise ValueError(f"address pair must be (host, port): {address!r}")
        host, port = address
    else:
        text = str(address).strip()
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"shard address must look like host:port, got {address!r}")
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ValueError(f"invalid port in shard address {address!r}") \
            from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in shard address {address!r}")
    return str(host), port


# ---------------------------------------------------------------------- #
# Server side
# ---------------------------------------------------------------------- #

class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: handshake first, then request/reply until EOF."""

    def handle(self) -> None:
        owner: ShardServer = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        handshaken = False
        while True:
            try:
                kind, fields, arrays = _recv_message(sock)
            except (ConnectionError, RemoteProtocolError, OSError):
                return  # peer went away or is speaking another protocol
            if owner.request_delay_s > 0.0:
                time.sleep(owner.request_delay_s)
            close_after = False
            try:
                if kind == "handshake":
                    reply, accepted = owner._handshake_reply(fields)
                    handshaken = accepted
                    close_after = not accepted
                elif not handshaken:
                    reply = encode_message("error", {
                        "message": "handshake required before requests"})
                    close_after = True
                elif kind == "ping":
                    reply = encode_message("pong", {"shard_id": owner.shard_id})
                elif kind in ("top_k", "candidates"):
                    reply = owner._execute(kind, fields, arrays)
                else:
                    reply = encode_message("error", {
                        "message": f"unknown request kind {kind!r}"})
            except Exception as error:  # noqa: BLE001 - ship it to the client
                reply = encode_message("error", {
                    "message": f"{type(error).__name__}: {error}"})
            try:
                sock.sendall(reply)
            except OSError:
                return
            if close_after:
                return


class ShardServer:
    """Serve one shard of a published snapshot over TCP.

    One server process holds one shard: at construction it opens its slice
    of ``snapshot_path`` through the shared worker cache (so launch fails
    fast on a missing/corrupt file) and then answers ``top_k`` /
    ``candidates`` payloads exactly as a process-pool worker would — same
    cache, same divergence shipping, same republish detection.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  ``start()`` serves from a daemon thread (tests, embedded
    use); ``serve_forever()`` blocks (the CLI).  ``request_delay_s`` is a
    fault-injection hook for tests/benchmarks: it stalls every request by
    that many seconds so client-side timeout/retry paths can be exercised
    deterministically.
    """

    def __init__(self, snapshot_path, shard_id: int, num_shards: int, *,
                 policy: str = "contiguous", host: str = "127.0.0.1",
                 port: int = 0, request_delay_s: float = 0.0) -> None:
        self.snapshot_path = str(snapshot_path)
        self.num_shards = int(num_shards)
        self.shard_id = int(shard_id)
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0 <= self.shard_id < self.num_shards:
            raise ValueError(f"shard_id {self.shard_id} out of range for "
                             f"{self.num_shards} shards")
        if policy not in PARTITION_POLICIES:
            raise ValueError(f"unknown partition policy {policy!r}; "
                             f"options: {PARTITION_POLICIES}")
        self.policy = policy
        self.request_delay_s = float(request_delay_s)
        # Fail fast: fingerprint + shard slice both validate the file now,
        # not on the first remote request.
        self.fingerprint = snapshot_fingerprint(self.snapshot_path)
        shard, user_embeddings, snapshot, _ = _worker_shard(
            self.snapshot_path, self.num_shards, self.policy, self.shard_id)
        self.num_users = int(user_embeddings.shape[0])
        self.num_items = int(snapshot.num_items)
        self.shard_items = int(shard.item_ids.size)
        self.requests_served = 0
        self._count_lock = threading.Lock()
        self._server = _ShardTCPServer((host, int(port)), _ShardRequestHandler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when ``port=0``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ShardServer":
        """Serve from a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"shard-server-{self.shard_id}", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop serving and release the listening socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    stop = close

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return (f"ShardServer({self.snapshot_path!r}, "
                f"shard {self.shard_id}/{self.num_shards} {self.policy!r}, "
                f"{host}:{port})")

    # -- request handling ----------------------------------------------- #

    def _handshake_reply(self, fields: dict) -> Tuple[bytes, bool]:
        """Validate a client handshake; returns ``(reply, accepted)``."""
        def reject(message: str) -> Tuple[bytes, bool]:
            return encode_message("error", {"message": message}), False

        protocol = fields.get("protocol")
        if protocol != PROTOCOL_VERSION:
            return reject(f"protocol version mismatch: server speaks "
                          f"{PROTOCOL_VERSION}, client sent {protocol!r}")
        for key, mine in (("shard_id", self.shard_id),
                          ("num_shards", self.num_shards),
                          ("policy", self.policy)):
            theirs = fields.get(key)
            if theirs != mine:
                return reject(f"shard geometry mismatch: this server holds "
                              f"{key}={mine!r}, client expects {theirs!r}")
        # Re-fingerprint on every handshake: a snapshot republished over this
        # server's path since launch must be detected, not silently served
        # against a router that saved something else.
        current = snapshot_fingerprint(self.snapshot_path)
        expected = fields.get("fingerprint")
        if expected is not None and expected != current:
            return reject(
                f"snapshot identity mismatch: server file {current} != "
                f"router file {expected} (stale shard snapshot?)")
        reply = encode_message("handshake_ok", {
            "protocol": PROTOCOL_VERSION, "shard_id": self.shard_id,
            "num_shards": self.num_shards, "policy": self.policy,
            "fingerprint": current, "num_users": self.num_users,
            "num_items": self.num_items, "shard_items": self.shard_items})
        return reply, True

    def _execute(self, kind: str, fields: dict, arrays: dict) -> bytes:
        """Decode a request into a worker payload, run it, frame the reply."""
        users = np.ascontiguousarray(arrays["users"], dtype=np.int64)
        user_block = arrays.get("user_block")
        extra = None
        if "extra_rows" in arrays:
            extra = (np.ascontiguousarray(arrays["extra_rows"]),
                     np.ascontiguousarray(arrays["extra_cols"]))
        prefix = (kind, self.snapshot_path, self.num_shards, self.policy,
                  self.shard_id)
        if kind == "top_k":
            payload = prefix + (users, int(fields["k"]),
                                bool(fields["exclude_train"]), user_block,
                                extra)
            ids, scores = _execute_shard_payload(payload)
            reply = encode_message("top_k_result", {},
                                   {"ids": ids, "scores": scores})
        else:
            payload = prefix + (users, int(fields["num_candidates"]),
                                fields["mode"], bool(fields["exclude_train"]),
                                user_block, extra)
            ids, scores, thresholds = _execute_shard_payload(payload)
            reply = encode_message("candidates_result", {},
                                   {"ids": ids, "scores": scores,
                                    "thresholds": thresholds})
        with self._count_lock:
            self.requests_served += 1
        return reply


# ---------------------------------------------------------------------- #
# Client side
# ---------------------------------------------------------------------- #

class RemoteExecutor(_ExecutorBase):
    """Fan shard payloads out to :class:`ShardServer` endpoints over TCP.

    Address ``i`` must serve shard ``i`` of ``num_shards = len(addresses)``
    under ``policy`` — the handshake enforces exactly that, plus protocol
    version and (when ``snapshot_path``/``fingerprint`` is given) snapshot
    content identity, so a shard serving a stale file is rejected before a
    single payload is merged.

    Connections are persistent (one per shard, re-established transparently
    after transport faults) and requests fan out concurrently from a small
    thread pool.  ``fan_out`` returns per-shard results in shard order or
    raises :class:`RemoteShardError`; it never returns a subset.
    """

    parallel = True
    ships_payloads = True
    is_remote = True

    def __init__(self, addresses: Sequence, *, snapshot_path=None,
                 fingerprint: Optional[str] = None,
                 policy: str = "contiguous", timeout: float = 10.0,
                 max_retries: int = 2, retry_backoff: float = 0.05) -> None:
        self.addresses = [parse_address(address) for address in addresses]
        if not self.addresses:
            raise ValueError("RemoteExecutor needs at least one shard address")
        self.num_shards = len(self.addresses)
        if policy not in PARTITION_POLICIES:
            raise ValueError(f"unknown partition policy {policy!r}; "
                             f"options: {PARTITION_POLICIES}")
        self.policy = policy
        self.timeout = float(timeout)
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.max_retries = int(max_retries)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.retry_backoff = float(retry_backoff)
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if fingerprint is None and snapshot_path is not None:
            fingerprint = snapshot_fingerprint(snapshot_path)
        self.snapshot_path = None if snapshot_path is None \
            else str(snapshot_path)
        self.fingerprint = fingerprint
        self._socks: list = [None] * self.num_shards
        self._locks = [threading.Lock() for _ in range(self.num_shards)]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # -- executor seam -------------------------------------------------- #

    def bind_check(self, num_shards: int, policy: str) -> None:
        """Reject binding to an index whose geometry the shards don't hold."""
        if num_shards != self.num_shards or policy != self.policy:
            raise ValueError(
                f"RemoteExecutor is bound to {self.num_shards} "
                f"{self.policy!r} shards at {self._address_text()}; cannot "
                f"serve {num_shards} {policy!r} shards")

    def run(self, tasks: Sequence) -> list:
        raise TypeError(
            "RemoteExecutor ships shard payloads over sockets, not "
            "in-process closures; use it through a ShardedInferenceIndex "
            "built over the same snapshot")

    def fan_out(self, kind: str, *request) -> list:
        """Send one request per shard; results come back in shard order.

        Raises :class:`RemoteShardError` if *any* shard cannot answer —
        the caller never sees a partial result set.
        """
        if self._closed:
            raise RemoteShardError("RemoteExecutor is closed")
        # Every shard receives the identical request (shard identity lives
        # in the connection handshake), so encode exactly once.
        message = self._encode_request(kind, request)
        if self.num_shards == 1:
            return [self._request(0, message)]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="remote-fan-out")
        futures = [self._pool.submit(self._request, shard_id, message)
                   for shard_id in range(self.num_shards)]
        results, failure = [], None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as error:  # noqa: BLE001 - re-raised below
                if failure is None:
                    failure = error
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        """Drop every shard connection and the fan-out pool (idempotent)."""
        self._closed = True
        for shard_id, lock in enumerate(self._locks):
            with lock:
                self._drop(shard_id)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return (f"RemoteExecutor([{self._address_text()}], "
                f"shards={self.num_shards}, policy={self.policy!r}, "
                f"timeout={self.timeout}, max_retries={self.max_retries})")

    # -- transport ------------------------------------------------------ #

    def _address_text(self) -> str:
        return ", ".join(f"{host}:{port}" for host, port in self.addresses)

    @staticmethod
    def _encode_request(kind: str, request: tuple) -> bytes:
        if kind == "top_k":
            users, k, exclude_train, user_block, extra = request
            fields = {"k": int(k), "exclude_train": bool(exclude_train)}
        elif kind == "candidates":
            users, num_candidates, mode, exclude_train, user_block, extra \
                = request
            fields = {"num_candidates": int(num_candidates), "mode": mode,
                      "exclude_train": bool(exclude_train)}
        else:
            raise ValueError(f"unknown shard payload kind {kind!r}")
        arrays = {"users": np.asarray(users, dtype=np.int64),
                  "user_block": user_block}
        if extra is not None:
            arrays["extra_rows"], arrays["extra_cols"] = extra
        return encode_message(kind, fields, arrays)

    def _connect(self, shard_id: int) -> socket.socket:
        """The persistent (handshaken) socket for one shard, dialing if
        needed.  Caller holds the shard lock."""
        sock = self._socks[shard_id]
        if sock is not None:
            return sock
        host, port = self.addresses[shard_id]
        sock = socket.create_connection((host, port), timeout=self.timeout)
        try:
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(encode_message("handshake", {
                "protocol": PROTOCOL_VERSION, "shard_id": shard_id,
                "num_shards": self.num_shards, "policy": self.policy,
                "fingerprint": self.fingerprint}))
            kind, fields, _ = _recv_message(sock)
        except BaseException:
            sock.close()
            raise
        if kind == "error":
            # Deterministic rejection (stale snapshot, bad geometry,
            # protocol skew): raise RemoteShardError, which the retry loop
            # deliberately does not catch.
            sock.close()
            raise RemoteShardError(
                f"shard {shard_id} at {host}:{port} rejected the handshake: "
                f"{fields.get('message', 'no reason given')}")
        if kind != "handshake_ok":
            sock.close()
            raise RemoteProtocolError(
                f"shard {shard_id} at {host}:{port} answered the handshake "
                f"with {kind!r}")
        self._socks[shard_id] = sock
        return sock

    def _drop(self, shard_id: int) -> None:
        sock = self._socks[shard_id]
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never really fails
                pass
            self._socks[shard_id] = None

    def _request(self, shard_id: int, message: bytes):
        """One request/reply round trip with bounded reconnect-and-retry."""
        host, port = self.addresses[shard_id]
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt and self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            try:
                with self._locks[shard_id]:
                    sock = self._connect(shard_id)
                    sock.sendall(message)
                    kind, fields, arrays = _recv_message(sock)
            except RemoteProtocolError as error:
                # Transport desync (garbled frame): as unusable as a reset.
                with self._locks[shard_id]:
                    self._drop(shard_id)
                last_error = error
                continue
            except RemoteShardError:
                # Deterministic rejection from _connect — not retryable.
                raise
            except OSError as error:
                # Transport fault: the connection (and anything buffered on
                # it) is unusable.  Drop it and retry from a clean dial.
                with self._locks[shard_id]:
                    self._drop(shard_id)
                last_error = error
                continue
            if kind == "error":
                # The shard ran the request and failed deterministically —
                # retrying would re-fail identically.
                raise RemoteShardError(
                    f"shard {shard_id} at {host}:{port} failed: "
                    f"{fields.get('message', 'no reason given')}")
            return self._decode_result(shard_id, kind, arrays)
        raise RemoteShardError(
            f"shard {shard_id} at {host}:{port} unreachable after "
            f"{self.max_retries + 1} attempt(s): {last_error}") from last_error

    def _decode_result(self, shard_id: int, kind: str, arrays: dict):
        if kind == "top_k_result":
            return arrays["ids"], arrays["scores"]
        if kind == "candidates_result":
            return arrays["ids"], arrays["scores"], arrays["thresholds"]
        raise RemoteProtocolError(
            f"shard {shard_id} sent unexpected reply kind {kind!r}")


# ---------------------------------------------------------------------- #
# Process-spawn helper (tests + benchmarks)
# ---------------------------------------------------------------------- #

def _serve_shard_process(snapshot_path: str, shard_id: int, num_shards: int,
                         policy: str, host: str, request_delay_s: float,
                         conn) -> None:  # pragma: no cover - child process
    server = ShardServer(snapshot_path, shard_id, num_shards, policy=policy,
                         host=host, port=0, request_delay_s=request_delay_s)
    conn.send(server.address)
    conn.close()
    server.serve_forever()


def spawn_shard_server(snapshot_path, shard_id: int, num_shards: int, *,
                       policy: str = "contiguous", host: str = "127.0.0.1",
                       request_delay_s: float = 0.0, start_timeout: float = 30.0):
    """Launch a :class:`ShardServer` in its own process.

    Returns ``(process, (host, port))`` once the child has bound its
    ephemeral port.  The child is a daemon: killing it (fault injection) or
    letting the parent exit reaps it.  Production deployments use the
    ``repro shard-server`` CLI instead; this helper exists so tests and
    benchmarks can exercise true process isolation cheaply.
    """
    import multiprocessing

    parent_conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_serve_shard_process,
        args=(str(snapshot_path), int(shard_id), int(num_shards), policy,
              host, float(request_delay_s), child_conn),
        daemon=True)
    process.start()
    child_conn.close()
    if not parent_conn.poll(start_timeout):
        process.terminate()
        raise RemoteShardError(
            f"shard server {shard_id}/{num_shards} did not come up within "
            f"{start_timeout}s")
    try:
        address = parent_conn.recv()
    except EOFError:
        raise RemoteShardError(
            f"shard server {shard_id}/{num_shards} died during startup "
            f"(exit code {process.exitcode})") from None
    finally:
        parent_conn.close()
    return process, address
