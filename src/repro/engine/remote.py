"""Multi-host shard serving: TCP shard servers + a socket-backed executor.

The executor seam (:mod:`repro.engine.sharding`) already abstracts *where* a
shard task runs: a payload-shipping executor receives task *descriptions*
(``("top_k", users, k, …)``) instead of closures, executes them against its
own mmap'd view of the snapshot file, and hands small per-shard candidate
arrays back to the router, which keeps the certified exact S·k merge.  This
module adds the last transport: the same payloads over a socket, so one
catalogue spreads across hosts.

* :class:`ShardServer` — one process, one shard.  Opens its slice of a
  published snapshot (zero-copy, via the PR 6 worker cache) and serves exact
  top-k and certified two-stage candidate payloads over a length-prefixed
  binary protocol.  Router-side divergence (``user_block`` overrides after
  online user growth, ``extra_pairs`` exclusions the file does not hold)
  rides along with each request exactly as it does for the process executor,
  so online serving over sockets stays bit-identical too.
* :class:`RemoteExecutor` — ``ships_payloads`` executor bound to one
  *replica set* per shard (``[["h1:p", "h2:p"], …]``; a plain ``host:port``
  string is a replica set of one).  Fans each request out to every shard
  concurrently and returns results in shard order; the router's merge is
  untouched.

Failure semantics are *fail closed and failover-transparent*: a request
either reflects every shard or raises :class:`RemoteShardError` — a partial
merge is never returned.  A transport fault (connect refused, reset,
timeout, garbled frame) fails over to the next healthy replica of the
*same* shard; a per-replica circuit breaker (consecutive failures open it,
a half-open probe after ``breaker_cooldown`` closes it) keeps dead replicas
from absorbing a connect timeout on every request.  Retries across the
whole replica set use capped full-jitter exponential backoff so recovering
fleets are not hit by synchronized retry storms.  Deterministic rejections
(protocol version mismatch, wrong shard geometry, a replica serving a
different snapshot file) disqualify that *replica* permanently — a stale
replica is skipped, never served — and the typed error fires only once a
shard's entire replica set is exhausted.  The handshake pins protocol
version and snapshot identity via
:func:`repro.engine.snapshot.snapshot_fingerprint` — a content fingerprint,
not an inode, so router and shard hosts need not share a filesystem, only a
byte-identical snapshot file.  Because every replica must pass the same
handshake and the merge is certified exact, failover never changes results;
it only changes which replica computes them.

Fault injection: both sides accept a
:class:`~repro.engine.faults.FaultPlan`.  :class:`ShardServer` consults
sites ``"server.handshake"``/``"server.request"`` (``delay``, ``reset``,
``garble``, ``reject``, ``crash``), :class:`RemoteExecutor` consults
``"client.request"`` (``delay``, ``reset``), so every failover path above
is reproducible from a seeded schedule instead of ad-hoc test knobs.

Wire format (all integers little-endian)::

    frame   := magic[4] body_len[u64] body
    body    := meta_len[u32] meta_json[meta_len] array_bytes...
    meta    := {"kind": str, "fields": {...}, "arrays": [
                   {"name": str, "dtype": str, "shape": [int, ...]}, ...]}

Array buffers are raw C-order bytes concatenated after the JSON header in
declaration order — no pickling anywhere on the wire.
"""

from __future__ import annotations

import json
import math
import os
import random
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .faults import FaultPlan
from .observability import (
    current_trace,
    metrics,
    parse_wire_spans,
    shard_reply_trace,
    trace_request_fields,
)
from .sharding import PARTITION_POLICIES, _ExecutorBase
from .snapshot import (
    _execute_shard_payload,
    _worker_shard,
    snapshot_fingerprint,
)

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteExecutor",
    "RemoteProtocolError",
    "RemoteShardError",
    "ReplicaRejectedError",
    "ShardServer",
    "parse_address",
    "parse_replica_set",
    "spawn_shard_server",
]

PROTOCOL_VERSION = 1

_FRAME_MAGIC = b"RSHD"
_FRAME = struct.Struct("<4sQ")  # magic, body length
_META_LEN = struct.Struct("<I")

# Sanity ceiling on a single frame (1 GiB).  A request is O(batch x dim) and
# a reply O(batch x k); anything near this is a corrupt length prefix or a
# foreign peer, and must not turn into an attempted multi-GiB allocation.
MAX_FRAME_BYTES = 1 << 30


class RemoteShardError(RuntimeError):
    """A remote shard could not serve a request (fail-closed).

    Raised by :class:`RemoteExecutor` when any shard is unreachable after
    the bounded retries, rejects the handshake (stale snapshot, wrong
    geometry, protocol mismatch), or reports a server-side failure.  The
    router never falls back to a partial merge.
    """


class RemoteProtocolError(RemoteShardError):
    """A peer sent bytes that do not parse as a protocol frame/message."""


class ReplicaRejectedError(RemoteShardError):
    """One replica deterministically rejected the handshake.

    Stale snapshot, wrong geometry, or protocol skew: that replica must
    never serve, but its peers in the same replica set still can.  The
    executor marks the replica disqualified and fails over; only when every
    replica of the shard is rejected or unreachable does the request raise.
    """


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #

def encode_message(kind: str, fields: Optional[dict] = None,
                   arrays: Optional[dict] = None) -> bytes:
    """Serialise one protocol message to a framed byte string.

    ``fields`` must be JSON-serialisable scalars; ``arrays`` maps names to
    numpy arrays (``None`` values are dropped, signalling absence).
    """
    blocks = []
    specs = []
    for name, array in (arrays or {}).items():
        if array is None:
            continue
        array = np.ascontiguousarray(array)
        specs.append({"name": name, "dtype": array.dtype.str,
                      "shape": list(array.shape)})
        blocks.append(array.tobytes())
    meta = json.dumps({"kind": kind, "fields": fields or {},
                       "arrays": specs}).encode("utf-8")
    body = b"".join([_META_LEN.pack(len(meta)), meta, *blocks])
    return _FRAME.pack(_FRAME_MAGIC, len(body)) + body


def decode_message(body: bytes) -> Tuple[str, dict, dict]:
    """Parse a frame body back into ``(kind, fields, arrays)``."""
    try:
        if len(body) < _META_LEN.size:
            raise ValueError("truncated body")
        (meta_len,) = _META_LEN.unpack_from(body, 0)
        offset = _META_LEN.size + meta_len
        if offset > len(body):
            raise ValueError("meta length exceeds body")
        meta = json.loads(body[_META_LEN.size:offset].decode("utf-8"))
        kind = meta["kind"]
        fields = meta["fields"]
        arrays = {}
        for spec in meta["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            count = math.prod(shape)
            nbytes = count * dtype.itemsize
            if offset + nbytes > len(body):
                raise ValueError(f"array {spec['name']!r} exceeds body")
            arrays[spec["name"]] = np.frombuffer(
                body, dtype=dtype, count=count, offset=offset).reshape(shape)
            offset += nbytes
        return kind, fields, arrays
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
        raise RemoteProtocolError(f"malformed protocol message: {error}") \
            from error


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(min(count - len(chunks), 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.extend(chunk)
    return bytes(chunks)


def _recv_message(sock: socket.socket) -> Tuple[str, dict, dict]:
    """Read one framed message off a socket."""
    header = _recv_exact(sock, _FRAME.size)
    magic, body_len = _FRAME.unpack(header)
    if magic != _FRAME_MAGIC:
        raise RemoteProtocolError(
            f"bad frame magic {magic!r}; peer is not a repro shard endpoint")
    if body_len > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {body_len} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return decode_message(_recv_exact(sock, body_len))


def parse_address(address) -> Tuple[str, int]:
    """Normalise ``"host:port"`` (or an ``(host, port)`` pair) to a tuple."""
    if isinstance(address, (tuple, list)):
        if len(address) != 2:
            raise ValueError(f"address pair must be (host, port): {address!r}")
        host, port = address
    else:
        text = str(address).strip()
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"shard address must look like host:port, got {address!r}")
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ValueError(f"invalid port in shard address {address!r}") \
            from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in shard address {address!r}")
    return str(host), port


def parse_replica_set(entry) -> List[Tuple[str, int]]:
    """Normalise one shard's replica set to a list of ``(host, port)``.

    Accepted spellings, all equivalent for a single replica:

    * ``"host:port"`` — one replica;
    * ``"h1:p1,h2:p2"`` — comma-separated replicas (the CLI form);
    * ``("host", 8080)`` — one already-parsed address pair;
    * ``["h1:p1", ("h2", 8080), …]`` — an explicit replica list.

    Duplicate replicas in one set are rejected: they would silently halve
    the redundancy the caller thinks they configured.
    """
    if isinstance(entry, str):
        parts = [part.strip() for part in entry.split(",") if part.strip()]
        if not parts:
            raise ValueError(f"empty replica set {entry!r}")
        replicas = [parse_address(part) for part in parts]
    elif isinstance(entry, (tuple, list)):
        if len(entry) == 2 and isinstance(entry[1], int):
            replicas = [parse_address(entry)]  # a bare (host, port) pair
        elif not entry:
            raise ValueError("a shard's replica set must not be empty")
        else:
            replicas = [parse_address(item) for item in entry]
    else:
        replicas = [parse_address(entry)]
    if len(set(replicas)) != len(replicas):
        raise ValueError(f"duplicate replica in replica set {entry!r}")
    return replicas


# ---------------------------------------------------------------------- #
# Server side
# ---------------------------------------------------------------------- #

class _ShardTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: handshake first, then request/reply until EOF."""

    def handle(self) -> None:
        owner: ShardServer = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        handshaken = False
        while True:
            try:
                kind, fields, arrays = _recv_message(sock)
            except (ConnectionError, RemoteProtocolError, OSError):
                return  # peer went away or is speaking another protocol
            if owner.fault_plan is not None:
                site = ("server.handshake" if kind == "handshake"
                        else "server.request")
                if self._apply_fault(owner, sock, owner.fault_plan.advance(site)):
                    return
            close_after = False
            try:
                if kind == "handshake":
                    reply, accepted = owner._handshake_reply(fields)
                    handshaken = accepted
                    close_after = not accepted
                elif not handshaken:
                    reply = encode_message("error", {
                        "message": "handshake required before requests"})
                    close_after = True
                elif kind == "ping":
                    reply = encode_message("pong", {"shard_id": owner.shard_id})
                elif kind in ("top_k", "candidates"):
                    reply = owner._execute(kind, fields, arrays)
                else:
                    reply = encode_message("error", {
                        "message": f"unknown request kind {kind!r}"})
            except Exception as error:  # noqa: BLE001 - ship it to the client
                reply = encode_message("error", {
                    "message": f"{type(error).__name__}: {error}"})
            try:
                sock.sendall(reply)
            except OSError:
                return
            if close_after:
                return

    @staticmethod
    def _apply_fault(owner: "ShardServer", sock, action) -> bool:
        """Apply one scheduled fault; ``True`` means drop the connection."""
        if action is None:
            return False
        if action.kind == "delay":
            time.sleep(float(action.param("seconds", 0.05)))
            return False  # a stall, then normal service
        if action.kind == "reset":
            return True  # close without replying: client sees EOF/reset
        if action.kind == "garble":
            try:
                sock.sendall(b"\x00GARBLED-NOT-A-FRAME\x00")
            except OSError:
                pass
            return True
        if action.kind == "reject":
            try:
                sock.sendall(encode_message("error", {
                    "message": "injected fault: handshake rejected"}))
            except OSError:
                pass
            return True
        if action.kind == "crash":
            owner._crash()
            return True
        raise ValueError(f"unknown server fault kind {action.kind!r}")


class ShardServer:
    """Serve one shard of a published snapshot over TCP.

    One server process holds one shard: at construction it opens its slice
    of ``snapshot_path`` through the shared worker cache (so launch fails
    fast on a missing/corrupt file) and then answers ``top_k`` /
    ``candidates`` payloads exactly as a process-pool worker would — same
    cache, same divergence shipping, same republish detection.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  ``start()`` serves from a daemon thread (tests, embedded
    use); ``serve_forever()`` blocks (the CLI).  ``fault_plan`` attaches a
    :class:`~repro.engine.faults.FaultPlan` consulted once per received
    message (sites ``"server.handshake"``/``"server.request"``) so
    client-side timeout, retry, and failover paths can be exercised
    deterministically — delays, connection resets, garbled frames, injected
    rejections, and whole-server crashes all come from the one seeded
    schedule.
    """

    def __init__(self, snapshot_path, shard_id: int, num_shards: int, *,
                 policy: str = "contiguous", host: str = "127.0.0.1",
                 port: int = 0, fault_plan: Optional[FaultPlan] = None) -> None:
        self.snapshot_path = str(snapshot_path)
        self.num_shards = int(num_shards)
        self.shard_id = int(shard_id)
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0 <= self.shard_id < self.num_shards:
            raise ValueError(f"shard_id {self.shard_id} out of range for "
                             f"{self.num_shards} shards")
        if policy not in PARTITION_POLICIES:
            raise ValueError(f"unknown partition policy {policy!r}; "
                             f"options: {PARTITION_POLICIES}")
        self.policy = policy
        self.fault_plan = fault_plan
        # A "crash" fault means os._exit in a dedicated server process but a
        # clean close for servers embedded in a test process (killing the
        # test runner is not a useful simulation); _serve_shard_process
        # flips this on.
        self._crash_hard = False
        # Fail fast: fingerprint + shard slice both validate the file now,
        # not on the first remote request.
        self.fingerprint = snapshot_fingerprint(self.snapshot_path)
        shard, user_embeddings, snapshot, _ = _worker_shard(
            self.snapshot_path, self.num_shards, self.policy, self.shard_id)
        self.num_users = int(user_embeddings.shape[0])
        self.num_items = int(snapshot.num_items)
        self.shard_items = int(shard.item_ids.size)
        self.requests_served = 0
        self._count_lock = threading.Lock()
        self._server = _ShardTCPServer((host, int(port)), _ShardRequestHandler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when ``port=0``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ShardServer":
        """Serve from a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"shard-server-{self.shard_id}", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop serving and release the listening socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    stop = close

    def _crash(self) -> None:
        """An injected crash: die hard in a child process, else shut down."""
        if self._crash_hard:  # pragma: no cover - kills the process
            os._exit(1)
        threading.Thread(target=self.close, daemon=True).start()

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        host, port = self.address
        return (f"ShardServer({self.snapshot_path!r}, "
                f"shard {self.shard_id}/{self.num_shards} {self.policy!r}, "
                f"{host}:{port})")

    # -- request handling ----------------------------------------------- #

    def _handshake_reply(self, fields: dict) -> Tuple[bytes, bool]:
        """Validate a client handshake; returns ``(reply, accepted)``."""
        def reject(message: str) -> Tuple[bytes, bool]:
            return encode_message("error", {"message": message}), False

        protocol = fields.get("protocol")
        if protocol != PROTOCOL_VERSION:
            return reject(f"protocol version mismatch: server speaks "
                          f"{PROTOCOL_VERSION}, client sent {protocol!r}")
        for key, mine in (("shard_id", self.shard_id),
                          ("num_shards", self.num_shards),
                          ("policy", self.policy)):
            theirs = fields.get(key)
            if theirs != mine:
                return reject(f"shard geometry mismatch: this server holds "
                              f"{key}={mine!r}, client expects {theirs!r}")
        # Re-fingerprint on every handshake: a snapshot republished over this
        # server's path since launch must be detected, not silently served
        # against a router that saved something else.
        current = snapshot_fingerprint(self.snapshot_path)
        expected = fields.get("fingerprint")
        if expected is not None and expected != current:
            return reject(
                f"snapshot identity mismatch: server file {current} != "
                f"router file {expected} (stale shard snapshot?)")
        reply = encode_message("handshake_ok", {
            "protocol": PROTOCOL_VERSION, "shard_id": self.shard_id,
            "num_shards": self.num_shards, "policy": self.policy,
            "fingerprint": current, "num_users": self.num_users,
            "num_items": self.num_items, "shard_items": self.shard_items})
        return reply, True

    def _execute(self, kind: str, fields: dict, arrays: dict) -> bytes:
        """Decode a request into a worker payload, run it, frame the reply."""
        users = np.ascontiguousarray(arrays["users"], dtype=np.int64)
        user_block = arrays.get("user_block")
        extra = None
        if "extra_rows" in arrays:
            extra = (np.ascontiguousarray(arrays["extra_rows"]),
                     np.ascontiguousarray(arrays["extra_cols"]))
        prefix = (kind, self.snapshot_path, self.num_shards, self.policy,
                  self.shard_id)
        started = time.perf_counter()
        if kind == "top_k":
            payload = prefix + (users, int(fields["k"]),
                                bool(fields["exclude_train"]), user_block,
                                extra)
            ids, scores = _execute_shard_payload(payload)
            duration = time.perf_counter() - started
            reply = encode_message(
                "top_k_result",
                shard_reply_trace(fields, shard_id=self.shard_id, kind=kind,
                                  duration=duration),
                {"ids": ids, "scores": scores})
        else:
            payload = prefix + (users, int(fields["num_candidates"]),
                                fields["mode"], bool(fields["exclude_train"]),
                                user_block, extra)
            ids, scores, thresholds = _execute_shard_payload(payload)
            duration = time.perf_counter() - started
            reply = encode_message(
                "candidates_result",
                shard_reply_trace(fields, shard_id=self.shard_id, kind=kind,
                                  duration=duration),
                {"ids": ids, "scores": scores,
                 "thresholds": thresholds})
        registry = metrics()
        registry.inc("server.requests")
        registry.observe("server.request_s", duration)
        with self._count_lock:
            self.requests_served += 1
        return reply


# ---------------------------------------------------------------------- #
# Client side
# ---------------------------------------------------------------------- #

class _ReplicaState:
    """One replica's connection, circuit breaker, and health counters.

    The lock guards the socket *and* the breaker state; counters are read
    without it by :meth:`RemoteExecutor.health_stats` (monitoring reads may
    be a request behind, they must never stall serving).
    """

    __slots__ = ("shard_id", "replica_id", "address", "sock", "lock",
                 "circuit", "opened_at", "consecutive_failures", "rejected",
                 "requests", "failures", "failovers", "probes",
                 "probe_successes", "last_error")

    def __init__(self, shard_id: int, replica_id: int,
                 address: Tuple[str, int]) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.lock = threading.Lock()
        self.circuit = "closed"          # closed | open (half-open = a probe)
        self.opened_at = 0.0             # monotonic time the circuit opened
        self.consecutive_failures = 0
        self.rejected = False            # deterministic handshake rejection
        self.requests = 0
        self.failures = 0
        self.failovers = 0               # transport faults that moved the
        self.probes = 0                  # request to a sibling replica
        self.probe_successes = 0
        self.last_error: Optional[str] = None

    @property
    def label(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def snapshot(self) -> dict:
        return {
            "address": self.label,
            "circuit": "rejected" if self.rejected else self.circuit,
            "requests": self.requests,
            "failures": self.failures,
            "failovers": self.failovers,
            "consecutive_failures": self.consecutive_failures,
            "probes": self.probes,
            "probe_successes": self.probe_successes,
            "last_error": self.last_error,
        }


class RemoteExecutor(_ExecutorBase):
    """Fan shard payloads out to :class:`ShardServer` endpoints over TCP.

    Entry ``i`` of ``addresses`` is shard ``i``'s *replica set* (see
    :func:`parse_replica_set`; a plain ``"host:port"`` string is a set of
    one).  Every replica must serve shard ``i`` of
    ``num_shards = len(addresses)`` under ``policy`` — the per-replica
    handshake enforces exactly that, plus protocol version and (when
    ``snapshot_path``/``fingerprint`` is given) snapshot content identity,
    so a replica serving a stale file is disqualified before a single
    payload is merged.

    Connections are persistent (one per replica, re-established
    transparently after transport faults) and requests fan out concurrently
    from a small thread pool.  Within a shard, requests stick to the last
    replica that answered; a transport fault fails over to the next healthy
    sibling, and a circuit breaker (``breaker_threshold`` consecutive
    failures open it; a half-open probe after ``breaker_cooldown`` seconds
    closes it again) keeps known-dead replicas from absorbing a connect
    timeout per request.  Retry sleeps use capped full-jitter exponential
    backoff (``retry_backoff``/``max_backoff``, seeded by ``jitter_seed``
    for deterministic tests).  ``fan_out`` returns per-shard results in
    shard order or raises :class:`RemoteShardError`; it never returns a
    subset.
    """

    parallel = True
    ships_payloads = True
    is_remote = True

    def __init__(self, addresses: Sequence, *, snapshot_path=None,
                 fingerprint: Optional[str] = None,
                 policy: str = "contiguous", timeout: float = 10.0,
                 max_retries: int = 2, retry_backoff: float = 0.05,
                 max_backoff: float = 2.0, breaker_threshold: int = 3,
                 breaker_cooldown: float = 1.0,
                 jitter_seed: Optional[int] = None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        if not addresses:
            raise ValueError("RemoteExecutor needs at least one shard address")
        self.replica_sets: List[List[Tuple[str, int]]] = [
            parse_replica_set(entry) for entry in addresses]
        self.num_shards = len(self.replica_sets)
        if policy not in PARTITION_POLICIES:
            raise ValueError(f"unknown partition policy {policy!r}; "
                             f"options: {PARTITION_POLICIES}")
        self.policy = policy
        self.timeout = float(timeout)
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.max_retries = int(max_retries)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.retry_backoff = float(retry_backoff)
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.max_backoff = float(max_backoff)
        if self.max_backoff < 0:
            raise ValueError("max_backoff must be >= 0")
        self.breaker_threshold = int(breaker_threshold)
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.breaker_cooldown = float(breaker_cooldown)
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
        self.fault_plan = fault_plan
        if fingerprint is None and snapshot_path is not None:
            fingerprint = snapshot_fingerprint(snapshot_path)
        self.snapshot_path = None if snapshot_path is None \
            else str(snapshot_path)
        self.fingerprint = fingerprint
        self._replicas: List[List[_ReplicaState]] = [
            [_ReplicaState(shard_id, replica_id, address)
             for replica_id, address in enumerate(replica_set)]
            for shard_id, replica_set in enumerate(self.replica_sets)]
        # Sticky preference: index of the replica that last answered for the
        # shard, so healthy traffic does not ping-pong across replicas.
        self._preferred = [0] * self.num_shards
        self._jitter_rng = random.Random(jitter_seed)
        self._jitter_lock = threading.Lock()
        # Built eagerly: a lazy first-use init would race two concurrent
        # fan-outs into two pools, leaking one.  ThreadPoolExecutor spawns
        # its threads on first submit, so the eager object itself is free.
        self._pool: Optional[ThreadPoolExecutor] = None
        if self.num_shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="remote-fan-out")
        self._closed = False

    # -- executor seam -------------------------------------------------- #

    def bind_check(self, num_shards: int, policy: str) -> None:
        """Reject binding to an index whose geometry the shards don't hold."""
        if num_shards != self.num_shards or policy != self.policy:
            raise ValueError(
                f"RemoteExecutor is bound to {self.num_shards} "
                f"{self.policy!r} shards at {self._address_text()}; cannot "
                f"serve {num_shards} {policy!r} shards")

    def run(self, tasks: Sequence) -> list:
        raise TypeError(
            "RemoteExecutor ships shard payloads over sockets, not "
            "in-process closures; use it through a ShardedInferenceIndex "
            "built over the same snapshot")

    def fan_out(self, kind: str, *request) -> list:
        """Send one request per shard; results come back in shard order.

        Raises :class:`RemoteShardError` if *any* shard cannot answer —
        the caller never sees a partial result set.
        """
        if self._closed:
            raise RemoteShardError("RemoteExecutor is closed")
        # Every shard receives the identical request (shard identity lives
        # in the connection handshake), so encode exactly once.  The active
        # trace id is read here, in the caller's thread — pool threads do
        # not inherit the contextvar — and rides the request meta so shard
        # servers can stitch their spans into this trace.  Pool threads
        # append parsed spans to ``collected`` (list.append is atomic);
        # they are attached once every shard has answered.
        trace = current_trace()
        trace_id = trace.trace_id if trace is not None else None
        message = self._encode_request(kind, request,
                                       trace_request_fields(trace))
        collected: list = []
        if self.num_shards == 1:
            results = [self._request(0, message, trace_id=trace_id,
                                     span_sink=collected)]
            if trace is not None:
                trace.attach(sorted(collected, key=lambda s: s.name))
            return results
        futures = [self._pool.submit(self._request, shard_id, message,
                                     trace_id=trace_id, span_sink=collected)
                   for shard_id in range(self.num_shards)]
        results, failure = [], None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as error:  # noqa: BLE001 - re-raised below
                if failure is None:
                    failure = error
        if failure is not None:
            raise failure
        if trace is not None:
            # Shard replies land in pool-thread order; sort by span name so
            # the stitched tree is deterministic.
            trace.attach(sorted(collected, key=lambda s: s.name))
        return results

    def close(self) -> None:
        """Drop every replica connection and the fan-out pool (idempotent)."""
        self._closed = True
        for replicas in self._replicas:
            for replica in replicas:
                with replica.lock:
                    self._drop(replica)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return (f"RemoteExecutor([{self._address_text()}], "
                f"shards={self.num_shards}, policy={self.policy!r}, "
                f"timeout={self.timeout}, max_retries={self.max_retries})")

    # -- health --------------------------------------------------------- #

    def health_stats(self) -> dict:
        """Per-replica health: circuits, failovers, probes, last errors.

        Lock-free reads of live counters — numbers may trail in-flight
        requests by one, which is the right trade for a monitoring surface.
        """
        shards = []
        total_failovers = 0
        total_requests = 0
        for shard_id, replicas in enumerate(self._replicas):
            replica_stats = [replica.snapshot() for replica in replicas]
            failovers = sum(stat["failovers"] for stat in replica_stats)
            total_failovers += failovers
            total_requests += sum(stat["requests"] for stat in replica_stats)
            shards.append({
                "shard_id": shard_id,
                "replicas": replica_stats,
                "failovers": failovers,
                "healthy_replicas": sum(
                    1 for stat in replica_stats
                    if stat["circuit"] == "closed"),
            })
        return {
            "num_shards": self.num_shards,
            "replicas_per_shard": [len(replicas)
                                   for replicas in self._replicas],
            "requests": total_requests,
            "failovers": total_failovers,
            "shards": shards,
        }

    # -- transport ------------------------------------------------------ #

    def _address_text(self) -> str:
        return "; ".join(
            ",".join(f"{host}:{port}" for host, port in replica_set)
            for replica_set in self.replica_sets)

    def _backoff_delay(self, attempt: int) -> float:
        """Capped full-jitter exponential backoff before retry ``attempt``.

        Full jitter (uniform over ``[0, cap]``) decorrelates the retry
        storms of many routers hammering a recovering fleet; the
        ``max_backoff`` cap bounds the worst-case stall a single request
        can add.  Seeded via ``jitter_seed`` so tests can pin the exact
        sleep sequence.
        """
        ceiling = min(self.max_backoff,
                      self.retry_backoff * (2 ** (attempt - 1)))
        if ceiling <= 0:
            return 0.0
        with self._jitter_lock:
            return self._jitter_rng.uniform(0.0, ceiling)

    @staticmethod
    def _encode_request(kind: str, request: tuple,
                        trace_fields: Optional[dict] = None) -> bytes:
        if kind == "top_k":
            users, k, exclude_train, user_block, extra = request
            fields = {"k": int(k), "exclude_train": bool(exclude_train)}
        elif kind == "candidates":
            users, num_candidates, mode, exclude_train, user_block, extra \
                = request
            fields = {"num_candidates": int(num_candidates), "mode": mode,
                      "exclude_train": bool(exclude_train)}
        else:
            raise ValueError(f"unknown shard payload kind {kind!r}")
        if trace_fields:
            fields.update(trace_fields)
        arrays = {"users": np.asarray(users, dtype=np.int64),
                  "user_block": user_block}
        if extra is not None:
            arrays["extra_rows"], arrays["extra_cols"] = extra
        return encode_message(kind, fields, arrays)

    def _connect(self, replica: _ReplicaState) -> socket.socket:
        """The persistent (handshaken) socket for one replica, dialing if
        needed.  Caller holds the replica lock."""
        if replica.sock is not None:
            return replica.sock
        host, port = replica.address
        sock = socket.create_connection((host, port), timeout=self.timeout)
        try:
            sock.settimeout(self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(encode_message("handshake", {
                "protocol": PROTOCOL_VERSION, "shard_id": replica.shard_id,
                "num_shards": self.num_shards, "policy": self.policy,
                "fingerprint": self.fingerprint}))
            kind, fields, _ = _recv_message(sock)
        except BaseException:
            sock.close()
            raise
        if kind == "error":
            # Deterministic rejection (stale snapshot, bad geometry,
            # protocol skew): this replica must never serve.  The caller
            # disqualifies it and fails over to a sibling.
            sock.close()
            raise ReplicaRejectedError(
                f"shard {replica.shard_id} replica at {host}:{port} "
                f"rejected the handshake: "
                f"{fields.get('message', 'no reason given')}")
        if kind != "handshake_ok":
            sock.close()
            raise RemoteProtocolError(
                f"shard {replica.shard_id} replica at {host}:{port} "
                f"answered the handshake with {kind!r}")
        replica.sock = sock
        return sock

    @staticmethod
    def _drop(replica: _ReplicaState) -> None:
        if replica.sock is not None:
            try:
                replica.sock.close()
            except OSError:  # pragma: no cover - close never really fails
                pass
            replica.sock = None

    def _replica_order(self, shard_id: int) -> List[_ReplicaState]:
        """The shard's replicas, rotated so the sticky preference is first."""
        replicas = self._replicas[shard_id]
        start = self._preferred[shard_id] % len(replicas)
        return replicas[start:] + replicas[:start]

    def _record_failure(self, replica: _ReplicaState,
                        error: BaseException, *, probing: bool,
                        has_siblings: bool) -> None:
        """Count one transport fault and drive the circuit breaker."""
        opened = False
        with replica.lock:
            self._drop(replica)
            replica.failures += 1
            replica.consecutive_failures += 1
            replica.last_error = f"{type(error).__name__}: {error}"
            if has_siblings:
                replica.failovers += 1
            if (probing
                    or replica.consecutive_failures >= self.breaker_threshold):
                # A failed half-open probe re-opens immediately; otherwise
                # the threshold of consecutive faults trips the breaker.
                opened = replica.circuit != "open"
                replica.circuit = "open"
                replica.opened_at = time.monotonic()
        registry = metrics()
        registry.inc("remote.failures")
        if has_siblings:
            registry.inc("remote.failovers")
        if opened:
            registry.inc("remote.breaker_opened")

    def _request(self, shard_id: int, message: bytes, *,
                 trace_id: Optional[str] = None,
                 span_sink: Optional[list] = None):
        """One round trip: sticky replica first, failover on transport
        faults, capped jittered backoff between sweeps of the replica set."""
        registry = metrics()
        request_start = time.perf_counter()
        replicas = self._replicas[shard_id]
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                registry.inc("remote.retries")
                delay = self._backoff_delay(attempt)
                if delay:
                    time.sleep(delay)
            for replica in self._replica_order(shard_id):
                if replica.rejected:
                    continue
                probing = False
                with replica.lock:
                    if replica.circuit == "open":
                        elapsed = time.monotonic() - replica.opened_at
                        if (elapsed < self.breaker_cooldown
                                and any(sibling.circuit == "closed"
                                        and not sibling.rejected
                                        for sibling in replicas)):
                            # Cooling off, and a healthy sibling exists to
                            # take the request.  (With no healthy sibling we
                            # probe anyway: guessing beats guaranteed
                            # failure.)
                            continue
                        probing = True
                        replica.probes += 1
                        registry.inc("remote.breaker_probes")
                if self.fault_plan is not None:
                    action = self.fault_plan.advance("client.request")
                    if action is not None:
                        if action.kind == "delay":
                            time.sleep(float(action.param("seconds", 0.05)))
                        elif action.kind == "reset":
                            error = ConnectionResetError(
                                "injected client-side connection reset")
                            self._record_failure(
                                replica, error, probing=probing,
                                has_siblings=len(replicas) > 1)
                            last_error = error
                            continue
                        else:
                            raise ValueError(f"unknown client fault kind "
                                             f"{action.kind!r}")
                try:
                    with replica.lock:
                        sock = self._connect(replica)
                        sock.sendall(message)
                        kind, fields, arrays = _recv_message(sock)
                except ReplicaRejectedError as error:
                    # Deterministic: this replica can never serve this
                    # executor.  Disqualify it and try a sibling.
                    with replica.lock:
                        replica.rejected = True
                        replica.last_error = str(error)
                    last_error = error
                    continue
                except (RemoteProtocolError, OSError) as error:
                    # Transport fault (reset, timeout, garbled frame): the
                    # connection is unusable.  Fail over to the next
                    # replica; a later sweep may retry this one.
                    self._record_failure(replica, error, probing=probing,
                                         has_siblings=len(replicas) > 1)
                    last_error = error
                    continue
                if kind == "error":
                    # The replica ran the request and failed
                    # deterministically — every replica holds the same
                    # shard, so failing over would re-fail identically.
                    raise RemoteShardError(
                        f"shard {shard_id} at {replica.label} failed: "
                        f"{fields.get('message', 'no reason given')}")
                with replica.lock:
                    replica.requests += 1
                    replica.consecutive_failures = 0
                    if probing:
                        replica.probe_successes += 1
                    replica.circuit = "closed"
                self._preferred[shard_id] = replica.replica_id
                if probing:
                    registry.inc("remote.breaker_closed")
                if span_sink is not None and trace_id is not None:
                    span_sink.extend(parse_wire_spans(fields, trace_id))
                elapsed = time.perf_counter() - request_start
                registry.inc("remote.requests")
                registry.observe("remote.request_s", elapsed)
                registry.observe(f"remote.shard.{shard_id}.request_s",
                                 elapsed)
                return self._decode_result(shard_id, kind, arrays)
            if all(replica.rejected for replica in replicas):
                # Nothing left to retry: every replica is deterministically
                # disqualified, so backing off cannot help.
                break
        detail = "; ".join(
            f"{replica.label}: {replica.last_error or 'not attempted'}"
            for replica in replicas)
        raise RemoteShardError(
            f"shard {shard_id} exhausted all {len(replicas)} replica(s) "
            f"after {self.max_retries + 1} sweep(s) ({detail})"
        ) from last_error

    def _decode_result(self, shard_id: int, kind: str, arrays: dict):
        if kind == "top_k_result":
            return arrays["ids"], arrays["scores"]
        if kind == "candidates_result":
            return arrays["ids"], arrays["scores"], arrays["thresholds"]
        raise RemoteProtocolError(
            f"shard {shard_id} sent unexpected reply kind {kind!r}")


# ---------------------------------------------------------------------- #
# Process-spawn helper (tests + benchmarks)
# ---------------------------------------------------------------------- #

def _serve_shard_process(snapshot_path: str, shard_id: int, num_shards: int,
                         policy: str, host: str,
                         fault_plan: Optional[FaultPlan],
                         conn) -> None:  # pragma: no cover - child process
    server = ShardServer(snapshot_path, shard_id, num_shards, policy=policy,
                         host=host, port=0, fault_plan=fault_plan)
    # A dedicated server process dies for real on an injected crash.
    server._crash_hard = True
    conn.send(server.address)
    conn.close()
    server.serve_forever()


def spawn_shard_server(snapshot_path, shard_id: int, num_shards: int, *,
                       policy: str = "contiguous", host: str = "127.0.0.1",
                       fault_plan: Optional[FaultPlan] = None,
                       start_timeout: float = 30.0):
    """Launch a :class:`ShardServer` in its own process.

    Returns ``(process, (host, port))`` once the child has bound its
    ephemeral port.  The child is a daemon: killing it (fault injection) or
    letting the parent exit reaps it, and a ``fault_plan`` travels into the
    child by pickle so scheduled faults (including hard ``crash``) happen in
    true process isolation.  Production deployments use the
    ``repro shard-server`` CLI instead; this helper exists so tests and
    benchmarks can exercise process-level faults cheaply.
    """
    import multiprocessing

    parent_conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_serve_shard_process,
        args=(str(snapshot_path), int(shard_id), int(num_shards), policy,
              host, fault_plan, child_conn),
        daemon=True)
    process.start()
    child_conn.close()
    if not parent_conn.poll(start_timeout):
        process.terminate()
        raise RemoteShardError(
            f"shard server {shard_id}/{num_shards} did not come up within "
            f"{start_timeout}s")
    try:
        address = parent_conn.recv()
    except EOFError:
        raise RemoteShardError(
            f"shard server {shard_id}/{num_shards} died during startup "
            f"(exit code {process.exitcode})") from None
    finally:
        parent_conn.close()
    return process, address
