"""Deterministic fault injection for the serving stack.

Fault-tolerance claims are only worth what their tests can reproduce: "we
survive a replica dying" must mean *this* request observed *that* fault, on
every run, on every machine.  This module provides the one fault-injection
seam shared by the whole serving stack — :class:`ShardServer` (server-side
transport faults), :class:`RemoteExecutor` (client-side transport faults)
and the ingest write-ahead log (torn writes) all consult a single
:class:`FaultPlan` instead of growing ad-hoc test knobs.

A :class:`FaultPlan` is a *schedule*: rules bind a fault ``kind`` to a named
injection **site** and fire by that site's **request index** — a per-site
counter advanced exactly once per operation.  Determinism falls out of the
design: the same plan observing the same sequence of operations injects the
same faults, so every claimed fault path in the tests and in
``benchmarks/bench_fault_tolerance.py`` is replayable bit-for-bit.  Plans
are picklable (counters and all) so a shard-server child process can carry
its own schedule.

Sites in use across the stack (any string is accepted — sites are named by
their call sites, not enumerated here):

* ``"server.handshake"`` — a :class:`ShardServer` handling a handshake.
* ``"server.request"`` — a :class:`ShardServer` handling a payload request.
* ``"client.request"`` — a :class:`RemoteExecutor` request attempt.
* ``"wal.append"`` — a :class:`repro.engine.wal.WriteAheadLog` record write.

Fault kinds are plain strings too; the site decides what a kind means (the
plan is a schedule, not an interpreter):

=================  ====================================================
``delay``          stall the operation by ``seconds`` before proceeding
``reset``          drop the connection without replying (server) / fail
                   the attempt with a simulated transport reset (client)
``garble``         reply with bytes that do not parse as a protocol frame
``reject``         deterministically reject the handshake
``crash``          kill the server (``os._exit`` in a child process, a
                   clean shutdown for in-process servers)
``torn_write``     persist only a prefix of the WAL record, then raise —
                   a crash in the middle of a write
=================  ====================================================
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["FaultAction", "FaultPlan", "FaultRule"]


class FaultAction:
    """One scheduled fault, handed to the injection site that drew it."""

    __slots__ = ("kind", "params", "site", "index")

    def __init__(self, kind: str, params: dict, site: str, index: int) -> None:
        self.kind = kind
        self.params = params
        self.site = site
        self.index = index

    def param(self, name: str, default=None):
        """A fault parameter (e.g. ``seconds`` for a ``delay``)."""
        return self.params.get(name, default)

    def __repr__(self) -> str:
        return (f"FaultAction({self.kind!r}, site={self.site!r}, "
                f"index={self.index}, params={self.params})")


class FaultRule:
    """One schedule entry: fire ``kind`` at matching request indices.

    Matching, in decreasing precedence:

    * ``at`` — an exact index or an iterable of exact indices.
    * ``after`` — every index ``>= after``.
    * neither — every index.

    ``count`` bounds the total number of firings (``None`` = unbounded,
    except ``at=<int>`` which naturally fires once).
    """

    def __init__(self, site: str, kind: str, *, at=None,
                 after: Optional[int] = None, count: Optional[int] = None,
                 params: Optional[dict] = None) -> None:
        self.site = str(site)
        self.kind = str(kind)
        if at is not None and after is not None:
            raise ValueError("pass at=… or after=…, not both")
        if at is None:
            self.at: Optional[frozenset] = None
        elif isinstance(at, int):
            self.at = frozenset((at,))
        else:
            self.at = frozenset(int(index) for index in at)
        self.after = None if after is None else int(after)
        if self.after is not None and self.after < 0:
            raise ValueError("after must be >= 0")
        self.count = None if count is None else int(count)
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unbounded)")
        self.params = dict(params or {})
        self.fired = 0

    def matches(self, index: int) -> bool:
        if self.count is not None and self.fired >= self.count:
            return False
        if self.at is not None:
            return index in self.at
        if self.after is not None:
            return index >= self.after
        return True

    def __repr__(self) -> str:
        window = (f"at={sorted(self.at)}" if self.at is not None
                  else f"after={self.after}" if self.after is not None
                  else "always")
        return (f"FaultRule({self.site!r}, {self.kind!r}, {window}, "
                f"count={self.count}, fired={self.fired})")


class FaultPlan:
    """A seeded, deterministic schedule of faults across injection sites.

    Build a plan, :meth:`inject` rules into it, and hand it to the
    components under test; each component advances its site's counter once
    per operation via :meth:`advance` and applies whatever action (if any)
    the schedule returns.  The ``seed`` drives the plan's :attr:`rng` —
    available to rules that want randomized parameters — so a plan is
    reproducible end to end from ``(seed, schedule, operation sequence)``.

    Thread-safe: concurrent sites (a threading shard server, a client fan-out
    pool) advance under one lock.  Picklable: the lock is dropped and
    recreated, counters and fired-fault history travel with the plan, so a
    child process continues the schedule it was given.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self._rules: List[FaultRule] = []
        self._indices: Dict[str, int] = {}
        self._fired: List[Tuple[str, int, str]] = []
        self._lock = threading.Lock()

    # -- schedule construction ------------------------------------------ #

    def inject(self, site: str, kind: str, *, at=None,
               after: Optional[int] = None, count: Optional[int] = None,
               **params) -> "FaultPlan":
        """Schedule ``kind`` at ``site``; returns ``self`` for chaining.

        ``at``/``after``/``count`` select request indices (see
        :class:`FaultRule`); remaining keyword arguments become the fault's
        parameters (e.g. ``seconds=0.5`` for a ``delay``).
        """
        self._rules.append(FaultRule(site, kind, at=at, after=after,
                                     count=count, params=params))
        return self

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return tuple(self._rules)

    # -- runtime -------------------------------------------------------- #

    def advance(self, site: str) -> Optional[FaultAction]:
        """Advance ``site``'s request counter; return its scheduled fault.

        Exactly one counter tick per call, whether or not a rule fires; the
        first matching rule wins (schedule order breaks ties).
        """
        with self._lock:
            index = self._indices.get(site, 0)
            self._indices[site] = index + 1
            for rule in self._rules:
                if rule.site == site and rule.matches(index):
                    rule.fired += 1
                    self._fired.append((site, index, rule.kind))
                    return FaultAction(rule.kind, rule.params, site, index)
        return None

    def requests_seen(self, site: str) -> int:
        """How many operations ``site`` has advanced through."""
        with self._lock:
            return self._indices.get(site, 0)

    @property
    def fired(self) -> List[Tuple[str, int, str]]:
        """Chronological ``(site, index, kind)`` log of injected faults."""
        with self._lock:
            return list(self._fired)

    def stats(self) -> dict:
        """Counters for assertions: per-site operations and injections.

        ``fired_events`` is the chronological :attr:`fired` log as
        JSON-ready dicts — the shape ``service.stats()["faults"]`` exposes,
        so tests assert *which* faults fired without touching private state.
        """
        with self._lock:
            injected: Dict[str, int] = {}
            for site, _, _ in self._fired:
                injected[site] = injected.get(site, 0) + 1
            return {
                "seed": self.seed,
                "rules": len(self._rules),
                "operations": dict(self._indices),
                "injected": injected,
                "fired": len(self._fired),
                "fired_events": [
                    {"site": site, "index": index, "kind": kind}
                    for site, index, kind in self._fired],
            }

    # -- pickling (shard-server child processes) ------------------------ #

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self._rules)}, "
                f"fired={len(self._fired)})")
