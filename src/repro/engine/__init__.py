"""Serving-grade inference engine.

This subpackage concentrates everything the library needs to turn trained
models into a fast, reusable serving path:

* :class:`PropagationEngine` — owns the sparse propagation operator (CSR
  matrix, cached transpose, configurable dtype, reusable output buffers) and
  exposes both a plain-array product and a differentiable ``apply`` that
  plugs into the autograd graph.  Every GCN model's :math:`\\hat{A} X`
  product routes through it.
* :class:`UserItemIndex` — an immutable CSR ``user -> items`` index with
  fully vectorised batch operations (flat-index masking, membership
  matrices, per-user counts).  Built once per split and shared by the
  evaluator, the recommendation service and ``Recommender.recommend``.
* :class:`InferenceIndex` — freezes a model's final user/item embeddings
  after training (or falls back to its ``score_users``) together with the
  train-interaction exclusion index, so scoring + masking become a pair of
  dense matmuls and one vectorised flat-index assignment per batch.
* :class:`RecommendationService` — batched ``top_k`` / ``score_pairs`` APIs
  with an LRU result cache; the serving front-end used by the CLI, the
  examples and ``Recommender.recommend``.
* :class:`ShardedInferenceIndex` — item-partitioned serving for catalogues
  that outgrow one worker: the frozen item matrix splits into S shards
  (contiguous or strided), each shard ranks its own top-k candidates with a
  locally sliced exclusion index, and an exact merge re-ranks the pooled
  S·k candidates — identical results to the unsharded path.  Fan-out runs
  through an executor seam (:class:`SerialExecutor` default,
  :class:`ThreadedExecutor` for GIL-releasing BLAS parallelism); the
  service exposes it via ``num_shards=…``/``parallel=True``.

Dtype policy: training always runs in ``float64`` (the autograd substrate is
exact-gradient float64); inference defaults to ``float64`` for bit-parity
with evaluation but can be dropped to ``float32`` for serving workloads via
the ``dtype`` arguments on :class:`PropagationEngine`, :class:`InferenceIndex`
and :class:`RecommendationService`.
"""

from .propagation import PropagationEngine
from .index import InferenceIndex, UserItemIndex, train_exclusion_index
from .service import RecommendationService
from .sharding import (
    ItemShard,
    SerialExecutor,
    ShardedInferenceIndex,
    ThreadedExecutor,
    partition_items,
)

__all__ = [
    "PropagationEngine",
    "InferenceIndex",
    "UserItemIndex",
    "train_exclusion_index",
    "RecommendationService",
    "ShardedInferenceIndex",
    "ItemShard",
    "SerialExecutor",
    "ThreadedExecutor",
    "partition_items",
]
