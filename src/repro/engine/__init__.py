"""Serving-grade inference engine.

This subpackage concentrates everything the library needs to turn trained
models into a fast, reusable serving path:

* :class:`PropagationEngine` — owns the sparse propagation operator (CSR
  matrix, cached transpose, configurable dtype, reusable output buffers) and
  exposes both a plain-array product and a differentiable ``apply`` that
  plugs into the autograd graph.  Every GCN model's :math:`\\hat{A} X`
  product routes through it.
* :class:`UserItemIndex` — an immutable CSR ``user -> items`` index with
  fully vectorised batch operations (flat-index masking, membership
  matrices, per-user counts).  Built once per split and shared by the
  evaluator, the recommendation service and ``Recommender.recommend``.
* :class:`InferenceIndex` — freezes a model's final user/item embeddings
  after training (or falls back to its ``score_users``) together with the
  train-interaction exclusion index, so scoring + masking become a pair of
  dense matmuls and one vectorised flat-index assignment per batch.
* :class:`RecommendationService` — batched ``top_k`` / ``score_pairs`` APIs
  with an LRU result cache; the serving front-end used by the CLI, the
  examples and ``Recommender.recommend``.
* :class:`ShardedInferenceIndex` — item-partitioned serving for catalogues
  that outgrow one worker: the frozen item matrix splits into S shards
  (contiguous or strided), each shard ranks its own top-k candidates with a
  locally sliced exclusion index, and an exact merge re-ranks the pooled
  S·k candidates — identical results to the unsharded path.  Fan-out runs
  through an executor seam (:class:`SerialExecutor` default,
  :class:`ThreadedExecutor` for GIL-releasing BLAS parallelism); the
  service exposes it via ``num_shards=…``/``parallel=True``.

* :class:`CandidateIndex` / :class:`ShardedCandidateIndex` — two-stage
  top-K for catalogues where even one full-precision pass per request is too
  expensive: stage 1 scores a quantised item matrix (symmetric per-item int8
  codes + scale vectors, or a float32 cast) and keeps ``candidate_factor*k``
  candidates under a Cauchy–Schwarz upper bound with cached item norms;
  stage 2 rescores only the candidates in the index dtype and re-ranks
  exactly.  Every batch carries a :class:`Certificate`: when the best pruned
  upper bound falls below the k-th rescored score the result provably equals
  exhaustive search.  The exact path stays the default and the oracle; the
  service exposes the pipeline via ``candidate_mode=…``/``candidate_factor=…``
  and composes it with sharding (per-shard quantised blocks, certified
  merge).

* :class:`OnlineRecommendationService` / :class:`OnlineUserItemIndex` /
  :class:`InteractionDelta` — incremental index updates for online serving:
  new (user, item) interactions (including previously unseen users, which
  get a fallback embedding row) are folded into an append-only sorted
  flat-key delta overlaid on the frozen CSR exclusion, so ``ingest`` is one
  linear merge, serving stays one vectorised pass (base lookup OR delta
  binary search), only the touched users lose their cache entries, and
  ``compact()`` merges the delta into a fresh CSR bit-identical to a
  from-scratch rebuild — overlay serving ≡ rebuild serving, before and
  after compaction, across sharded and candidate backends.

* :class:`AsyncRecommendationFrontend` — the asyncio micro-batching
  front-end for socket-shaped traffic: arbitrarily many concurrent
  ``await recommend(user, k)`` / ``await ingest(users, items)`` calls
  coalesce into shared scoring (and ingest) batches per request signature,
  flushed at ``max_batch_size`` or a ``batch_window_ms`` deadline started by
  each group's first waiter.  Batches run on a worker thread (the event loop
  never blocks), a bounded pending queue applies backpressure with explicit
  load shedding (:class:`OverloadedError` or block-until-capacity), and the
  results are bit-identical to calling ``service.top_k`` directly —
  coalescing never changes results.

* :class:`ServingSnapshot` / :func:`save_snapshot` / :func:`load_snapshot` —
  zero-copy persistence of the whole frozen serving state (embeddings, item
  norms, exclusion CSR, quantised candidate blocks) in ONE versioned,
  crc32-checksummed, atomically swapped file.  ``load_snapshot(mmap=True)``
  rebuilds the serving stack as read-only memory-mapped views — O(open)
  worker cold start, pages faulted lazily, bit-identical serving — and
  :class:`ProcessExecutor` plugs into the executor seam to fan shards out
  to worker processes that re-open the snapshot by offset (tasks ship
  ``(snapshot path, shard id, user batch)``, never matrices).  Corrupted or
  version-skewed files are rejected with :class:`SnapshotFormatError`.

* :class:`ShardServer` / :class:`RemoteExecutor` — the multi-host tier: one
  TCP server process per shard, each holding its mmap'd slice of a
  byte-identical snapshot copy, speaking a length-prefixed binary protocol
  (no pickle on the wire).  :class:`RemoteExecutor` plugs the same payload
  seam over sockets — protocol-version + snapshot-fingerprint handshake,
  per-request timeouts, bounded retries with backoff — and the router keeps
  the certified exact merge, so remote serving is bit-identical to the
  serial oracle and *fails closed*: any unreachable/stale/faulty shard
  raises :class:`RemoteShardError`, never a partial merge.

* :class:`FaultPlan` / :class:`WriteAheadLog` — the availability and
  durability layer on top of the exactness substrate.
  :class:`RemoteExecutor` accepts one *replica set* per shard and fails
  over transport faults to healthy siblings (per-replica circuit breakers,
  half-open probes, capped full-jitter retry backoff) — failover never
  changes results, only which replica computes them — while
  ``OnlineRecommendationService(wal_path=…)`` appends every acknowledged
  ingest batch to a checksummed write-ahead log before returning, so a
  post-crash construction over the same log serves bit-identically to the
  uncrashed service (torn tail records are detected and dropped; snapshot
  republish rotates the log to keep it bounded).  A seeded
  :class:`FaultPlan` schedules deterministic faults (resets, delays,
  garbled frames, handshake rejections, server crashes, torn writes) into
  all three components, so every claimed fault path is a reproducible test.

* :class:`MetricsRegistry` / :class:`Tracer` — end-to-end serving
  telemetry.  A process-local registry of named counters, gauges and
  fixed-bucket latency histograms (exact p50/p90/p99 over a bounded raw
  sample window) instruments every hot path — frontend batching, cache
  probes, candidate stage-1/stage-2, shard fan-out/merge, remote
  retries/failovers/breaker transitions, WAL appends/fsyncs/replays,
  online ingest/compact/publish — and ``service.stats()`` folds every
  stats surface (cache, certificates, health, online, WAL, frontend,
  faults, metrics) into ONE nested dict with stable keys.  Request-scoped
  tracing (:func:`traced` / :func:`span`, contextvar-propagated through
  asyncio and worker threads, trace ids riding the remote wire protocol so
  shard-server spans stitch into the router's trace) records the N slowest
  request trees in a bounded ring.  Instrumentation never changes results:
  serving is bit-identical with telemetry on, off, or swapped for
  :class:`NullMetricsRegistry`, and the overhead is gated ≤5% in CI.

Dtype policy: training always runs in ``float64`` (the autograd substrate is
exact-gradient float64); inference defaults to ``float64`` for bit-parity
with evaluation but can be dropped to ``float32`` for serving workloads via
the ``dtype`` arguments on :class:`PropagationEngine`, :class:`InferenceIndex`
and :class:`RecommendationService` — and to quantised int8 candidate blocks
via ``candidate_mode="int8"``.
"""

from .propagation import PropagationEngine
from .index import InferenceIndex, UserItemIndex, train_exclusion_index
from .candidates import (
    CANDIDATE_MODES,
    CandidateIndex,
    Certificate,
    QuantizedItemBlock,
    ShardedCandidateIndex,
    quantize_item_matrix,
)
from .service import RecommendationService
from .frontend import (
    SHED_POLICIES,
    AsyncRecommendationFrontend,
    OverloadedError,
)
from .online import (
    NEW_USER_POLICIES,
    InteractionDelta,
    OnlineRecommendationService,
    OnlineUserItemIndex,
)
from .sharding import (
    ItemShard,
    ProcessExecutor,
    SerialExecutor,
    ShardedInferenceIndex,
    ThreadedExecutor,
    partition_items,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    ServingSnapshot,
    SnapshotFormatError,
    load_snapshot,
    save_snapshot,
    snapshot_fingerprint,
    snapshot_info,
)
from .remote import (
    PROTOCOL_VERSION,
    RemoteExecutor,
    RemoteProtocolError,
    RemoteShardError,
    ReplicaRejectedError,
    ShardServer,
    parse_replica_set,
    spawn_shard_server,
)
from .faults import FaultAction, FaultPlan, FaultRule
from .observability import (
    MetricsRegistry,
    NullMetricsRegistry,
    Span,
    TraceContext,
    Tracer,
    current_trace,
    format_trace,
    get_tracer,
    metrics,
    set_metrics,
    set_tracer,
    span,
    traced,
)
from .wal import (
    FSYNC_POLICIES,
    WalError,
    WalTornWrite,
    WriteAheadLog,
    read_wal_records,
)

__all__ = [
    "PropagationEngine",
    "InferenceIndex",
    "UserItemIndex",
    "train_exclusion_index",
    "RecommendationService",
    "SHED_POLICIES",
    "AsyncRecommendationFrontend",
    "OverloadedError",
    "ShardedInferenceIndex",
    "ItemShard",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "partition_items",
    "SNAPSHOT_VERSION",
    "ServingSnapshot",
    "SnapshotFormatError",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
    "snapshot_fingerprint",
    "PROTOCOL_VERSION",
    "ShardServer",
    "RemoteExecutor",
    "RemoteShardError",
    "RemoteProtocolError",
    "ReplicaRejectedError",
    "parse_replica_set",
    "spawn_shard_server",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "FSYNC_POLICIES",
    "WalError",
    "WalTornWrite",
    "WriteAheadLog",
    "read_wal_records",
    "CANDIDATE_MODES",
    "CandidateIndex",
    "ShardedCandidateIndex",
    "Certificate",
    "QuantizedItemBlock",
    "quantize_item_matrix",
    "NEW_USER_POLICIES",
    "InteractionDelta",
    "OnlineRecommendationService",
    "OnlineUserItemIndex",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "current_trace",
    "format_trace",
    "get_tracer",
    "metrics",
    "set_metrics",
    "set_tracer",
    "span",
    "traced",
]
