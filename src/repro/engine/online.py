"""Online serving: incremental index updates over the frozen-snapshot stack.

Every other serving structure in :mod:`repro.engine` is a frozen snapshot:
:class:`UserItemIndex` is memoised per split, :class:`InferenceIndex` and the
candidate blocks are built once, and a new interaction used to force a full
rebuild.  This module makes the stack *updatable* without giving up exactness,
using the snapshot + delta + compaction shape of streaming ingestion systems:

* :class:`InteractionDelta` — an append-only log of new (user, item)
  interactions held as **sorted flat keys** (``user * num_items + item``).
  Appends are one linear merge of two sorted arrays; membership is one
  ``searchsorted``; per-user slices come from two ``searchsorted`` calls on
  the user's key range.  No per-event Python loops anywhere.
* :class:`OnlineUserItemIndex` — a frozen base :class:`UserItemIndex` with a
  delta overlaid on top, presenting the same read API (``contains``,
  ``mask``, ``flat_pairs``, ``counts``, ``membership`` …) so it can stand in
  for the base anywhere on the serving path.  Every operation is one
  vectorised pass over the base (table lookup / CSR gather) OR'd with one
  vectorised pass over the delta (binary search) — the serving-path "no
  per-user Python loops" invariant is preserved.  The delta is kept
  **disjoint** from the base, so counts and nnz stay additive and
  :meth:`OnlineUserItemIndex.compact` is a single linear merge of two sorted
  key arrays into a fresh CSR that is **bit-identical** to a from-scratch
  :class:`UserItemIndex` build on the accumulated interactions — the
  correctness oracle of this subsystem, mirroring "the exact path stays the
  oracle" from sharded and candidate serving.
* :class:`OnlineRecommendationService` — a :class:`RecommendationService`
  whose exclusion state is updatable: ``ingest(users, items)`` folds new
  interactions (including previously unseen users, which get a fallback
  embedding row appended under a configurable policy) into the overlay,
  invalidates **only the touched users'** LRU cache entries, and
  auto-compacts once the delta outgrows ``compact_threshold``.  Ingest
  composes with ``num_shards`` (each shard's local exclusion gets its own
  sliced overlay, updated through :meth:`ItemShard.locate`, and still serves
  through the existing executor seam) and with ``candidate_mode`` (stage-1
  bound masking reads the overlay dynamically, so ingest never requantises;
  compaction rebuilds the candidate backend like a fresh service would).

Exactness contract ("updates are exact"): for any ingest sequence, serving
through the overlay is bit-identical to serving a full rebuild on the same
accumulated interactions, before and after ``compact()`` — scores come from
the same embedding matrices and the masked (user, item) set is identical, so
top-K, sharded top-K and certified two-stage top-K all agree with the
rebuilt oracle.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from .index import InferenceIndex, UserItemIndex, _expand_slices, _FlatPairOps
from .observability import metrics, span
from .service import RecommendationService
from .snapshot import save_snapshot
from .wal import WriteAheadLog

__all__ = [
    "NEW_USER_POLICIES",
    "InteractionDelta",
    "OnlineUserItemIndex",
    "OnlineRecommendationService",
]

#: Embedding fallback policies for previously unseen users: ``"mean"`` serves
#: them from the mean of the snapshot's existing user rows (a popularity-like
#: cold-start ranking), ``"zeros"`` from a zero vector (uniform scores; the
#: ascending-id tie-break makes the ranking deterministic).
NEW_USER_POLICIES = ("mean", "zeros")


def _merge_sorted_keys(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Merge two sorted, mutually disjoint int64 key arrays in linear time.

    ``searchsorted`` places every right key among the left ones; offsetting
    by its own rank turns those into positions in the merged array, and one
    boolean scatter routes both inputs — no comparison sort over the union.
    """
    if not left.size:
        return right.copy()
    if not right.size:
        return left.copy()
    merged = np.empty(left.size + right.size, dtype=np.int64)
    positions = np.searchsorted(left, right) + np.arange(right.size, dtype=np.int64)
    from_right = np.zeros(merged.size, dtype=bool)
    from_right[positions] = True
    merged[positions] = right
    merged[~from_right] = left
    return merged


class InteractionDelta:
    """Append-only log of (user, item) interactions as sorted flat keys.

    The key space is ``user * num_items + item`` — the same flat encoding as
    :attr:`UserItemIndex.flat_keys`, so delta and base merge without any
    remapping.  The log only ever grows; callers keep it disjoint from their
    base index (see :meth:`OnlineUserItemIndex.ingest`).
    """

    def __init__(self, num_items: int) -> None:
        self.num_items = int(num_items)
        self._keys = np.empty(0, dtype=np.int64)

    @property
    def keys(self) -> np.ndarray:
        """Sorted unique flat keys of every logged pair."""
        return self._keys

    @property
    def nnz(self) -> int:
        return int(self._keys.size)

    def add_keys(self, keys: np.ndarray) -> None:
        """Merge sorted unique ``keys`` (disjoint from the log) into the log."""
        if keys.size:
            self._keys = _merge_sorted_keys(self._keys, keys)

    def contains_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised membership of flat ``keys`` (any shape) in the log."""
        keys = np.asarray(keys, dtype=np.int64)
        if not self._keys.size:
            return np.zeros(keys.shape, dtype=bool)
        positions = np.minimum(np.searchsorted(self._keys, keys),
                               self._keys.size - 1)
        return self._keys[positions] == keys

    def _bounds(self, users: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Start/stop positions of each user's key range ``[u*I, (u+1)*I)``."""
        lo = np.searchsorted(self._keys, users * np.int64(self.num_items))
        hi = np.searchsorted(self._keys, (users + 1) * np.int64(self.num_items))
        return lo, hi

    def counts(self, users: np.ndarray) -> np.ndarray:
        """Logged pairs per user — two binary searches, no iteration."""
        users = np.asarray(users, dtype=np.int64)
        lo, hi = self._bounds(users)
        return hi - lo

    def pairs_for(self, users: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(batch_row, item) coordinates of the users' logged pairs.

        The delta-side counterpart of :meth:`UserItemIndex.flat_pairs`: the
        per-user key ranges come from :meth:`_bounds` and one global arange
        minus running offsets turns them into gather positions.
        """
        users = np.asarray(users, dtype=np.int64)
        lo, hi = self._bounds(users)
        rows, positions = _expand_slices(hi - lo, lo)
        return rows, self._keys[positions] % self.num_items

    def __repr__(self) -> str:
        return f"InteractionDelta(items={self.num_items}, nnz={self.nnz})"


class OnlineUserItemIndex(_FlatPairOps):
    """A frozen :class:`UserItemIndex` base with a delta overlay on top.

    Presents the :class:`UserItemIndex` read API so it can replace the base
    anywhere on the serving path (score masking, candidate-bound masking,
    membership tests).  ``num_users`` may exceed the base's — previously
    unseen users live entirely in the delta until the next compaction.  The
    base itself is never mutated (it may be the split-cached index shared
    with the trainer and evaluator); :meth:`compact` swaps in a freshly
    merged CSR instead.
    """

    def __init__(self, base: UserItemIndex, *,
                 num_users: Optional[int] = None) -> None:
        self.base = base
        self.num_items = base.num_items
        self.num_users = base.num_users if num_users is None else int(num_users)
        if self.num_users < base.num_users:
            raise ValueError("overlay cannot cover fewer users than its base")
        self.delta = InteractionDelta(self.num_items)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def grow_users(self, num_users: int) -> None:
        """Extend the user id space (new users start with empty histories)."""
        if num_users < self.num_users:
            raise ValueError("user id space can only grow")
        self.num_users = int(num_users)

    def ingest(self, users: np.ndarray,
               items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fold new (user, item) pairs into the delta; return the novel ones.

        Pairs already present in the base or the delta (and duplicates inside
        the batch) are dropped, keeping the delta disjoint from the base so
        counts stay additive and compaction is a pure merge.  Returns the
        deduplicated ``(users, items)`` actually added, sorted by flat key.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be aligned 1-d arrays")
        if users.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if users.min() < 0 or users.max() >= self.num_users:
            raise IndexError("user id out of range for this index")
        if items.min() < 0 or items.max() >= self.num_items:
            raise IndexError("item id out of range for this index")
        keys = np.unique(users * np.int64(self.num_items) + items)
        keys = keys[~self.delta.contains_keys(keys)]
        key_users = keys // self.num_items
        in_base_range = key_users < self.base.num_users
        if in_base_range.any():
            known = np.zeros(keys.size, dtype=bool)
            known[in_base_range] = self.base.contains(
                key_users[in_base_range],
                keys[in_base_range] % self.num_items)
            keys = keys[~known]
        self.delta.add_keys(keys)
        return keys // self.num_items, keys % self.num_items

    def compact(self) -> "OnlineUserItemIndex":
        """Merge the delta into a fresh frozen base CSR; empty the delta.

        One linear merge of two sorted disjoint key arrays feeds
        :meth:`UserItemIndex.from_flat_keys`, whose result is bit-identical
        (same ``indptr``/``indices``/``flat_keys``) to a from-scratch
        :class:`UserItemIndex` build on the accumulated interactions — the
        subsystem's correctness oracle, pinned by the property sweep.
        """
        if self.delta.nnz or self.num_users != self.base.num_users:
            merged = _merge_sorted_keys(self.base.flat_keys, self.delta.keys)
            self.base = UserItemIndex.from_flat_keys(
                self.num_users, self.num_items, merged)
            self.delta = InteractionDelta(self.num_items)
        return self

    # ------------------------------------------------------------------ #
    # UserItemIndex read API (one base pass OR'd with one delta pass)
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return self.base.nnz + self.delta.nnz

    @property
    def flat_keys(self) -> np.ndarray:
        """Sorted flat keys of every indexed pair (merged on demand)."""
        return _merge_sorted_keys(self.base.flat_keys, self.delta.keys)

    def all_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """(users, items) of every accumulated interaction, sorted by key.

        This is what a from-scratch rebuild should be fed — the oracle
        construction used by the parity tests and the online benchmark.
        """
        keys = self.flat_keys
        return keys // self.num_items, keys % self.num_items

    def counts(self, users: Optional[np.ndarray] = None) -> np.ndarray:
        if users is None:
            users = np.arange(self.num_users, dtype=np.int64)
        users = np.asarray(users, dtype=np.int64)
        base_counts = np.zeros(users.shape, dtype=np.int64)
        in_base = users < self.base.num_users
        if in_base.all():
            base_counts = self.base.counts(users)
        elif in_base.any():
            base_counts[in_base] = self.base.counts(users[in_base])
        return base_counts + self.delta.counts(users)

    def users_with_items(self) -> np.ndarray:
        return np.nonzero(self.counts() > 0)[0].astype(np.int64)

    def items_for(self, user: int) -> np.ndarray:
        user = int(user)
        if user < self.base.num_users:
            base_items = self.base.items_for(user)
        else:
            base_items = np.empty(0, dtype=np.int64)
        lo, hi = self.delta._bounds(np.asarray([user], dtype=np.int64))
        delta_items = self.delta.keys[lo[0]:hi[0]] % self.num_items
        return _merge_sorted_keys(base_items, delta_items)

    def flat_pairs(self, users: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        users = np.asarray(users, dtype=np.int64)
        in_base = users < self.base.num_users
        if in_base.all():
            base_rows, base_cols = self.base.flat_pairs(users)
        elif in_base.any():
            sel = np.nonzero(in_base)[0]
            rows, base_cols = self.base.flat_pairs(users[sel])
            base_rows = sel[rows]
        else:
            base_rows = base_cols = np.empty(0, dtype=np.int64)
        delta_rows, delta_cols = self.delta.pairs_for(users)
        if not delta_rows.size:
            return base_rows, base_cols
        return (np.concatenate([base_rows, delta_rows]),
                np.concatenate([base_cols, delta_cols]))

    def contains(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            raise IndexError("user id out of range for this index")
        if items.size and (items.min() < 0 or items.max() >= self.num_items):
            raise IndexError("item id out of range for this index")
        users, items = np.broadcast_arrays(users, items)
        keys = users * np.int64(self.num_items) + items
        result = self.delta.contains_keys(keys)
        in_base = users < self.base.num_users
        if in_base.all():
            result = result | self.base.contains(users, items)
        elif in_base.any():
            result = result.copy()
            result[in_base] |= self.base.contains(users[in_base],
                                                  items[in_base])
        return result

    def __repr__(self) -> str:
        return (f"OnlineUserItemIndex(users={self.num_users}, "
                f"items={self.num_items}, base_nnz={self.base.nnz}, "
                f"delta_nnz={self.delta.nnz})")


class OnlineRecommendationService(RecommendationService):
    """A :class:`RecommendationService` that folds in new interactions online.

    On top of the frozen-snapshot service this adds:

    * :meth:`ingest` — append new (user, item) interactions.  Consumed items
      disappear from the affected users' recommendations immediately (the
      exclusion overlay is read dynamically by every backend: exact, sharded
      and two-stage candidates).  Previously unseen user ids grow the user
      matrix with a fallback embedding row (``new_user_policy``).
    * Targeted cache invalidation — only the users actually touched by an
      ingest lose their LRU entries; everyone else keeps serving from cache.
    * :meth:`compact` — fold the delta into fresh frozen CSRs (bit-identical
      to a rebuild) and requantise the candidate backend; runs automatically
      once the delta reaches ``compact_threshold`` pairs.
    * :meth:`publish_snapshot` — write the compacted frozen state as a
      :mod:`repro.engine.snapshot` artifact (atomic ``os.replace`` publish,
      so mapped readers only ever see complete files).  With
      ``snapshot_path=…`` every compaction republishes in a background
      thread — the heavy quantise-and-write work happens off the serving
      path, and fresh snapshots ship without a stop-the-world refreeze.
    * Durable ingest via a write-ahead log (``wal_path=…``): every event
      batch is appended to a checksummed :class:`repro.engine.wal.WriteAheadLog`
      before it touches in-memory serving state (true write-ahead ordering),
      so acknowledged events survive process death — and a failed append
      leaves serving exactly on the durable prefix, never ahead of it.  Construction over an existing log *is* recovery — intact
      records are replayed onto the snapshot base (a torn tail record is
      detected by checksum and dropped), and because compaction is
      serving-invariant the recovered service serves bit-identically to the
      service that never crashed, for any crash point.  Replay is idempotent
      (ingest dedups against the base), so a snapshot republish plus
      :meth:`repro.engine.wal.WriteAheadLog.rotate` merely bounds the log —
      correctness never depends on rotation having happened.

    The wrapped snapshot machinery is reused as-is: sharded serving keeps its
    executor seam (each shard's local exclusion gets a sliced overlay), and
    candidate serving keeps its quantised blocks (ingest never requantises —
    item embeddings are untouched — only compaction rebuilds the backend).
    Concurrent ``ingest`` / ``compact`` calls serialise on an internal lock;
    serving *during* an ingest from another thread is safe because every
    mutation is an atomic swap of an immutable structure (the delta's sorted
    key array, the compacted base CSR, the grown embedding matrix) — a
    concurrent reader sees the complete old state or the complete new state,
    never a partial one.  The :class:`repro.engine.AsyncRecommendationFrontend`
    additionally funnels all batches through one worker thread, so coalesced
    traffic never races at all.
    """

    def __init__(self, model=None, split=None, *,
                 compact_threshold: int = 100_000,
                 new_user_policy: str = "mean",
                 max_user_growth: int = 1_000_000,
                 snapshot_path=None, wal_path=None, wal_fsync: str = "batch",
                 wal_batch_interval: int = 64, wal_fault_plan=None,
                 **kwargs) -> None:
        self.compact_threshold = int(compact_threshold)
        if self.compact_threshold < 1:
            raise ValueError("compact_threshold must be a positive integer")
        if new_user_policy not in NEW_USER_POLICIES:
            raise ValueError(f"unknown new_user_policy {new_user_policy!r}; "
                             f"options: {NEW_USER_POLICIES}")
        self.new_user_policy = new_user_policy
        self.max_user_growth = int(max_user_growth)
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None
        # Serialises concurrent ingest/compact calls (reentrant: an ingest
        # crossing compact_threshold compacts while holding the lock).
        self._ingest_lock = threading.RLock()
        self.publishes = 0
        self._publisher: Optional[threading.Thread] = None
        self._publish_error: Optional[BaseException] = None
        super().__init__(model, split, **kwargs)
        if self.index.exclusion is None:
            raise ValueError("online serving needs an exclusion index to fold "
                             "new interactions into")
        self.ingested_pairs = 0
        self.new_users = 0
        self.compactions = 0
        self._extra_users = 0
        self._base_users = self.index.num_users
        self._fallback_row_cache: Optional[np.ndarray] = None
        self._wrap_overlays()
        self._wal: Optional[WriteAheadLog] = None
        self.wal_replayed = 0
        self._replaying = False
        if wal_path is not None:
            # Opening the log IS crash recovery: intact records survive a
            # torn tail and are replayed below, so construction over the
            # snapshot base + an existing WAL reproduces the uncrashed
            # service's serving state bit-identically.
            self._wal = WriteAheadLog(wal_path, fsync=wal_fsync,
                                      batch_interval=wal_batch_interval,
                                      fault_plan=wal_fault_plan)
            if self._wal.recovered:
                with self._ingest_lock:
                    self._replaying = True
                    try:
                        for users, items in self._wal.recovered:
                            self._ingest_locked(users, items, log=False)
                            self.wal_replayed += 1
                            metrics().inc("wal.replayed_records")
                    finally:
                        self._replaying = False

    # ------------------------------------------------------------------ #
    @staticmethod
    def _frozen_base(exclusion) -> UserItemIndex:
        """Unwrap an existing (compacted) overlay so wrapping never nests."""
        if isinstance(exclusion, OnlineUserItemIndex):
            return exclusion.compact().base
        return exclusion

    def _wrap_overlays(self) -> None:
        """Put a delta overlay in front of every (frozen) exclusion index."""
        self._overlay = OnlineUserItemIndex(self._frozen_base(self.index.exclusion))
        self.index.exclusion = self._overlay
        self._shard_overlays: List[OnlineUserItemIndex] = []
        if self._sharded is not None:
            self._sharded.exclusion = self._overlay
            for shard in self._sharded.shards:
                overlay = OnlineUserItemIndex(self._frozen_base(shard.exclusion))
                shard.exclusion = overlay
                self._shard_overlays.append(overlay)

    @property
    def overlay(self) -> OnlineUserItemIndex:
        """The master exclusion overlay (base CSR + pending delta)."""
        return self._overlay

    @property
    def delta_size(self) -> int:
        """Pairs currently pending in the delta (compaction trigger)."""
        return self._overlay.delta.nnz

    def _fallback_row(self) -> np.ndarray:
        """The embedding row served to previously unseen users."""
        if self.new_user_policy == "zeros":
            return np.zeros(self.index.user_embeddings.shape[1],
                            dtype=self.index.dtype)
        if self._fallback_row_cache is None:
            # Mean over the *original* snapshot rows, cached so every growth
            # batch appends identical rows regardless of who grew before.
            original = self.index.user_embeddings[:self._base_users]
            if original.shape[0] == 0:
                row = np.zeros(original.shape[1], dtype=self.index.dtype)
            else:
                row = original.mean(axis=0).astype(self.index.dtype)
            self._fallback_row_cache = row
        return self._fallback_row_cache

    def _check_growth(self, num_users: int) -> int:
        """Rows :meth:`_grow_users` would append; raises where it would.

        Split out so ingest can refuse a batch *before* logging it to the
        WAL: an event the log carries must be replayable, and a batch this
        check rejects would raise identically during recovery.
        """
        grown = num_users - self.index.num_users
        if grown <= 0:
            return 0
        if self._extra_users + grown > self.max_user_growth:
            # The user id space is dense: one typo'd id would otherwise
            # allocate embedding rows for every id below it.
            raise ValueError(
                f"ingest would grow the user space by {self._extra_users + grown} "
                f"rows, above max_user_growth={self.max_user_growth}; raise the "
                f"limit if the traffic is genuine")
        if not self.index.is_factorized:
            raise ValueError(
                "previously unseen users need a factorised snapshot to append "
                "a fallback embedding row to; scorer-fallback indexes cannot "
                "serve users the model has never embedded")
        return grown

    def _grow_users(self, num_users: int) -> int:
        """Append fallback rows so ids up to ``num_users`` become servable."""
        grown = self._check_growth(num_users)
        if grown <= 0:
            return 0
        fallback = self._fallback_row()
        matrix = np.concatenate([
            self.index.user_embeddings,
            np.broadcast_to(fallback, (grown, fallback.size)),
        ])
        self.index.rebind_users(matrix)
        if self._sharded is not None:
            self._sharded.rebind_users(self.index.user_embeddings)
        self._overlay.grow_users(num_users)
        for overlay in self._shard_overlays:
            overlay.grow_users(num_users)
        self._extra_users += grown
        return grown

    # ------------------------------------------------------------------ #
    def ingest(self, users, items) -> dict:
        """Fold new (user, item) interaction events into the serving state.

        Returns a stats dict: ``events`` seen, ``ingested`` novel pairs,
        ``duplicates`` dropped (already consumed or repeated in the batch),
        ``new_users`` created, ``touched_users`` whose cache entries were
        invalidated, and whether the call triggered a ``compacted`` merge.
        """
        registry = metrics()
        with span("online.ingest"), registry.timer("online.ingest_s"), \
                self._ingest_lock:
            stats = self._ingest_locked(users, items)
        registry.inc("online.ingest_calls")
        registry.inc("online.ingest_events", stats["events"])
        registry.inc("online.ingested_pairs", stats["ingested"])
        return stats

    def _ingest_locked(self, users, items, *, log: bool = True) -> dict:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be aligned 1-d arrays")
        stats = {"events": int(users.size), "ingested": 0, "duplicates": 0,
                 "new_users": 0, "touched_users": 0, "invalidated": 0,
                 "compacted": False}
        if users.size == 0:
            return stats
        if users.min() < 0:
            raise IndexError("user id out of range for this index")
        if items.min() < 0 or items.max() >= self.num_items:
            raise IndexError("item id out of range for this index")
        self._check_growth(int(users.max()) + 1)
        if log and self._wal is not None:
            # True write-ahead ordering: the raw batch hits the log before
            # any in-memory state changes, so a failed append (disk full,
            # torn write) leaves serving exactly on the durable prefix —
            # the live service never serves an event recovery would lose.
            # Replay dedups, so logging raw events (duplicates included)
            # keeps "acked == logged" with no derived state on disk.
            self._wal.append(users, items)
        stats["new_users"] = self._grow_users(int(users.max()) + 1)
        fresh_users, fresh_items = self._overlay.ingest(users, items)
        if self._sharded is not None:
            for shard, overlay in zip(self._sharded.shards,
                                      self._shard_overlays):
                owned, local = shard.locate(fresh_items)
                if owned.any():
                    overlay.delta.add_keys(np.unique(
                        fresh_users[owned] * np.int64(overlay.num_items)
                        + local[owned]))
        touched = np.unique(fresh_users)
        stats["ingested"] = int(fresh_users.size)
        stats["duplicates"] = int(users.size) - int(fresh_users.size)
        stats["touched_users"] = int(touched.size)
        stats["invalidated"] = self.invalidate_users(touched)
        self.ingested_pairs += int(fresh_users.size)
        self.new_users += stats["new_users"]
        if self.delta_size >= self.compact_threshold:
            self.compact()
            stats["compacted"] = True
        return stats

    def compact(self, *,
                publish: Optional[bool] = None) -> "OnlineRecommendationService":
        """Fold every overlay's delta into a fresh frozen base CSR.

        Serving results are unchanged by construction (the invariant the
        property sweep pins), so no cache invalidation is needed; the
        candidate backend is rebuilt like a fresh service's would be (the
        heavyweight rebuild work belongs to compaction, never to ingest).

        ``publish`` controls whether the compacted state is republished as an
        on-disk snapshot in a background thread; the default republishes
        exactly when the service was constructed with ``snapshot_path=…``.
        """
        registry = metrics()
        with span("online.compact"), registry.timer("online.compact_s"), \
                self._ingest_lock:
            self._overlay.compact()
            for overlay in self._shard_overlays:
                overlay.compact()
            if self._candidates is not None:
                previous = self._candidates
                self._candidates = self._build_candidates()
                # Compaction is invisible to serving; the aggregate
                # certificate and escalation counters must not reset
                # mid-stream (unlike refresh, where new embeddings genuinely
                # start a new story).
                for counter in ("total_batches", "certified_batches",
                                "total_users", "certified_users",
                                "escalation_rounds", "escalated_users",
                                "exact_fallback_users", "last_certificate"):
                    setattr(self._candidates, counter,
                            getattr(previous, counter))
            self.compactions += 1
        registry.inc("online.compactions")
        if publish is None:
            # Replay must not republish: recovery reconstructs serving state,
            # it does not advance the published artifact.
            publish = self.snapshot_path is not None and not self._replaying
        if publish:
            self.publish_snapshot(background=True)
        return self

    # ------------------------------------------------------------------ #
    def _publish_target(self, path) -> Path:
        if path is not None:
            return Path(path)
        if self.snapshot_path is not None:
            return self.snapshot_path
        if self._snapshot is not None:
            return self._snapshot.path
        raise ValueError("no snapshot path to publish to: pass path=… or "
                         "construct the service with snapshot_path=…")

    def publish_snapshot(self, path=None, *, candidate_modes=None,
                         metadata=None, background: bool = False) -> Path:
        """Write the compacted frozen serving state as a snapshot artifact.

        Pending delta pairs are folded first (one frozen CSR per snapshot),
        then the embeddings/norms/exclusion — and a quantised block per entry
        of ``candidate_modes`` (default: the serving ``candidate_mode``, else
        int8) — land in ``path`` via the atomic tmp-file + ``os.replace``
        publish of :func:`repro.engine.snapshot.save_snapshot`: a worker
        mapping the old file keeps its (unlinked) pages, a worker opening the
        path sees the new complete snapshot, never a partial write.

        With ``background=True`` the quantise-and-write work runs on a
        daemon thread (at most one in flight; a new publish joins the
        previous one).  The captured state is immune to later ingests —
        embedding matrices are replaced, never mutated, and the compacted
        base CSR is frozen — so the published file reflects this compaction
        even if serving moves on meanwhile.  :meth:`wait_published` (also
        called by :meth:`close`) joins the thread and re-raises its error.
        """
        target = self._publish_target(path)
        if candidate_modes is None:
            candidate_modes = ((self.candidate_mode,)
                               if self.candidate_mode is not None else ("int8",))
        with self._ingest_lock:
            # Compact, capture, and mark the WAL under one lock hold: every
            # event at or below the mark is provably inside the captured
            # frozen state, so rotating to the mark after the write can
            # never drop an event the published file does not carry.
            if self.delta_size \
                    or self._overlay.num_users != self._overlay.base.num_users:
                self.compact(publish=False)
            # Capture the frozen state *now*: later ingests swap in new
            # matrices and new base CSRs but never mutate these objects in
            # place.
            frozen = InferenceIndex(
                self.index.num_users, self.index.num_items,
                user_embeddings=self.index.user_embeddings,
                item_embeddings=self.index.item_embeddings,
                exclusion=self._overlay.base, dtype=self.index.dtype,
                copy=False)
            frozen._item_norms = self.index.item_norms  # reuse cached norms
            # Rotate only when the publish target is the file a recovered
            # service would be constructed from; publishing a side copy must
            # leave the log covering the original base.  (Rotation is a
            # space bound, not a correctness requirement — replay dedups.)
            # The mark is a record sequence number, so it stays valid even
            # when a still-in-flight earlier publish rotates the log between
            # this capture and our own worker's rotate call.
            wal_mark = None
            if self._wal is not None and (
                    Path(target) == self.snapshot_path
                    or (self._snapshot is not None
                        and Path(target) == Path(self._snapshot.path))):
                wal_mark = self._wal.mark()
        stamp = {"compactions": self.compactions,
                 "ingested_pairs": self.ingested_pairs,
                 "new_users": self.new_users}
        stamp.update(metadata or {})

        def write() -> None:
            registry = metrics()
            with registry.timer("online.publish_s"):
                save_snapshot(target, frozen, candidate_modes=candidate_modes,
                              metadata=stamp)
                if wal_mark is not None:
                    self._wal.rotate(wal_mark)
            registry.inc("online.publishes")

        if not background:
            self.wait_published()
            write()
            self.publishes += 1
            return target

        self.wait_published()

        def worker() -> None:
            try:
                write()
                self.publishes += 1
            except BaseException as error:  # surfaced by wait_published()
                self._publish_error = error

        self._publisher = threading.Thread(
            target=worker, name="repro-snapshot-publisher", daemon=True)
        self._publisher.start()
        return target

    def wait_published(self, timeout: Optional[float] = None) -> None:
        """Join the in-flight background publish; re-raise its failure."""
        publisher = self._publisher
        if publisher is not None:
            publisher.join(timeout)
            if not publisher.is_alive():
                self._publisher = None
        error, self._publish_error = self._publish_error, None
        if error is not None:
            raise error

    def close(self) -> None:
        """Drain the background publisher, then release fan-out resources.

        A background publish failure is re-raised, but only after the
        executor's worker pool is released — close() must never leak
        processes or threads on the error path.
        """
        try:
            self.wait_published()
        finally:
            try:
                super().close()
            finally:
                if self._wal is not None:
                    self._wal.close()

    # ------------------------------------------------------------------ #
    def refresh(self, model=None) -> "OnlineRecommendationService":
        """Re-freeze from the model, preserving accumulated interactions.

        Pending deltas are compacted first so the refreshed snapshot (and its
        re-sliced shard exclusions) build from one frozen CSR; users created
        by ingest keep existing — their fallback rows are re-appended from
        the refreshed embeddings (the fallback is recomputed, matching what a
        fresh service built from the new model plus the same ingest history
        would serve).

        A refresh with nothing ingested since the last compaction is a true
        no-op when the embeddings are unchanged: caches stay warm, the
        overlays and any adopted snapshot survive, nothing is recompacted.
        """
        if self.delta_size == 0 and self._extra_users == 0:
            # Nothing ingested since the last compaction: defer entirely to
            # the base refresh, which keeps the whole warm stack (LRU cache,
            # sharded slices, quantised blocks, an adopted snapshot) when the
            # re-frozen embeddings are unchanged.  The overlay is unwrapped
            # only for the comparison and restored on the no-op path, so a
            # spurious refresh is observably free.
            previous = self.index
            self.index.exclusion = self._overlay.base
            try:
                super().refresh(model)
            except BaseException:
                self.index.exclusion = self._overlay
                raise
            if self.index is previous:
                self.index.exclusion = self._overlay
                return self
            self._base_users = self.index.num_users
            self._fallback_row_cache = None
            self._wrap_overlays()
            return self
        self._overlay.compact()
        for overlay in self._shard_overlays:
            overlay.compact()
        # Hand the frozen merged CSR to the snapshot rebuild; overlays are
        # re-wrapped (and growth re-applied) on top of the fresh state.
        self.index.exclusion = self._overlay.base
        extra = self._extra_users
        self._extra_users = 0
        self._fallback_row_cache = None
        try:
            super().refresh(model)
        except BaseException:
            # E.g. a process executor rejecting re-frozen embeddings: restore
            # the overlay wiring (compaction above is serving-invariant) so
            # the service keeps serving its pre-refresh state.
            self.index.exclusion = self._overlay
            self._extra_users = extra
            raise
        self._base_users = self.index.num_users
        self._wrap_overlays()
        if extra:
            self._grow_users(self._base_users + extra)
        return self

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The attached write-ahead log, or ``None`` (in-memory ingest)."""
        return self._wal

    @property
    def wal_stats(self) -> Optional[dict]:
        """Durability counters of the attached WAL, or ``None`` without one."""
        if self._wal is None:
            return None
        stats = self._wal.stats()
        stats["replayed_records"] = self.wal_replayed
        return stats

    @property
    def online_stats(self) -> dict:
        """Aggregate ingest/compaction counters of this service."""
        return {
            "ingested_pairs": self.ingested_pairs,
            "new_users": self.new_users,
            "delta_size": self.delta_size,
            "compactions": self.compactions,
            "compact_threshold": self.compact_threshold,
            "new_user_policy": self.new_user_policy,
            "snapshot_path": (str(self.snapshot_path)
                              if self.snapshot_path else None),
            "publishes": self.publishes,
            "wal": self.wal_stats,
        }

    def __repr__(self) -> str:
        return (f"Online{super().__repr__()[:-1]}, "
                f"delta={self.delta_size}/{self.compact_threshold}, "
                f"compactions={self.compactions})")
