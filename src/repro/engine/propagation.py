"""The sparse propagation operator behind every GCN model.

All graph models in this library repeat the product
:math:`X^{(l+1)} = \\hat{A} X^{(l)}` with a *fixed* sparse operator
:math:`\\hat{A}`.  :class:`PropagationEngine` owns that operator for the
lifetime of a model:

* the matrix is stored once in CSR form (fast row-major products),
* its transpose is computed lazily and cached (the backward pass only ever
  needs :math:`\\hat{A}^\\top G`),
* the floating dtype is configurable (``float64`` for training parity,
  ``float32`` for memory-bound serving),
* dense output buffers are reusable: callers on a hot non-autograd path can
  pass ``out=`` (or ask for the engine's scratch buffer) so repeated
  propagation does not re-allocate ``(N, d)`` arrays every step.

The differentiable entry point :meth:`PropagationEngine.apply` replaces the
old ``repro.autograd.sparse_ops.sparse_matmul`` free function; that module
now delegates here.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..autograd.tensor import Tensor

try:  # pragma: no cover - exercised indirectly; absence is environment-specific
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover
    _csr_tools = None

__all__ = ["PropagationEngine"]


class PropagationEngine:
    """Owns a fixed sparse propagation matrix and its serving machinery.

    Parameters
    ----------
    matrix:
        The (non-learnable) propagation operator — any scipy sparse matrix or
        a dense array, converted to CSR.
    dtype:
        Floating dtype of the operator and of every product it computes.
        ``float64`` (default) matches the autograd substrate bit-for-bit;
        ``float32`` halves memory traffic for inference-only engines.
    """

    def __init__(self, matrix: Union[sp.spmatrix, np.ndarray],
                 dtype: Union[np.dtype, type] = np.float64) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix, dtype=dtype))
        self._matrix: sp.csr_matrix = matrix.tocsr().astype(dtype, copy=False)
        self._dtype = dtype
        self._transpose: Optional[sp.csr_matrix] = None
        # Scratch buffers for the explicit ``out="scratch"`` fast path; keyed
        # by direction because forward/backward outputs differ in row count.
        self._forward_scratch: Optional[np.ndarray] = None
        self._backward_scratch: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        return self._matrix.shape

    @property
    def nnz(self) -> int:
        return self._matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def matrix(self) -> sp.csr_matrix:
        return self._matrix

    def transpose_matrix(self) -> sp.csr_matrix:
        """Cached CSR transpose, built on first use."""
        if self._transpose is None:
            self._transpose = self._matrix.transpose().tocsr()
        return self._transpose

    def to_dense(self) -> np.ndarray:
        return self._matrix.toarray()

    def astype(self, dtype) -> "PropagationEngine":
        """Engine over the same operator in another dtype (shares nothing)."""
        if np.dtype(dtype) == self._dtype:
            return self
        return PropagationEngine(self._matrix, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Products
    # ------------------------------------------------------------------ #
    def _product(self, operator: sp.csr_matrix, dense: np.ndarray,
                 out: Optional[np.ndarray]) -> np.ndarray:
        dense = np.ascontiguousarray(dense, dtype=self._dtype)
        if dense.ndim == 1:
            dense = dense[:, None]
        rows = operator.shape[0]
        if out is None:
            return operator @ dense
        if out.shape != (rows, dense.shape[1]) or out.dtype != self._dtype:
            raise ValueError(
                f"out buffer must have shape {(rows, dense.shape[1])} and dtype "
                f"{self._dtype}; got shape {out.shape}, dtype {out.dtype}"
            )
        if _csr_tools is not None and out.flags.c_contiguous:
            out.fill(0.0)
            try:
                _csr_tools.csr_matvecs(
                    operator.shape[0], operator.shape[1], dense.shape[1],
                    operator.indptr, operator.indices, operator.data,
                    dense.ravel(), out.ravel(),
                )
                return out
            except Exception:  # pragma: no cover - private-API drift
                pass
        out[:] = operator @ dense
        return out

    def _scratch(self, direction: str, shape) -> np.ndarray:
        buffer = self._forward_scratch if direction == "forward" else self._backward_scratch
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=self._dtype)
            if direction == "forward":
                self._forward_scratch = buffer
            else:
                self._backward_scratch = buffer
        return buffer

    def forward(self, dense: np.ndarray,
                out: Optional[Union[np.ndarray, str]] = None) -> np.ndarray:
        """Plain-array product ``A @ dense`` (no autograd graph).

        ``out`` may be a preallocated array, or the string ``"scratch"`` to
        reuse the engine-owned buffer.  The scratch buffer is overwritten by
        the next ``forward(..., out="scratch")`` call — callers must consume
        or copy it before then; it must never back a live autograd tensor.
        """
        dense = np.asarray(dense)
        if isinstance(out, str):
            if out != "scratch":
                raise ValueError("out must be an ndarray, None, or 'scratch'")
            columns = dense.shape[1] if dense.ndim > 1 else 1
            out = self._scratch("forward", (self._matrix.shape[0], columns))
        return self._product(self._matrix, dense, out)

    def backward(self, grad: np.ndarray,
                 out: Optional[Union[np.ndarray, str]] = None) -> np.ndarray:
        """Plain-array product ``A.T @ grad`` using the cached transpose."""
        grad = np.asarray(grad)
        if isinstance(out, str):
            if out != "scratch":
                raise ValueError("out must be an ndarray, None, or 'scratch'")
            columns = grad.shape[1] if grad.ndim > 1 else 1
            out = self._scratch("backward", (self._matrix.shape[1], columns))
        return self._product(self.transpose_matrix(), grad, out)

    # ------------------------------------------------------------------ #
    # Autograd entry point
    # ------------------------------------------------------------------ #
    def apply(self, dense: Tensor) -> Tensor:
        """Differentiable product ``A @ dense`` with a fixed sparse operand.

        The backward pass pushes ``A.T @ grad`` to ``dense``.  Output arrays
        are freshly allocated here (never the scratch buffer): the returned
        tensor owns its data for the lifetime of the autograd graph.
        """
        data = self.forward(dense.data)

        def backward(grad: np.ndarray) -> None:
            if dense.requires_grad:
                dense._accumulate(self.backward(grad))

        return Tensor._make(data, (dense,), backward)

    def __call__(self, dense: Tensor) -> Tensor:
        return self.apply(dense)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
                f"dtype={self._dtype.name})")
