"""Async micro-batching front-end: coalesce concurrent requests into batches.

Production traffic is not pre-formed batches — it is thousands of concurrent
single-user ``recommend`` calls plus a live event stream.  Served naively,
each call degenerates into a batch-size-1 matmul plus one executor round
trip, so throughput is bounded by per-request overhead instead of by the
hardware.  :class:`AsyncRecommendationFrontend` restores the batch shape the
engine is built for, without the callers ever cooperating:

* **Coalescing.**  Concurrent ``await frontend.recommend(user, k)`` calls
  are grouped per ``(k, exclude_train)`` signature.  A group is flushed into
  ONE :meth:`RecommendationService.top_k` batch when either it reaches
  ``max_batch_size`` waiters or the ``batch_window_ms`` deadline — started
  by the group's *first* waiter — expires.  A lone request therefore waits
  at most ~``batch_window_ms``; a full burst is served immediately.  Results
  fan back out per-future, one row per waiter.
* **Ingest coalescing.**  ``await frontend.ingest(users, items)`` calls pool
  their events the same way, so one overlay merge and one targeted LRU
  invalidation pass amortise across many concurrent event producers.  Every
  waiter receives the coalesced batch's stats dict.
* **Backpressure.**  At most ``max_pending`` requests may be queued or in
  flight.  Above that the frontend sheds load: ``shed="reject"`` raises
  :class:`OverloadedError` immediately (the caller can retry with jitter),
  ``shed="block"`` awaits capacity.  Shed requests never enter a batch, so
  the queue stays consistent.
* **Never block the event loop.**  Batched scoring and ingestion run on ONE
  worker thread (shard matmuls release the GIL; a single worker also
  serialises ingest mutations against scoring reads, so the frontend needs
  no locks around the service's index structures).

Exactness contract ("coalescing never changes results"): a coalesced batch
is served by the *same* :meth:`RecommendationService.top_k` the caller
would have used directly, and each user's row of a batched top-K is computed
independently of its neighbours — so every awaited result is **bit-identical**
to calling ``service.top_k([user], k)`` serially.  The closed-loop benchmark
(``benchmarks/bench_async_frontend.py``) gates this parity in CI along with
the throughput and p99-latency floors.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextvars
from typing import Dict, List, Optional, Tuple

import numpy as np

from .observability import COUNT_BUCKETS, metrics, span, traced

__all__ = ["SHED_POLICIES", "AsyncRecommendationFrontend", "OverloadedError"]

#: Load-shedding policies for a full pending queue: ``"reject"`` raises
#: :class:`OverloadedError` immediately, ``"block"`` awaits capacity.
SHED_POLICIES = ("reject", "block")


class OverloadedError(RuntimeError):
    """Raised (``shed="reject"``) when the pending queue is at capacity."""


class _RecommendBatch:
    """Waiters of one ``(k, exclude_train)`` group, pending flush."""

    __slots__ = ("users", "futures", "timer")

    def __init__(self) -> None:
        self.users: List[int] = []
        self.futures: List[asyncio.Future] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class _IngestBatch:
    """Pending ingest events pooled across concurrent producers."""

    __slots__ = ("users", "items", "futures", "events", "timer")

    def __init__(self) -> None:
        self.users: List[np.ndarray] = []
        self.items: List[np.ndarray] = []
        self.futures: List[asyncio.Future] = []
        self.events = 0
        self.timer: Optional[asyncio.TimerHandle] = None


class AsyncRecommendationFrontend:
    """Coalesce concurrent async requests into shared scoring batches.

    Parameters
    ----------
    service:
        The :class:`RecommendationService` (or
        :class:`OnlineRecommendationService`, required for :meth:`ingest`)
        that actually serves the batches.  The frontend never bypasses it,
        so results are bit-identical to direct ``service.top_k`` calls.
    max_batch_size:
        Flush a group as soon as this many waiters have coalesced.
    batch_window_ms:
        Deadline budget: the longest a request waits for co-batched company,
        measured from the group's first waiter.
    max_pending:
        Bound on requests queued or in flight (recommend calls + ingest
        calls); the backpressure limit.
    shed:
        What to do at capacity — one of :data:`SHED_POLICIES`.

    Must be used from a running event loop; all methods are coroutine-safe
    but the frontend itself is bound to the first loop that touches it.
    """

    def __init__(self, service, *, max_batch_size: int = 64,
                 batch_window_ms: float = 2.0, max_pending: int = 1024,
                 shed: str = "reject") -> None:
        self.service = service
        self.max_batch_size = int(max_batch_size)
        self.batch_window_ms = float(batch_window_ms)
        self.max_pending = int(max_pending)
        self.shed = shed
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be a positive integer")
        if not self.batch_window_ms > 0:
            raise ValueError("batch_window_ms must be positive")
        if self.max_pending < 1:
            raise ValueError("max_pending must be a positive integer")
        if shed not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {shed!r}; "
                             f"options: {SHED_POLICIES}")
        # One worker thread: batches never block the event loop, and running
        # them serially means ingest mutations and scoring reads of the
        # shared service state can never race each other.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-frontend")
        # Back-reference for the unified surface: service.stats()["frontend"]
        # reports this frontend's counters (last frontend attached wins).
        try:
            service._attached_frontend = self
        except AttributeError:
            pass
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False
        self._recommend_pending: Dict[Tuple[int, bool], _RecommendBatch] = {}
        self._ingest_pending: Optional[_IngestBatch] = None
        self._flushes: set = set()
        self._capacity = asyncio.Condition()
        self._pending = 0
        # Stats.
        self.requests = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_occupancy = 0
        self.ingest_calls = 0
        self.ingest_batches = 0
        self.ingest_events = 0
        self.shed_count = 0
        self.queue_high_water = 0

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _get_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError("frontend is bound to another event loop")
        return loop

    async def _admit(self) -> None:
        """Take one pending-queue slot, shedding load at capacity."""
        if self._closed:
            raise RuntimeError("frontend is closed")
        if self._pending >= self.max_pending:
            if self.shed == "reject":
                self.shed_count += 1
                metrics().inc("frontend.shed")
                raise OverloadedError(
                    f"pending queue at capacity ({self.max_pending}); "
                    f"retry later")
            async with self._capacity:
                await self._capacity.wait_for(
                    lambda: self._pending < self.max_pending)
        self._pending += 1
        self.queue_high_water = max(self.queue_high_water, self._pending)

    async def _release(self, count: int) -> None:
        async with self._capacity:
            self._pending -= count
            self._capacity.notify_all()

    def _spawn(self, coroutine) -> None:
        """Run a flush coroutine as a tracked task (kept alive until done)."""
        task = self._get_loop().create_task(coroutine)
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    @property
    def pending(self) -> int:
        """Requests currently queued or in flight."""
        return self._pending

    # ------------------------------------------------------------------ #
    # Recommend path
    # ------------------------------------------------------------------ #
    async def recommend(self, user: int, k: int = 10,
                        exclude_train: bool = True) -> List[int]:
        """One user's top-``k``, served through a coalesced scoring batch.

        Bit-identical to ``service.top_k([user], k, exclude_train)[0]``.
        LRU-cached results resolve immediately without taking a queue slot;
        misses wait at most ~``batch_window_ms`` for co-batched company.
        """
        loop = self._get_loop()
        user, k = int(user), int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        registry = metrics()
        with traced("frontend.recommend"):
            self.requests += 1
            registry.inc("frontend.requests")
            cached = self.service.cache_lookup(user, k, exclude_train)
            if cached is not None:
                self.cache_hits += 1
                registry.inc("frontend.cache_hits")
                return cached
            await self._admit()
            key = (k, bool(exclude_train))
            with span("frontend.assemble"):
                batch = self._recommend_pending.get(key)
                if batch is None:
                    batch = self._recommend_pending[key] = _RecommendBatch()
                    # The first waiter starts the deadline clock for the
                    # group (and, via call_later's context copy, owns the
                    # deadline flush's spans in its trace).
                    batch.timer = loop.call_later(
                        self.batch_window_ms / 1000.0,
                        lambda: self._spawn(self._flush_recommend(key)))
                future: asyncio.Future = loop.create_future()
                batch.users.append(user)
                batch.futures.append(future)
                if len(batch.futures) >= self.max_batch_size:
                    # Detach the full group synchronously so later arrivals
                    # start a fresh batch (and a fresh window) — no batch ever
                    # exceeds max_batch_size even when many submissions
                    # precede the flush.
                    del self._recommend_pending[key]
                    self._spawn(self._run_recommend(batch, key))
            with span("frontend.await_batch"):
                return await future

    def _score_batch(self, users: np.ndarray, k: int,
                     exclude_train: bool) -> List[List[int]]:
        """Worker-thread body: one shared top-K batch + LRU population."""
        table = self.service.top_k(users, k, exclude_train=exclude_train)
        rows = [[int(item) for item in row] for row in table]
        for user, row in zip(users, rows):
            self.service.cache_store(int(user), k, exclude_train, row)
        return rows

    async def _flush_recommend(self, key: Tuple[int, bool]) -> None:
        """Deadline-triggered flush: detach the group (if still pending)."""
        batch = self._recommend_pending.pop(key, None)
        if batch is None:  # size- and deadline-triggered flushes raced
            return
        await self._run_recommend(batch, key)

    async def _run_recommend(self, batch: _RecommendBatch,
                             key: Tuple[int, bool]) -> None:
        if batch.timer is not None:
            batch.timer.cancel()
        k, exclude_train = key
        users = np.asarray(batch.users, dtype=np.int64)
        registry = metrics()
        registry.observe("frontend.batch_occupancy", len(batch.futures),
                         buckets=COUNT_BUCKETS)
        try:
            # copy_context(): run_in_executor does not propagate contextvars,
            # so hand the worker thread an explicit copy — the scoring body
            # lands inside this flush's TraceContext.
            context = contextvars.copy_context()
            with span("frontend.flush"), registry.timer("frontend.flush_s"):
                rows = await self._get_loop().run_in_executor(
                    self._executor, context.run, self._score_batch, users, k,
                    exclude_train)
        except Exception as error:
            for future in batch.futures:
                if not future.done():
                    future.set_exception(error)
        else:
            for future, row in zip(batch.futures, rows):
                if not future.done():
                    future.set_result(row)
        finally:
            self.batches += 1
            self.batched_requests += len(batch.futures)
            registry.inc("frontend.batches")
            registry.inc("frontend.batched_requests", len(batch.futures))
            self.max_occupancy = max(self.max_occupancy, len(batch.futures))
            await self._release(len(batch.futures))

    # ------------------------------------------------------------------ #
    # Ingest path
    # ------------------------------------------------------------------ #
    async def ingest(self, users, items) -> dict:
        """Fold new interaction events in, through a coalesced ingest batch.

        Events from concurrent producers pool into ONE
        ``service.ingest(users, items)`` call per flush, so the overlay merge
        and the targeted LRU invalidation amortise across producers.  Every
        waiter receives the coalesced batch's stats dict (plus
        ``coalesced_calls``, the number of producers pooled into it).
        """
        self._get_loop()
        if not hasattr(self.service, "ingest"):
            raise TypeError("service does not support ingest; wrap an "
                            "OnlineRecommendationService for online traffic")
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be aligned 1-d arrays")
        self.ingest_calls += 1
        metrics().inc("frontend.ingest_calls")
        await self._admit()
        batch = self._ingest_pending
        if batch is None:
            batch = self._ingest_pending = _IngestBatch()
            batch.timer = self._get_loop().call_later(
                self.batch_window_ms / 1000.0,
                lambda: self._spawn(self._flush_ingest()))
        future: asyncio.Future = self._get_loop().create_future()
        batch.users.append(users)
        batch.items.append(items)
        batch.events += int(users.size)
        batch.futures.append(future)
        if batch.events >= self.max_batch_size:
            # Detach synchronously — later producers start a fresh batch.
            self._ingest_pending = None
            self._spawn(self._run_ingest(batch))
        return await future

    async def _flush_ingest(self) -> None:
        """Deadline-triggered flush: detach the batch (if still pending)."""
        batch, self._ingest_pending = self._ingest_pending, None
        if batch is None:
            return
        await self._run_ingest(batch)

    async def _run_ingest(self, batch: _IngestBatch) -> None:
        if batch.timer is not None:
            batch.timer.cancel()
        users = np.concatenate(batch.users)
        items = np.concatenate(batch.items)
        registry = metrics()
        try:
            context = contextvars.copy_context()
            with span("frontend.ingest_flush"), \
                    registry.timer("frontend.ingest_flush_s"):
                stats = await self._get_loop().run_in_executor(
                    self._executor, context.run, self.service.ingest, users,
                    items)
        except Exception as error:
            for future in batch.futures:
                if not future.done():
                    future.set_exception(error)
        else:
            for future in batch.futures:
                if not future.done():
                    future.set_result(
                        dict(stats, coalesced_calls=len(batch.futures)))
        finally:
            self.ingest_batches += 1
            self.ingest_events += batch.events
            registry.inc("frontend.ingest_batches")
            registry.inc("frontend.ingest_events", batch.events)
            await self._release(len(batch.futures))

    # ------------------------------------------------------------------ #
    # Lifecycle / stats
    # ------------------------------------------------------------------ #
    async def flush(self) -> None:
        """Flush every pending group now and wait for the results to land."""
        for key in list(self._recommend_pending):
            self._spawn(self._flush_recommend(key))
        if self._ingest_pending is not None:
            self._spawn(self._flush_ingest())
        while self._flushes:
            await asyncio.gather(*list(self._flushes), return_exceptions=True)

    async def close(self) -> None:
        """Drain pending batches, then release the worker thread.

        Idempotent.  Requests submitted after ``close()`` raise; requests
        already pending are served.
        """
        self._closed = True
        await self.flush()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncRecommendationFrontend":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def stats(self) -> dict:
        """Point-in-time coalescing / backpressure counters."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_occupancy": (self.batched_requests / self.batches
                               if self.batches else 0.0),
            "max_occupancy": self.max_occupancy,
            "ingest_calls": self.ingest_calls,
            "ingest_batches": self.ingest_batches,
            "ingest_events": self.ingest_events,
            "shed": self.shed_count,
            "pending": self._pending,
            "queue_high_water": self.queue_high_water,
            "max_batch_size": self.max_batch_size,
            "batch_window_ms": self.batch_window_ms,
            "max_pending": self.max_pending,
            "shed_policy": self.shed,
        }

    def __repr__(self) -> str:
        return (f"AsyncRecommendationFrontend(service={self.service!r}, "
                f"max_batch_size={self.max_batch_size}, "
                f"batch_window_ms={self.batch_window_ms}, "
                f"max_pending={self.max_pending}, shed={self.shed!r}, "
                f"batches={self.batches}, shed_count={self.shed_count})")
