"""Zero-copy memory-mapped serving snapshots.

Every serving worker used to rebuild its frozen state from the model
in-process: copy the embedding matrices, derive the item norms, quantise the
candidate blocks, build the CSR exclusion — O(freeze) work per worker, and
none of it shareable across a process boundary without pickling whole
matrices.  This module persists that frozen state once, as a versioned
on-disk artifact, and reconstructs it in O(open):

* :func:`save_snapshot` — write an :class:`InferenceIndex` (embeddings,
  per-item norms, optional quantised candidate blocks, the CSR exclusion
  arrays) as one file with a checksummed JSON header and 64-byte-aligned raw
  sections.  The write lands in a temp file and is published with one atomic
  ``os.replace``, so readers only ever see complete snapshots — the swap
  primitive behind :meth:`OnlineRecommendationService.compact`'s background
  republish.
* :func:`load_snapshot` — open a snapshot.  With ``mmap=True`` (the default)
  every section is a read-only ``np.memmap`` view: nothing is copied, cold
  catalogues page in lazily on first touch, and N workers mapping the same
  file share one page cache — the zero-copy substrate for
  :class:`repro.engine.sharding.ProcessExecutor`.  ``mmap=False`` reads
  owning (writable) arrays for writers and tooling.
* :class:`ServingSnapshot` — the loaded artifact.  Its builders reconstruct
  the full serving stack without per-element copies: ``inference_index()``
  adopts the mapped matrices (``InferenceIndex(copy=False)``),
  ``exclusion()`` adopts the CSR arrays
  (:meth:`UserItemIndex.from_csr_arrays`), ``quantized_block(mode)`` adopts
  stored codes/scales/bound norms, and ``sharded_index()`` /
  ``candidate_index()`` compose them behind the existing facades.

Exactness contract: a snapshot stores the frozen arrays bit-for-bit, so
serving from ``load_snapshot(path)`` — single-matrix, sharded, or two-stage
quantised, memory-mapped or owning — is **bit-identical** to serving from
the in-memory index it was saved from (pinned by
``benchmarks/bench_snapshot_serving.py`` and the snapshot property sweep).

File layout (all little-endian)::

    [magic 8s][version u4][header_len u8][header_crc32 u4]   fixed preamble
    [header JSON, header_len bytes]                           crc-protected
    [padding to 64]                                           data_start
    [section 0][padding][section 1][padding] ...              64-aligned raw

Section offsets in the header are relative to ``data_start`` so the header
can be serialised before knowing its own length.  The header carries the id
space, dtype, section table (name/dtype/shape/offset/nbytes) and free-form
metadata; a magic/version/checksum/size mismatch raises
:class:`SnapshotFormatError` instead of serving garbage.

Worker-side helpers for multi-process fan-out live at the bottom:
:func:`_execute_shard_payload` opens (and caches) exactly one shard's
sections per worker process, so a :class:`ProcessExecutor` task ships only
``(snapshot_path, shard_id, user_batch)`` plus any router-side divergence
from the frozen file (grown user rows, ingested exclusion pairs) — never a
catalogue matrix.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .candidates import CANDIDATE_MODES, QuantizedItemBlock, quantize_item_matrix
from .index import InferenceIndex, UserItemIndex
from .sharding import ShardedInferenceIndex, partition_items

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotFormatError",
    "ServingSnapshot",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
]

SNAPSHOT_MAGIC = b"REPROSNP"
SNAPSHOT_VERSION = 1

#: Raw sections (and the data region itself) start on this byte boundary, so
#: memory-mapped views stay aligned for vectorised loads regardless of the
#: header's length.
_SECTION_ALIGN = 64

_PREAMBLE = struct.Struct("<8sIQI")  # magic, version, header_len, header_crc


class SnapshotFormatError(ValueError):
    """The file is not a readable serving snapshot (bad magic, unsupported
    version, corrupted header, or truncated sections)."""


def _align(offset: int) -> int:
    return (offset + _SECTION_ALIGN - 1) // _SECTION_ALIGN * _SECTION_ALIGN


def _frozen_exclusion(exclusion) -> Optional[UserItemIndex]:
    """The plain CSR index behind ``exclusion`` (unwrapping an online overlay).

    A compacted overlay is exactly its base; an overlay with pending delta
    pairs has no single CSR to persist — the caller must ``compact()`` first
    (which :meth:`OnlineRecommendationService.publish_snapshot` does).
    """
    if exclusion is None or isinstance(exclusion, UserItemIndex):
        return exclusion
    base = getattr(exclusion, "base", None)
    delta = getattr(exclusion, "delta", None)
    if isinstance(base, UserItemIndex) and delta is not None:
        if delta.nnz or exclusion.num_users != base.num_users:
            raise ValueError(
                "exclusion overlay has pending delta pairs or grown users; "
                "compact() it before saving a snapshot")
        return base
    raise TypeError(f"cannot persist exclusion of type {type(exclusion).__name__}")


def save_snapshot(path, index: InferenceIndex, *,
                  candidate_modes: Sequence[str] = ("int8",),
                  metadata: Optional[dict] = None) -> Path:
    """Persist a frozen factorised :class:`InferenceIndex` atomically.

    Writes the user/item matrices (in the index dtype), the float64 item
    norms, one quantised block (codes + scales + bound norms) per entry of
    ``candidate_modes``, and the exclusion CSR arrays when the index has an
    exclusion attached.  The file is assembled in ``<path>.tmp.<pid>`` and
    published with ``os.replace``, so a concurrently reading worker either
    sees the old complete snapshot or the new one — never a partial write.
    Returns the final path.
    """
    if not index.is_factorized:
        raise ValueError("only factorised indexes can be snapshotted "
                         "(scorer fallbacks have no matrices to persist)")
    for mode in candidate_modes:
        if mode not in CANDIDATE_MODES:
            raise ValueError(f"unknown candidate mode {mode!r}; "
                             f"options: {CANDIDATE_MODES}")
    path = Path(path)
    exclusion = _frozen_exclusion(index.exclusion)

    sections: "Dict[str, np.ndarray]" = {
        "user_embeddings": np.ascontiguousarray(index.user_embeddings),
        "item_embeddings": np.ascontiguousarray(index.item_embeddings),
        "item_norms": np.ascontiguousarray(index.item_norms),
    }
    if exclusion is not None:
        sections["exclusion_indptr"] = np.ascontiguousarray(exclusion.indptr)
        sections["exclusion_indices"] = np.ascontiguousarray(exclusion.indices)
    for mode in dict.fromkeys(candidate_modes):  # dedupe, keep order
        block = quantize_item_matrix(index.item_embeddings, mode,
                                     item_norms=index.item_norms)
        sections[f"candidates.{mode}.codes"] = np.ascontiguousarray(block.codes)
        if block.scales is not None:
            sections[f"candidates.{mode}.scales"] = \
                np.ascontiguousarray(block.scales)
        sections[f"candidates.{mode}.bound_norms"] = \
            np.ascontiguousarray(block.bound_norms)

    table = {}
    offset = 0
    for name, array in sections.items():
        offset = _align(offset)
        table[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,           # relative to data_start
            "nbytes": int(array.nbytes),
        }
        offset += array.nbytes

    # Digest of every section's bytes.  The preamble's header CRC covers the
    # header bytes — including this field — so two snapshots share a header
    # CRC iff their *content* matches, which is what the remote-serving
    # fingerprint handshake relies on (same-shape retrains must not collide).
    content_crc = 0
    for array in sections.values():
        content_crc = zlib.crc32(memoryview(array).cast("B"), content_crc)

    header = {
        "format_version": SNAPSHOT_VERSION,
        "num_users": index.num_users,
        "num_items": index.num_items,
        "dim": int(index.user_embeddings.shape[1]),
        "dtype": index.dtype.name,
        "candidate_modes": list(dict.fromkeys(candidate_modes)),
        "has_exclusion": exclusion is not None,
        "content_crc32": content_crc,
        "metadata": dict(metadata or {}),
        "sections": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PREAMBLE.size + len(header_bytes))

    tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(_PREAMBLE.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
                                        len(header_bytes),
                                        zlib.crc32(header_bytes)))
            handle.write(header_bytes)
            handle.write(b"\x00" * (data_start - handle.tell()))
            for name, array in sections.items():
                target = data_start + table[name]["offset"]
                handle.write(b"\x00" * (target - handle.tell()))
                handle.write(memoryview(array).cast("B"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    return path


def _read_header_from(handle, path: Path) -> Tuple[dict, int]:
    """Validated header dict + absolute ``data_start`` read off ``handle``."""
    try:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise SnapshotFormatError(f"{path}: too short to be a snapshot")
        magic, version, header_len, header_crc = _PREAMBLE.unpack(preamble)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotFormatError(f"{path}: not a repro serving snapshot")
        if version != SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                f"{path}: snapshot format version {version} is not "
                f"supported (this build reads version {SNAPSHOT_VERSION})")
        header_bytes = handle.read(header_len)
        file_size = os.fstat(handle.fileno()).st_size
    except OSError as error:
        raise SnapshotFormatError(f"cannot read snapshot: {error}") from error
    if len(header_bytes) < header_len:
        raise SnapshotFormatError(f"{path}: truncated snapshot header")
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotFormatError(f"{path}: snapshot header checksum mismatch "
                                  "(corrupted file)")
    header = json.loads(header_bytes.decode("utf-8"))
    data_start = _align(_PREAMBLE.size + header_len)
    if not isinstance(header, dict) or \
            not isinstance(header.get("sections"), dict):
        raise SnapshotFormatError(
            f"{path}: malformed snapshot header (no section table)")
    for name, spec in header["sections"].items():
        # The CRC only proves the header matches what was written, not that
        # what was written is sane — a tampered-then-rechecksummed header
        # must still fail closed instead of aliasing the preamble (negative
        # offset) or mis-viewing a section (nbytes inconsistent with
        # dtype * shape).
        try:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(n) for n in spec["shape"])
            offset = int(spec["offset"])
            nbytes = int(spec["nbytes"])
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(
                f"{path}: malformed section table entry {name!r} "
                f"({error})") from error
        if offset < 0 or any(n < 0 for n in shape):
            raise SnapshotFormatError(
                f"{path}: malformed section table entry {name!r} "
                f"(negative offset or dimension)")
        if nbytes != int(np.prod(shape, dtype=np.int64)) * dtype.itemsize:
            raise SnapshotFormatError(
                f"{path}: section {name!r} byte count does not match its "
                f"dtype and shape")
        if data_start + offset + nbytes > file_size:
            raise SnapshotFormatError(
                f"{path}: truncated snapshot (section {name!r} reaches past "
                f"end of file)")
    return header, data_start


def _read_header(path: Path) -> Tuple[dict, int]:
    """Validated header dict + absolute ``data_start`` of ``path``."""
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise SnapshotFormatError(f"cannot read snapshot: {error}") from error
    with handle:
        return _read_header_from(handle, path)


def snapshot_info(path) -> dict:
    """The validated header of a snapshot (id space, dtype, section table)."""
    header, _ = _read_header(Path(path))
    return header


def snapshot_fingerprint(path) -> str:
    """A content fingerprint of a snapshot file, cheap enough to re-check.

    Format version + header CRC + file size, read from the preamble alone
    (no section I/O).  Unlike :func:`_snapshot_identity`'s ``(inode,
    mtime)`` — which distinguishes *republishes of the same path on one
    host* — this identifies the *content*, so a router and a shard server
    on different machines agree iff they hold byte-identical snapshots.
    The header CRC covers the section table, the metadata *and* the
    ``content_crc32`` digest of every section's bytes, so any regenerated
    snapshot — even a same-shape retrain — yields a new fingerprint.  Used
    by the remote-serving handshake to reject a shard serving a stale file.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise SnapshotFormatError(f"cannot read snapshot: {error}") from error
    with handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise SnapshotFormatError(f"{path}: too short to be a snapshot")
        magic, version, _, header_crc = _PREAMBLE.unpack(preamble)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotFormatError(f"{path}: not a repro serving snapshot")
        size = os.fstat(handle.fileno()).st_size
    return f"v{version}:{header_crc:08x}:{size}"


def load_snapshot(path, *, mmap: bool = True) -> "ServingSnapshot":
    """Open a serving snapshot written by :func:`save_snapshot`.

    ``mmap=True`` maps every section read-only and zero-copy — O(open)
    regardless of catalogue size, pages faulted in lazily on first touch.
    ``mmap=False`` reads owning, writable arrays (an O(bytes) copy) for
    callers that need to mutate or outlive the file.
    """
    path = Path(path)
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise SnapshotFormatError(f"cannot read snapshot: {error}") from error
    arrays: "Dict[str, np.ndarray]" = {}
    with handle:
        header, data_start = _read_header_from(handle, path)
        if mmap:
            # One map for the whole file, sections as views into it: the N
            # sections cost a single open + mmap (np.memmap per section would
            # pay both, plus a realpath resolution, per section), and every
            # view shares the one kernel page-cache mapping.
            base = np.memmap(handle, dtype=np.uint8, mode="r")
            # Slice/view/reshape through the plain-ndarray alias: memmap's
            # __array_finalize__ runs on every intermediate otherwise, more
            # than doubling per-section cost.  Only the final array is cast
            # back to the memmap subclass (still the same zero-copy pages,
            # kept alive through its .base chain).
            flat = base.view(np.ndarray)
            for name, spec in header["sections"].items():
                start = data_start + spec["offset"]
                arrays[name] = (flat[start:start + spec["nbytes"]]
                                .view(np.dtype(spec["dtype"]))
                                .reshape(tuple(spec["shape"]))
                                .view(type=np.memmap))
        else:
            for name, spec in header["sections"].items():
                handle.seek(data_start + spec["offset"])
                count = int(np.prod(spec["shape"], dtype=np.int64))
                array = np.fromfile(handle, dtype=np.dtype(spec["dtype"]),
                                    count=count)
                if array.size != count:
                    raise SnapshotFormatError(
                        f"{path}: truncated snapshot section {name!r}")
                arrays[name] = array.reshape(tuple(spec["shape"]))
    return ServingSnapshot(path, header, arrays, mmap=mmap)


class ServingSnapshot:
    """A loaded snapshot: raw sections plus zero-copy serving-stack builders.

    Everything expensive was paid at save time; the builders here only adopt
    the section arrays behind the existing facades — no embedding copies, no
    requantisation, no CSR re-sort.  A snapshot can therefore back many
    independently constructed indexes/services at once (they share the
    mapped pages).
    """

    def __init__(self, path: Path, header: dict,
                 arrays: Dict[str, np.ndarray], *, mmap: bool) -> None:
        self.path = Path(path)
        self.header = header
        self.mmap = bool(mmap)
        self.num_users = int(header["num_users"])
        self.num_items = int(header["num_items"])
        self.dim = int(header["dim"])
        self.dtype = np.dtype(header["dtype"])
        self.candidate_modes = tuple(header["candidate_modes"])
        self.metadata = dict(header.get("metadata", {}))
        self._arrays = arrays

    # ------------------------------------------------------------------ #
    @property
    def section_names(self) -> Tuple[str, ...]:
        return tuple(self._arrays)

    @property
    def nbytes(self) -> int:
        """Total bytes across all sections (mapped or owned)."""
        return sum(array.nbytes for array in self._arrays.values())

    def section(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"snapshot {self.path} has no section {name!r}; "
                           f"available: {sorted(self._arrays)}") from None

    @property
    def has_exclusion(self) -> bool:
        return "exclusion_indptr" in self._arrays

    # ------------------------------------------------------------------ #
    def exclusion(self) -> Optional[UserItemIndex]:
        """The persisted ``user -> train items`` index (CSR arrays adopted
        zero-copy), or ``None`` when the snapshot was saved without one."""
        if not self.has_exclusion:
            return None
        return UserItemIndex.from_csr_arrays(
            self.num_users, self.num_items,
            self.section("exclusion_indptr"), self.section("exclusion_indices"))

    def inference_index(self) -> InferenceIndex:
        """A fresh :class:`InferenceIndex` over the mapped matrices.

        Fresh per call (callers may rebind users or swap exclusions, e.g.
        the online overlay); the matrices themselves are always the same
        zero-copy views, so "fresh" costs O(1), not O(users x dim).
        """
        index = InferenceIndex(
            self.num_users, self.num_items,
            user_embeddings=self.section("user_embeddings"),
            item_embeddings=self.section("item_embeddings"),
            exclusion=self.exclusion(), dtype=self.dtype, copy=False)
        norms = self.section("item_norms")
        if norms.flags.writeable:
            norms.setflags(write=False)
        index._item_norms = norms
        return index

    def quantized_block(self, mode: str) -> QuantizedItemBlock:
        """The whole-catalogue quantised block of ``mode``, sections adopted.

        Falls back to quantising the (mapped) embeddings when the snapshot
        was saved without that mode — an O(items x dim) cost the saved modes
        never pay.
        """
        if f"candidates.{mode}.codes" not in self._arrays:
            if mode not in CANDIDATE_MODES:
                raise ValueError(f"unknown candidate mode {mode!r}; "
                                 f"options: {CANDIDATE_MODES}")
            return quantize_item_matrix(self.section("item_embeddings"), mode,
                                        item_norms=self.section("item_norms"))
        scales_name = f"candidates.{mode}.scales"
        return QuantizedItemBlock(
            mode, self.section(f"candidates.{mode}.codes"),
            self._arrays.get(scales_name),
            self.section(f"candidates.{mode}.bound_norms"),
            self.section("item_norms"))

    def shard_blocks(self, mode: str, num_shards: int,
                     policy: str = "contiguous") -> list:
        """Per-shard quantised blocks sliced from the stored whole-catalogue
        block (bit-identical to requantising each shard's slice)."""
        block = self.quantized_block(mode)
        return [block.take(part)
                for part in partition_items(self.num_items, num_shards, policy)]

    def sharded_index(self, num_shards: int, *, policy: str = "contiguous",
                      executor=None) -> ShardedInferenceIndex:
        """An item-sharded facade over the mapped matrices (contiguous shards
        are zero-copy views of the mapped item matrix)."""
        return ShardedInferenceIndex.from_index(
            self.inference_index(), num_shards, policy=policy,
            executor=executor)

    def __repr__(self) -> str:
        mode = "mmap" if self.mmap else "owned"
        return (f"ServingSnapshot(path={str(self.path)!r}, {mode}, "
                f"users={self.num_users}, items={self.num_items}, "
                f"dim={self.dim}, dtype={self.dtype.name}, "
                f"modes={list(self.candidate_modes)}, nbytes={self.nbytes})")


# ---------------------------------------------------------------------- #
# Multi-process fan-out workers.
#
# A ProcessExecutor task ships (snapshot_path, shard geometry, shard_id,
# user batch) plus any router-side divergence from the frozen file (grown
# user rows, ingested exclusion pairs) — never an embedding matrix.  Each
# worker process opens the snapshot once, builds ONLY its shard's state (an
# mmap'd embedding slice, the locally sliced exclusion, optionally the
# shard's quantised block) and caches it for the life of the process, so
# steady-state fan-out cost is one small (batch x k) result array per task.
#
# Caches are keyed by file *identity* (inode + mtime), not just the path:
# publish_snapshot() republishes via os.replace, and a long-lived worker
# must pick up the fresh file instead of serving the superseded mapping
# forever.  Superseded entries are evicted on the first miss.
# ---------------------------------------------------------------------- #

_WORKER_SHARDS: dict = {}
_WORKER_BLOCKS: dict = {}


def _snapshot_identity(snapshot_path: str) -> tuple:
    """(st_ino, st_mtime_ns) of the snapshot file — changes on republish."""
    stat = os.stat(snapshot_path)
    return int(stat.st_ino), int(stat.st_mtime_ns)


def _evict_superseded(snapshot_path: str, identity: tuple) -> None:
    """Drop cached state built from a republished-over version of the file."""
    for cache in (_WORKER_SHARDS, _WORKER_BLOCKS):
        stale = [key for key in cache
                 if key[0] == snapshot_path and key[1] != identity]
        for key in stale:
            del cache[key]


class _PartialUserMask:
    """Mask adapter tolerating user ids past the snapshot's id space.

    A router that grew its user matrix online still ships global user ids;
    the snapshot's CSR simply has no rows for them (their exclusion pairs
    arrive as extra payload pairs), so masking skips them instead of
    indexing past ``indptr``.
    """

    def __init__(self, base: UserItemIndex) -> None:
        self.base = base

    def mask(self, scores: np.ndarray, users: np.ndarray,
             value: float = -np.inf) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        in_range = users < self.base.num_users
        if in_range.all():
            return self.base.mask(scores, users, value)
        sel = np.nonzero(in_range)[0]
        rows, cols = self.base.flat_pairs(users[sel])
        if rows.size:
            scores[sel[rows], cols] = value
        return scores


def _worker_shard(snapshot_path: str, num_shards: int, policy: str,
                  shard_id: int):
    """This process's cached ``(ItemShard, user_embeddings, snapshot,
    identity)`` for one shard of the file currently at ``snapshot_path``."""
    identity = _snapshot_identity(snapshot_path)
    key = (snapshot_path, identity, num_shards, policy, shard_id)
    state = _WORKER_SHARDS.get(key)
    if state is None:
        from .sharding import ItemShard

        _evict_superseded(snapshot_path, identity)
        # A republish racing between the stat and this open hands us a file
        # newer than `identity`; the next call re-stats, misses and reloads,
        # so the mismatch lasts one task at most.
        snapshot = load_snapshot(snapshot_path, mmap=True)
        part = partition_items(snapshot.num_items, num_shards, policy)[shard_id]
        items = snapshot.section("item_embeddings")
        if part.size and int(part[-1]) - int(part[0]) + 1 == part.size:
            block = items[int(part[0]):int(part[0]) + part.size]  # view
        else:
            block = items[part]
        shard = ItemShard(shard_id, part, block, exclusion=snapshot.exclusion())
        if shard.exclusion is not None:
            shard.exclusion = _PartialUserMask(shard.exclusion)
        state = (shard, snapshot.section("user_embeddings"), snapshot, identity)
        _WORKER_SHARDS[key] = state
    return state


def _worker_block(snapshot_path: str, num_shards: int, policy: str,
                  shard_id: int, mode: str) -> QuantizedItemBlock:
    """This process's cached quantised block for one shard."""
    shard, _, snapshot, identity = _worker_shard(snapshot_path, num_shards,
                                                 policy, shard_id)
    key = (snapshot_path, identity, num_shards, policy, shard_id, mode)
    block = _WORKER_BLOCKS.get(key)
    if block is None:
        block = snapshot.quantized_block(mode).take(shard.item_ids)
        _WORKER_BLOCKS[key] = block
    return block


def _locate_extra_pairs(shard, extra) -> Optional[tuple]:
    """This shard's (batch row, local column) slice of shipped extra pairs.

    ``extra`` is the router's ``(batch row, global item)`` exclusion pairs
    the snapshot file does not hold (see
    :meth:`ShardedInferenceIndex._payload_state`), or ``None``.
    """
    if extra is None:
        return None
    rows, items = extra
    owned, local = shard.locate(items)
    if not owned.any():
        return None
    return rows[owned], local[owned]


def _execute_shard_payload(payload: tuple):
    """Run one shard task described by a picklable payload (worker side).

    Payload shapes (first element selects the kind)::

        ("top_k", path, S, policy, shard_id, users, k, exclude_train,
         user_block, extra_pairs)
        ("candidates", path, S, policy, shard_id, users, num_candidates,
         mode, exclude_train, user_block, extra_pairs)

    ``user_block`` overrides the snapshot's user rows when the router
    rebound its user matrix (grown users have no row in the file);
    ``extra_pairs`` carries exclusion pairs the file does not hold — both
    are ``None`` on the pure-snapshot fast path.  ``top_k`` returns the
    shard's ``(global ids, scores)`` candidate lists — exactly
    :meth:`ItemShard.local_top_k`; ``candidates`` returns
    ``(global ids, exact scores, thresholds)`` — exactly
    :meth:`ShardedCandidateIndex._shard_task`.  Both therefore merge
    bit-identically to the in-process executors on the same router state.
    """
    kind = payload[0]
    if kind == "top_k":
        (_, path, num_shards, policy, shard_id, users, k, exclude_train,
         user_block, extra) = payload
        shard, user_embeddings, _, _ = _worker_shard(path, num_shards, policy,
                                                     shard_id)
        if user_block is None:
            user_block = np.asarray(user_embeddings[users])
        return shard.local_top_k(user_block, users, k, exclude_train,
                                 extra_pairs=_locate_extra_pairs(shard, extra))
    if kind == "candidates":
        (_, path, num_shards, policy, shard_id, users, num_candidates, mode,
         exclude_train, user_block, extra) = payload
        from .candidates import _two_stage_block

        shard, user_embeddings, _, _ = _worker_shard(path, num_shards, policy,
                                                     shard_id)
        block = _worker_block(path, num_shards, policy, shard_id, mode)
        if user_block is None:
            user_block = np.asarray(user_embeddings[users])
        user_norms = np.linalg.norm(
            user_block.astype(np.float64, copy=False), axis=1)

        def rescore(candidates: np.ndarray) -> np.ndarray:
            return np.einsum("bd,bmd->bm", user_block,
                             shard.item_embeddings[candidates])

        local_ids, scores, thresholds = _two_stage_block(
            user_block, users, user_norms, num_candidates, block,
            shard.exclusion, exclude_train, rescore,
            extra_pairs=_locate_extra_pairs(shard, extra))
        return shard.item_ids[local_ids], scores, thresholds
    raise ValueError(f"unknown shard payload kind {kind!r}")
