"""Frozen inference-time indexes.

Two structures live here:

* :class:`UserItemIndex` — an immutable CSR ``user -> sorted unique items``
  index over a set of interactions.  Its batch operations are fully
  vectorised: masking a score batch is ONE flat-index assignment (no
  per-user Python loop), membership tests materialise a boolean matrix in
  one scatter, counts are an indptr difference.
* :class:`InferenceIndex` — a model snapshot for serving: the final user and
  item embedding matrices frozen after training (falling back to the
  model's ``score_users`` for non-factorised models such as MultiVAE),
  paired with the train-interaction exclusion index so "score all items and
  drop what the user already consumed" is two dense ops per batch.

Both are deliberately NumPy-only (no autograd imports) so they can be built
from any scorer, including test doubles.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "UserItemIndex",
    "InferenceIndex",
    "train_exclusion_index",
    "top_k_indices",
]

_SPLIT_INDEX_CACHE = "_engine_user_item_indexes"

#: Largest ``num_users * num_items`` for which :meth:`UserItemIndex.contains`
#: materialises a dense boolean lookup table (64M cells ≈ 64 MB).  Above it,
#: membership falls back to a binary search over the sorted flat keys.
_DENSE_MEMBERSHIP_CELLS = 1 << 26

#: Largest batch the reusable :meth:`InferenceIndex.top_k` score buffer will
#: grow to (matches the RecommendationService default ``batch_size``).  Bigger
#: one-shot batches allocate a fresh matrix instead, so a single
#: score-everyone call never pins ``num_users x num_items`` floats for the
#: life of the index.
_SCORE_BUFFER_MAX_ROWS = 1024


def _expand_slices(counts: np.ndarray,
                   starts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(batch rows, gather positions) covering per-row slices of a flat array.

    Row ``b`` owns ``counts[b]`` consecutive elements beginning at
    ``starts[b]``; subtracting the running offset of earlier slices turns a
    global arange into per-slice aranges.  This is the vectorised gather
    behind both the CSR ``flat_pairs`` and the delta-overlay ``pairs_for`` —
    no per-row Python loops.
    """
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    rows = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    offsets = np.cumsum(counts) - counts
    positions = (np.arange(total, dtype=np.int64)
                 - np.repeat(offsets, counts)
                 + np.repeat(starts, counts))
    return rows, positions


class _FlatPairOps:
    """Batch operations derived purely from ``flat_pairs`` / ``num_items``.

    Shared by the frozen :class:`UserItemIndex` and the online delta overlay
    (:class:`repro.engine.online.OnlineUserItemIndex`) so the masking /
    scatter semantics can never diverge between them.
    """

    def mask(self, scores: np.ndarray, users: np.ndarray,
             value: float = -np.inf) -> np.ndarray:
        """Assign ``value`` at every indexed (user, item) position, in place."""
        rows, cols = self.flat_pairs(users)
        if rows.size:
            scores[rows, cols] = value
        return scores

    def dense_rows(self, users: np.ndarray, dtype=bool) -> np.ndarray:
        """Dense ``(len(users), num_items)`` indicator rows in ``dtype``.

        One flat-index scatter per batch — the single implementation behind
        :meth:`membership`, the training pipeline's user-row batches and the
        autoencoder models' input rows.
        """
        users = np.asarray(users, dtype=np.int64)
        matrix = np.zeros((users.size, self.num_items), dtype=dtype)
        rows, cols = self.flat_pairs(users)
        if rows.size:
            matrix[rows, cols] = 1
        return matrix

    def membership(self, users: np.ndarray) -> np.ndarray:
        """Boolean ``(len(users), num_items)`` matrix of indexed pairs."""
        return self.dense_rows(users, dtype=bool)


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-``k`` scores per row, ordered by decreasing score.

    Ties break by ascending item id (stable argsort over an argpartition),
    matching the historical evaluator behaviour bit-for-bit.
    """
    k = min(int(k), scores.shape[1])
    partition = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, partition, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(partition, order, axis=1)


class UserItemIndex(_FlatPairOps):
    """Immutable CSR index of ``user -> sorted unique item ids``.

    Parameters
    ----------
    num_users, num_items:
        Size of the id spaces (rows of the index / width of score batches).
    users, items:
        Parallel interaction arrays; duplicates collapse to one entry, which
        matches the historical per-user ``set`` semantics.
    """

    def __init__(self, num_users: int, num_items: int,
                 users: Sequence[int], items: Sequence[int]) -> None:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        self.num_users = int(num_users)
        self.num_items = int(num_items)

        if users.size:
            pairs = users * np.int64(self.num_items) + items
            pairs = np.unique(pairs)
            users = pairs // self.num_items
            items = pairs % self.num_items
        self.indptr = np.zeros(self.num_users + 1, dtype=np.int64)
        np.cumsum(np.bincount(users, minlength=self.num_users), out=self.indptr[1:])
        self.indices = items
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._flat_keys: Optional[np.ndarray] = None
        self._membership_table: Optional[np.ndarray] = None
        self._membership_table_built = False

    # ------------------------------------------------------------------ #
    @classmethod
    def from_flat_keys(cls, num_users: int, num_items: int,
                       keys: np.ndarray) -> "UserItemIndex":
        """Build from already-sorted unique flat keys, skipping the sort.

        ``keys`` must be sorted ascending with no duplicates (the invariant
        :attr:`flat_keys` documents).  Because the regular constructor derives
        its CSR from exactly that sorted unique key array, this fast path is
        bit-identical to a from-scratch build on the same pair set — it is how
        :meth:`repro.engine.online.OnlineUserItemIndex.compact` folds a delta
        into the base in one linear merge instead of an O(nnz log nnz) resort.
        """
        keys = np.asarray(keys, dtype=np.int64)
        index = cls.__new__(cls)
        index.num_users = int(num_users)
        index.num_items = int(num_items)
        users = keys // index.num_items
        index.indptr = np.zeros(index.num_users + 1, dtype=np.int64)
        np.cumsum(np.bincount(users, minlength=index.num_users),
                  out=index.indptr[1:])
        index.indices = keys % index.num_items
        index.indptr.setflags(write=False)
        index.indices.setflags(write=False)
        frozen_keys = keys.copy()
        frozen_keys.setflags(write=False)
        index._flat_keys = frozen_keys
        index._membership_table = None
        index._membership_table_built = False
        return index

    @classmethod
    def from_csr_arrays(cls, num_users: int, num_items: int,
                        indptr: np.ndarray,
                        indices: np.ndarray) -> "UserItemIndex":
        """Adopt prebuilt CSR arrays without copying or re-sorting.

        The arrays must satisfy the construction invariants (monotone
        ``indptr`` of length ``num_users + 1`` starting at 0 and ending at
        ``len(indices)``; each user's items sorted ascending and unique) —
        exactly what :func:`repro.engine.snapshot.load_snapshot` reads back
        from disk, so a memory-mapped exclusion index is zero-copy: the
        ``np.memmap`` sections *are* the index arrays.  Invariants are
        validated cheaply (shape/monotonicity, not per-row sortedness — that
        is the writer's contract, covered by the round-trip tests).
        """
        indptr = np.asanyarray(indptr)
        indices = np.asanyarray(indices)
        index = cls.__new__(cls)
        index.num_users = int(num_users)
        index.num_items = int(num_items)
        if indptr.ndim != 1 or indptr.size != index.num_users + 1:
            raise ValueError("indptr must have num_users + 1 entries")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be monotonically non-decreasing")
        index.indptr = indptr
        index.indices = indices
        for array in (index.indptr, index.indices):
            if array.flags.writeable:
                array.setflags(write=False)
        index._flat_keys = None
        index._membership_table = None
        index._membership_table_built = False
        return index

    @classmethod
    def from_split(cls, split, which: str = "train") -> "UserItemIndex":
        """Index over one partition of a :class:`repro.data.DataSplit`.

        Indexes are cached on the split object — every consumer (evaluator,
        recommendation service, ``Recommender.recommend``) shares one build.
        """
        cache = getattr(split, _SPLIT_INDEX_CACHE, None)
        if cache is None:
            cache = {}
            setattr(split, _SPLIT_INDEX_CACHE, cache)
        if which not in cache:
            if which == "train":
                users, items = split.train_users, split.train_items
            elif which in ("valid", "validation"):
                users, items = split.valid_users, split.valid_items
            elif which == "test":
                users, items = split.test_users, split.test_items
            else:
                raise ValueError("which must be one of 'train', 'valid', 'test'")
            cache[which] = cls(split.num_users, split.num_items, users, items)
        return cache[which]

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def counts(self, users: Optional[np.ndarray] = None) -> np.ndarray:
        """Number of indexed items per user (for all users when omitted)."""
        if users is None:
            return np.diff(self.indptr)
        users = np.asarray(users, dtype=np.int64)
        return self.indptr[users + 1] - self.indptr[users]

    def users_with_items(self) -> np.ndarray:
        """Sorted ids of users that have at least one indexed item."""
        return np.nonzero(np.diff(self.indptr) > 0)[0].astype(np.int64)

    def items_for(self, user: int) -> np.ndarray:
        """Sorted item ids of one user (zero-copy view)."""
        return self.indices[self.indptr[user]:self.indptr[user + 1]]

    def flat_pairs(self, users: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(batch_row, item) coordinate arrays covering the users' items.

        This is the flat-index gather that replaces the per-user masking
        loop: for a batch of users it returns, without Python-level
        iteration, the row index into the batch and the item column of every
        indexed (user, item) pair.
        """
        users = np.asarray(users, dtype=np.int64)
        rows, positions = _expand_slices(self.counts(users),
                                         self.indptr[users])
        return rows, self.indices[positions]

    @property
    def flat_keys(self) -> np.ndarray:
        """Sorted flat keys ``user * num_items + item`` of every indexed pair.

        Because construction sorts unique pairs, concatenating the per-user
        CSR rows in user order reproduces that globally sorted key array —
        so membership of arbitrary (user, item) pairs is one ``searchsorted``
        over this cache instead of a per-element ``set`` lookup.  Built
        lazily and frozen, like ``indptr``/``indices``.
        """
        if self._flat_keys is None:
            counts = np.diff(self.indptr)
            keys = (np.repeat(np.arange(self.num_users, dtype=np.int64), counts)
                    * np.int64(self.num_items) + self.indices)
            keys.setflags(write=False)
            self._flat_keys = keys
        return self._flat_keys

    def _dense_membership(self) -> Optional[np.ndarray]:
        """Dense boolean lookup table, or ``None`` when the id space is too big.

        For small catalogues an O(1) table lookup beats the O(log nnz)
        binary search by an order of magnitude on whole candidate matrices;
        the table is built lazily from the flat keys and frozen.
        """
        if not self._membership_table_built:
            self._membership_table_built = True
            if self.num_users * self.num_items <= _DENSE_MEMBERSHIP_CELLS:
                table = np.zeros(self.num_users * self.num_items, dtype=bool)
                table[self.flat_keys] = True
                table = table.reshape(self.num_users, self.num_items)
                table.setflags(write=False)
                self._membership_table = table
        return self._membership_table

    def contains(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorised membership test of (user, item) pairs.

        ``users`` and ``items`` broadcast against each other (e.g. a
        ``(B, 1)`` user column against a ``(B, n)`` candidate matrix); the
        result has the broadcast shape.  Small id spaces answer from a dense
        boolean table; large ones binary-search the sorted flat keys.  Either
        way the training pipeline rejects whole candidate matrices of
        negatives in one shot.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        # Validate before broadcasting (cheapest on the raw operands) so both
        # branches reject out-of-range ids identically — the flat-key
        # arithmetic would otherwise wrap into a neighbouring user's row.
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            raise IndexError("user id out of range for this index")
        if items.size and (items.min() < 0 or items.max() >= self.num_items):
            raise IndexError("item id out of range for this index")
        table = self._dense_membership()
        if table is not None:
            return table[users, items]
        users, items = np.broadcast_arrays(users, items)
        keys = users * np.int64(self.num_items) + items
        flat = self.flat_keys
        if flat.size == 0:
            return np.zeros(keys.shape, dtype=bool)
        positions = np.minimum(np.searchsorted(flat, keys), flat.size - 1)
        return flat[positions] == keys

    def __repr__(self) -> str:
        return (f"UserItemIndex(users={self.num_users}, items={self.num_items}, "
                f"nnz={self.nnz})")


def train_exclusion_index(split) -> UserItemIndex:
    """The cached ``user -> train items`` exclusion index of a split."""
    return UserItemIndex.from_split(split, "train")


class InferenceIndex:
    """Model snapshot for serving: frozen embeddings + exclusion index.

    Factorised models (anything exposing ``user_item_embeddings``) freeze
    their final user/item matrices, so a score batch is one dense matmul in
    the configured dtype.  Other models fall back to their ``score_users``
    callable.  Training positives are excluded through the shared
    :class:`UserItemIndex` in one vectorised assignment per batch.
    """

    def __init__(self, num_users: int, num_items: int, *,
                 user_embeddings: Optional[np.ndarray] = None,
                 item_embeddings: Optional[np.ndarray] = None,
                 scorer=None,
                 exclusion: Optional[UserItemIndex] = None,
                 dtype=np.float64, copy: bool = True) -> None:
        if (user_embeddings is None) != (item_embeddings is None):
            raise ValueError("user and item embeddings must be provided together")
        if user_embeddings is None and scorer is None:
            raise ValueError("need either embedding matrices or a scorer")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.dtype = np.dtype(dtype)
        self._scorer = scorer
        if user_embeddings is not None:
            if copy:
                self.user_embeddings = np.array(user_embeddings,
                                                dtype=self.dtype, copy=True)
                self.item_embeddings = np.array(item_embeddings,
                                                dtype=self.dtype, copy=True)
            else:
                # Zero-copy adoption: the caller owns already-frozen matrices
                # (typically read-only ``np.memmap`` sections of a serving
                # snapshot) whose dtype must already match — copying here
                # would defeat the point of mapping them.
                self.user_embeddings = np.asanyarray(user_embeddings)
                self.item_embeddings = np.asanyarray(item_embeddings)
                if (self.user_embeddings.dtype != self.dtype
                        or self.item_embeddings.dtype != self.dtype):
                    raise ValueError(
                        "copy=False adopts the embedding arrays as-is; their "
                        "dtype must match the requested serving dtype")
            if self.user_embeddings.shape[0] != self.num_users:
                raise ValueError("user embedding rows must equal num_users")
            if self.item_embeddings.shape[0] != self.num_items:
                raise ValueError("item embedding rows must equal num_items")
        else:
            self.user_embeddings = None
            self.item_embeddings = None
        self.exclusion = exclusion
        self._item_norms: Optional[np.ndarray] = None
        self._score_buffer: Optional[np.ndarray] = None
        self._score_buffer_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, split=None, *, dtype=np.float64,
                   exclusion: Optional[UserItemIndex] = None) -> "InferenceIndex":
        """Freeze a model (any ``score_users`` scorer) for serving.

        ``split`` defaults to ``model.split``; when neither is available the
        exclusion index is omitted and only unmasked scoring works.
        """
        split = split if split is not None else getattr(model, "split", None)
        if exclusion is None and split is not None:
            exclusion = train_exclusion_index(split)
        if split is not None:
            num_users, num_items = split.num_users, split.num_items
        else:
            num_users, num_items = model.num_users, model.num_items
        if hasattr(model, "user_item_embeddings"):
            user_matrix, item_matrix = model.user_item_embeddings()
            return cls(num_users, num_items,
                       user_embeddings=user_matrix, item_embeddings=item_matrix,
                       exclusion=exclusion, dtype=dtype)
        return cls(num_users, num_items, scorer=model.score_users,
                   exclusion=exclusion, dtype=dtype)

    @property
    def is_factorized(self) -> bool:
        return self.user_embeddings is not None

    def rebind_users(self, user_embeddings: np.ndarray) -> None:
        """Swap in a replacement (typically grown) user-embedding matrix.

        The online-serving path appends fallback rows for previously unseen
        users; everything else about the snapshot (item matrix, norms, score
        buffer — which is keyed by batch rows, not ``num_users``) stays valid.
        The matrix may only grow: shrinking would dangle cached results.
        """
        if not self.is_factorized:
            raise ValueError("rebind_users requires a factorised InferenceIndex")
        user_embeddings = np.ascontiguousarray(user_embeddings, dtype=self.dtype)
        if user_embeddings.ndim != 2 or \
                user_embeddings.shape[1] != self.user_embeddings.shape[1]:
            raise ValueError("replacement user matrix must keep the embedding dim")
        if user_embeddings.shape[0] < self.num_users:
            raise ValueError("replacement user matrix cannot drop existing users")
        self.user_embeddings = user_embeddings
        self.num_users = int(user_embeddings.shape[0])

    @property
    def item_norms(self) -> np.ndarray:
        """Cached per-item L2 embedding norms (float64, frozen).

        The Cauchy–Schwarz bound behind two-stage candidate serving
        (``u · e_i <= ||u|| · ||e_i||``) prunes against these, so they are
        computed once per snapshot and shared by every quantised block.
        """
        if not self.is_factorized:
            raise ValueError("item norms require a factorised InferenceIndex")
        if self._item_norms is None:
            norms = np.linalg.norm(
                self.item_embeddings.astype(np.float64, copy=False), axis=1)
            norms.setflags(write=False)
            self._item_norms = norms
        return self._item_norms

    # ------------------------------------------------------------------ #
    def scores(self, users: Sequence[int], mask_train: bool = False) -> np.ndarray:
        """Dense ``(len(users), num_items)`` score batch in ``self.dtype``."""
        users = np.asarray(users, dtype=np.int64)
        if self.is_factorized:
            scores = self.user_embeddings[users] @ self.item_embeddings.T
            owned = True
        else:
            raw = np.asarray(self._scorer(users))
            scores = raw.astype(self.dtype, copy=False)
            owned = scores is not raw
        if scores.shape != (users.size, self.num_items):
            raise ValueError(
                "scorer must return an array of shape (num_users_in_batch, num_items); "
                f"got {scores.shape}"
            )
        if mask_train:
            if self.exclusion is None:
                raise ValueError("no exclusion index attached to this InferenceIndex")
            if not owned:
                # Never scribble -inf into an array the scorer may still own.
                scores = scores.copy()
            self.exclusion.mask(scores, users)
        return scores

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Scores of aligned (user, item) pairs without scoring all items."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must be aligned 1-d arrays")
        if self.is_factorized:
            return np.einsum("ij,ij->i", self.user_embeddings[users],
                             self.item_embeddings[items])
        return self.scores(users)[np.arange(users.size), items]

    def rescore(self, users: Sequence[int], item_lists: np.ndarray) -> np.ndarray:
        """Exact scores of per-user candidate lists, in the index dtype.

        ``item_lists`` is ``(len(users), m)`` — row ``b`` holds the candidate
        item ids of ``users[b]`` — and the result has the same shape.  This is
        the stage-2 rescoring hook of the two-stage candidate pipeline
        (:mod:`repro.engine.candidates`): only ``m`` items per user are scored
        instead of the whole catalogue.
        """
        users = np.asarray(users, dtype=np.int64)
        item_lists = np.asarray(item_lists, dtype=np.int64)
        if item_lists.ndim != 2 or item_lists.shape[0] != users.size:
            raise ValueError("item_lists must have shape (len(users), m)")
        if self.is_factorized:
            return np.einsum("bd,bmd->bm", self.user_embeddings[users],
                             self.item_embeddings[item_lists])
        return np.take_along_axis(self.scores(users), item_lists, axis=1)

    def _buffered_scores(self, users: np.ndarray) -> np.ndarray:
        """Score batch written into a reusable per-index buffer.

        ``top_k`` is the hot serving path; recomputing it per request used to
        allocate a fresh ``batch × num_items`` matrix every time.  The buffer
        grows to the largest batch seen — capped at
        ``_SCORE_BUFFER_MAX_ROWS`` so one-shot score-everyone calls fall back
        to a fresh allocation instead of pinning a catalogue-sized matrix —
        and is reused (``np.matmul(..., out=)`` overwrites every cell, so
        stale masking never leaks between calls).  The returned view is only
        valid until the next ``top_k`` call and is never handed out by the
        public ``scores`` API.  Callers must hold ``_score_buffer_lock``.
        """
        rows = users.size
        if self._score_buffer is None or self._score_buffer.shape[0] < rows:
            self._score_buffer = np.empty((rows, self.num_items), dtype=self.dtype)
        block = self._score_buffer[:rows]
        np.matmul(self.user_embeddings[users], self.item_embeddings.T, out=block)
        return block

    def top_k(self, users: Sequence[int], k: int,
              exclude_train: bool = True) -> np.ndarray:
        """Top-``k`` item ids per user, best first, shape ``(len(users), k)``.

        Thread-safe: the reusable score buffer is claimed with a
        non-blocking lock, and a contending (or oversized) call simply pays
        the historical fresh allocation instead of waiting or racing.
        """
        users = np.asarray(users, dtype=np.int64)
        if not self.is_factorized:
            scores = self.scores(users, mask_train=exclude_train)
            return top_k_indices(scores, k)
        buffered = (users.size <= _SCORE_BUFFER_MAX_ROWS
                    and self._score_buffer_lock.acquire(blocking=False))
        try:
            if buffered:
                scores = self._buffered_scores(users)
            else:
                scores = self.user_embeddings[users] @ self.item_embeddings.T
            if exclude_train:
                if self.exclusion is None:
                    raise ValueError(
                        "no exclusion index attached to this InferenceIndex")
                self.exclusion.mask(scores, users)
            return top_k_indices(scores, k)
        finally:
            if buffered:
                self._score_buffer_lock.release()

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Single-user convenience wrapper over :meth:`top_k`."""
        return [int(item) for item in self.top_k([int(user)], k,
                                                 exclude_train=exclude_train)[0]]

    def __repr__(self) -> str:
        mode = "factorized" if self.is_factorized else "scorer"
        return (f"InferenceIndex(users={self.num_users}, items={self.num_items}, "
                f"mode={mode}, dtype={self.dtype.name})")
