"""Two-stage top-K serving: quantised candidate generation + exact rescoring.

Past ~10M items the exact serving path is bound by one dense ``U × I``
full-precision matmul per batch.  This module replaces it with a two-stage
pipeline that is *certified* per query batch:

* **Stage 1 — candidate generation.**  Scores run against a quantised item
  matrix (:func:`quantize_item_matrix`): symmetric per-item **int8** codes
  with a float scale vector (8x smaller than float64), or a **float32** cast
  (2x smaller, near-exact).  Per item the block caches a *bound norm*
  ``r_i + kappa * ||d_i||`` — the L2 quantisation residual plus a rigorous
  float32 matmul rounding slack — so by Cauchy–Schwarz the exact score obeys

      u . e_i  <=  approx_i + ||u|| * bound_norm_i      (upper bound)
      u . e_i  <=  ||u|| * ||e_i||                      (norm cap)

  Candidates are the top ``candidate_factor * k`` items by the tighter of the
  two upper bounds (train-excluded items are masked to ``-inf`` first, so a
  consumed item can never be a candidate).
* **Stage 2 — exact rescoring.**  Only the candidate set is rescored in the
  index dtype (through :meth:`InferenceIndex.rescore` — ``m`` dot products
  per user instead of the whole catalogue) and re-ranked exactly, ties broken
  by ascending item id like the sharded merge.
* **Certificate.**  Each batch reports, per user, whether the
  ``(c*k+1)``-th candidate's upper bound fell *strictly below* the k-th
  rescored score — minus a rounding slack covering the stage-2 / oracle
  floating-point error in the index dtype — and whether the k-th rescored
  score clears the ``(k+1)``-th by the same margin.  When both hold, no
  pruned or runner-up item can enter the top-k under ANY faithful rounding
  of the exact scores, so the result provably equals exhaustive search
  (identical id sets; identical order wherever adjacent scores are
  separated).  When they do not, the result is approximate and callers can
  fall back to the exact oracle — which remains the default serving path.

Sharding composes: :class:`ShardedCandidateIndex` quantises each shard's
embedding block independently, runs the two-stage pipeline per shard through
the same executor seam as exact sharded serving, and merges the pooled
exactly-rescored candidates; the merged batch is certified when the k-th
merged score beats every shard's local pruning threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .index import InferenceIndex, UserItemIndex
from .observability import metrics, span
from .sharding import ShardedInferenceIndex

__all__ = [
    "CANDIDATE_MODES",
    "QuantizedItemBlock",
    "quantize_item_matrix",
    "Certificate",
    "CandidateIndex",
    "ShardedCandidateIndex",
]

CANDIDATE_MODES = ("int8", "float32")

#: Items per chunk when casting int8 codes to float32 for the stage-1 matmul
#: (bounds the transient cast buffer to ``chunk * dim * 4`` bytes).
_INT8_CAST_CHUNK = 32768


def _rounding_slack(dim: int, dtype=np.float32) -> float:
    """Conservative relative slack for a ``dtype`` dot product of width ``dim``.

    Covers the ``dtype`` cast of the user vector plus the classic forward
    error bound ``gamma_n = n*eps/(1-n*eps)`` of a length-``dim``
    accumulation, doubled for headroom (BLAS may reorder but blocked
    summation only *tightens* the bound).  Stage 1 always passes float32
    (the quantised matmul precision); the certificate additionally uses the
    index dtype's slack to defend the comparison of stage-2 rescored scores
    against an exhaustive oracle that rounds differently.
    """
    return 2.0 * (dim + 4) * float(np.finfo(np.dtype(dtype)).eps)


class QuantizedItemBlock:
    """A quantised snapshot of one item-embedding block.

    Holds the codes (``int8`` or ``float32``), the per-item dequantisation
    scales (int8 mode only), and the per-item *bound norms* and exact
    embedding norms backing the stage-1 upper bounds.  Built by
    :func:`quantize_item_matrix`; immutable once constructed.
    """

    def __init__(self, mode: str, codes: np.ndarray,
                 scales: Optional[np.ndarray], bound_norms: np.ndarray,
                 item_norms: np.ndarray) -> None:
        self.mode = mode
        self.codes = codes
        self.scales = scales
        self.bound_norms = bound_norms
        self.item_norms = item_norms
        for array in (codes, scales, bound_norms, item_norms):
            if array is not None:
                array.setflags(write=False)

    @property
    def num_items(self) -> int:
        return int(self.codes.shape[0])

    @property
    def dim(self) -> int:
        return int(self.codes.shape[1])

    @property
    def nbytes(self) -> int:
        """Total snapshot bytes: codes + scales + both norm vectors."""
        total = self.codes.nbytes + self.bound_norms.nbytes + self.item_norms.nbytes
        if self.scales is not None:
            total += self.scales.nbytes
        return total

    def approx_scores(self, user_block: np.ndarray) -> np.ndarray:
        """Approximate ``(batch, num_items)`` scores, upcast to float64.

        The matmul always runs in float32 (that is the point of stage 1);
        int8 codes are cast chunk-wise through one small reusable buffer so
        the transient never exceeds ``_INT8_CAST_CHUNK * dim`` floats.
        """
        users32 = np.ascontiguousarray(user_block, dtype=np.float32)
        if self.mode == "float32":
            return (users32 @ self.codes.T).astype(np.float64)
        out32 = np.empty((users32.shape[0], self.num_items), dtype=np.float32)
        chunk = min(self.num_items, _INT8_CAST_CHUNK)
        if chunk:
            buffer = np.empty((chunk, self.dim), dtype=np.float32)
            for start in range(0, self.num_items, chunk):
                stop = min(start + chunk, self.num_items)
                width = stop - start
                np.copyto(buffer[:width], self.codes[start:stop])
                np.matmul(users32, buffer[:width].T, out=out32[:, start:stop])
        approx = out32.astype(np.float64)
        approx *= self.scales[None, :]
        return approx

    def take(self, item_ids: np.ndarray) -> "QuantizedItemBlock":
        """Sub-block covering ``item_ids`` (row indices into this block).

        Quantisation is per-item, so the sub-block is bit-identical to
        requantising exactly those items' embeddings — which is how a
        whole-catalogue snapshot block turns into per-shard blocks without
        requantising.  A contiguous ascending id range slices zero-copy
        views (mirroring the contiguous shard policy's embedding views);
        anything else gathers copies.
        """
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if item_ids.size == 0:
            sel = slice(0, 0)
        elif int(item_ids[-1]) - int(item_ids[0]) + 1 == item_ids.size \
                and bool((np.diff(item_ids) == 1).all()):
            sel = slice(int(item_ids[0]), int(item_ids[-1]) + 1)
        else:
            sel = item_ids
        return QuantizedItemBlock(
            self.mode, self.codes[sel],
            None if self.scales is None else self.scales[sel],
            self.bound_norms[sel], self.item_norms[sel])

    def __repr__(self) -> str:
        return (f"QuantizedItemBlock(mode={self.mode!r}, items={self.num_items}, "
                f"dim={self.dim}, nbytes={self.nbytes})")


def quantize_item_matrix(matrix: np.ndarray, mode: str = "int8", *,
                         item_norms: Optional[np.ndarray] = None) -> QuantizedItemBlock:
    """Quantise an item-embedding matrix for stage-1 candidate scoring.

    ``int8`` uses symmetric per-item quantisation: ``scale_i = max|e_i|/127``
    and ``code_i = round(e_i / scale_i)``, so dequantisation is one scale
    multiply and the per-component error is at most ``scale_i / 2``.
    ``float32`` simply casts.  Either way the block caches the per-item L2
    residual ``||e_i - dequant_i||`` inflated by the float32 rounding slack —
    everything the upper bound needs, with no full-precision copy retained.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("item matrix must be 2-d (num_items, dim)")
    exact = matrix.astype(np.float64, copy=False)
    if mode == "int8":
        scales = np.max(np.abs(exact), axis=1) / 127.0
        safe = np.where(scales > 0, scales, 1.0)
        codes = np.rint(exact / safe[:, None])
        np.clip(codes, -127, 127, out=codes)
        codes = codes.astype(np.int8)
        dequant = codes.astype(np.float64) * scales[:, None]
    elif mode == "float32":
        codes = matrix.astype(np.float32)
        scales = None
        dequant = codes.astype(np.float64)
    else:
        raise ValueError(f"unknown candidate mode {mode!r}; "
                         f"options: {CANDIDATE_MODES}")
    residual = np.linalg.norm(exact - dequant, axis=1)
    bound_norms = residual + _rounding_slack(exact.shape[1]) * np.linalg.norm(
        dequant, axis=1)
    if item_norms is None:
        item_norms = np.linalg.norm(exact, axis=1)
    item_norms = np.asarray(item_norms, dtype=np.float64)
    if item_norms.shape != (exact.shape[0],):
        raise ValueError("item_norms must be one float per item")
    return QuantizedItemBlock(mode, codes, scales, bound_norms, item_norms)


@dataclass(frozen=True)
class Certificate:
    """Per-batch exactness certificate of a two-stage top-K request.

    ``certified[b]`` is ``True`` when every pruned item's upper bound AND
    the ``(k+1)``-th rescored candidate score fell strictly below user
    ``b``'s k-th rescored score by more than the index-dtype rounding slack
    — the returned list is then provably identical to exhaustive exact
    search under any faithful rounding.  ``thresholds`` holds the tightest
    pruning bound per user (``-inf`` when nothing was pruned) and
    ``kth_scores`` the k-th exact rescored score it was compared against.
    """

    mode: str
    factor: int
    k: int
    certified: np.ndarray = field(repr=False)
    thresholds: np.ndarray = field(repr=False)
    kth_scores: np.ndarray = field(repr=False)

    @property
    def num_users(self) -> int:
        return int(self.certified.size)

    @property
    def num_certified(self) -> int:
        return int(np.count_nonzero(self.certified))

    @property
    def all_certified(self) -> bool:
        return bool(self.certified.all())

    @property
    def fraction_certified(self) -> float:
        return self.num_certified / self.num_users if self.num_users else 1.0

    def __repr__(self) -> str:
        return (f"Certificate(mode={self.mode!r}, factor={self.factor}, "
                f"k={self.k}, certified={self.num_certified}/{self.num_users})")


def _two_stage_block(user_block: np.ndarray, users: np.ndarray,
                     user_norms: np.ndarray, num_candidates: int,
                     block: QuantizedItemBlock,
                     exclusion: Optional[UserItemIndex], exclude_train: bool,
                     rescore,
                     extra_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One two-stage pass over one quantised block (the whole catalogue or
    one shard).

    Returns ``(candidate ids, exact scores, thresholds)``: the *full*
    ``min(num_candidates, block items)``-wide candidate set per user as
    local item ids (selection order — NOT ranked; the caller's final merge
    sorts by exact score), their exact rescored scores in the index dtype,
    and the per-user pruning threshold — the largest upper bound among items
    NOT kept as candidates (``-inf`` when the candidate set covered the
    block).  Returning every rescored candidate, not just the local top-k,
    is what makes the merged certificate airtight: any item absent from the
    pooled set is *pruned* and hence dominated by a threshold.
    ``user_norms`` are the (precomputed, float64) L2 norms of ``user_block``;
    ``rescore`` maps a ``(batch, m)`` local-id matrix to exact scores.
    ``extra_pairs`` is an optional ``(batch row, local item)`` pair set
    masked on top of ``exclusion`` — exclusion pairs a payload worker's
    frozen snapshot does not hold (an online overlay's ingested delta).
    """
    batch = users.size
    num_items = block.num_items
    if num_items == 0:
        return (np.empty((batch, 0), dtype=np.int64),
                np.empty((batch, 0), dtype=user_block.dtype),
                np.full(batch, -np.inf))
    stage1_start = time.perf_counter()
    bounds = block.approx_scores(user_block)
    bounds += user_norms[:, None] * block.bound_norms[None, :]
    # Norm-cap pruning: ||u||*||e_i|| is also an upper bound (Cauchy–Schwarz
    # on the exact embedding) and is tighter for coarsely quantised items.
    np.minimum(bounds, user_norms[:, None] * block.item_norms[None, :],
               out=bounds)
    if exclude_train:
        if exclusion is not None:
            exclusion.mask(bounds, users)
        if extra_pairs is not None:
            rows, cols = extra_pairs
            bounds[rows, cols] = -np.inf
    m = min(int(num_candidates), num_items)
    if m < num_items:
        # ONE argpartition yields both the m candidates (unordered — stage 2
        # re-ranks by exact score anyway) and the pruning threshold: the
        # element at position m is exactly the (m+1)-th largest upper bound,
        # the best bound among pruned items.
        partition = np.argpartition(-bounds, kth=m, axis=1)
        candidates = partition[:, :m]
        thresholds = np.take_along_axis(
            bounds, partition[:, m:m + 1], axis=1)[:, 0]
    else:
        candidates = np.tile(np.arange(num_items, dtype=np.int64), (batch, 1))
        thresholds = np.full(batch, -np.inf)
    candidate_bounds = np.take_along_axis(bounds, candidates, axis=1)
    stage2_start = time.perf_counter()
    exact = np.asarray(rescore(candidates))
    # Candidate lists may reach into masked territory when m exceeds the
    # unmasked catalogue; keep the exclusion airtight after rescoring.
    exact[candidate_bounds == -np.inf] = -np.inf
    registry = metrics()
    registry.observe("candidates.stage1_s", stage2_start - stage1_start)
    registry.observe("candidates.stage2_s", time.perf_counter() - stage2_start)
    return candidates, exact, thresholds


class _CertifiedTopK:
    """Shared request plumbing of the candidate backends (counters, API)."""

    def __init__(self, mode: str, factor: int) -> None:
        if mode not in CANDIDATE_MODES:
            raise ValueError(f"unknown candidate mode {mode!r}; "
                             f"options: {CANDIDATE_MODES}")
        factor = int(factor)
        if factor < 1:
            raise ValueError("candidate_factor must be a positive integer")
        self.mode = mode
        self.factor = factor
        self.last_certificate: Optional[Certificate] = None
        self.total_batches = 0
        self.certified_batches = 0
        self.total_users = 0
        self.certified_users = 0
        # Adaptive-escalation counters (see top_k_adaptive).
        self.escalation_rounds = 0
        self.escalated_users = 0
        self.exact_fallback_users = 0

    def _record(self, certificate: Certificate) -> Certificate:
        self.last_certificate = certificate
        self.total_batches += 1
        self.certified_batches += int(certificate.all_certified)
        self.total_users += certificate.num_users
        self.certified_users += certificate.num_certified
        return certificate

    def _finalize(self, pooled_ids: np.ndarray, pooled_scores: np.ndarray,
                  thresholds: np.ndarray, k: int, user_norms: np.ndarray,
                  dim: int, dtype, num_items: int, max_item_norm: float,
                  factor: Optional[int] = None,
                  record: bool = True) -> Tuple[np.ndarray, Certificate]:
        """Rank the pooled exactly-rescored candidates and certify the batch.

        One ``lexsort`` per batch (primary key descending exact score,
        secondary ascending global item id — identical tie policy to the
        sharded exact merge).  Certification is sound against ANY faithful
        rounding of the exhaustive oracle: with ``delta`` the index-dtype
        dot-product slack scaled by ``||u|| * max ||item||``, a pruned item
        (true score <= threshold) can only displace the k-th pick if
        ``threshold >= kth - 3*delta``, and a pooled runner-up only if
        ``(k+1)-th >= kth - 4*delta`` — both are required to fail.
        """
        batch = pooled_ids.shape[0]
        width = min(int(k), num_items)
        order = np.lexsort((pooled_ids, -pooled_scores), axis=-1)
        top_ids = np.take_along_axis(pooled_ids, order[:, :width], axis=1)
        top_scores = np.take_along_axis(pooled_scores, order[:, :width], axis=1)
        kth = (top_scores[:, -1].astype(np.float64) if width
               else np.full(batch, -np.inf))
        if pooled_scores.shape[1] > width:
            runner_up = np.take_along_axis(
                pooled_scores, order[:, width:width + 1], axis=1)[:, 0]
            runner_up = runner_up.astype(np.float64)
        else:
            runner_up = np.full(batch, -np.inf)
        slack = _rounding_slack(dim, dtype) * user_norms * max_item_norm
        certified = ((thresholds < kth - 3.0 * slack)
                     & (runner_up < kth - 4.0 * slack))
        certificate = Certificate(
            self.mode, int(factor if factor is not None else self.factor),
            int(k), certified, thresholds, kth)
        if record:
            self._record(certificate)
        return top_ids, certificate

    def _validate(self, users, k: int) -> Tuple[np.ndarray, int]:
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d array of user ids")
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        return users, k

    def top_k(self, users: Sequence[int], k: int,
              exclude_train: bool = True) -> np.ndarray:
        """Two-stage top-``k`` ids; the certificate lands in
        ``last_certificate`` and the aggregate counters."""
        ids, _ = self.top_k_with_certificate(users, k,
                                             exclude_train=exclude_train)
        return ids

    def top_k_adaptive(self, users: Sequence[int], k: int,
                       exclude_train: bool = True,
                       max_factor: Optional[int] = None) -> np.ndarray:
        """Two-stage top-``k`` escalated until every user is provably exact.

        Serves the batch at the configured factor, then re-serves *only* the
        uncertified users with the factor doubled — doubling again up to
        ``max_factor`` — and finally falls back to the exact single-stage
        path for whoever is still uncertified.  Every returned list is
        therefore identical to exhaustive exact search (certified users by
        the certificate's soundness, fallback users by construction); the
        price is one extra two-stage pass per doubling over a shrinking user
        subset.  Escalation work is tallied in ``escalation_rounds`` /
        ``escalated_users`` / ``exact_fallback_users``.
        """
        users, k = self._validate(users, k)
        max_factor = self.factor if max_factor is None else int(max_factor)
        if max_factor < self.factor:
            raise ValueError("max_factor must be >= the configured factor")
        registry = metrics()
        ids, certificate = self.top_k_with_certificate(
            users, k, exclude_train=exclude_train)
        pending = ~certificate.certified
        factor = self.factor
        # Stop doubling once factor*k covers the catalogue: the pass was
        # already exhaustive, so a bigger factor reruns identical work and a
        # still-uncertified user (a genuine near-tie) needs the exact path.
        while (pending.any() and factor * 2 <= max_factor
               and factor * k < self.num_items):
            factor *= 2
            subset = np.nonzero(pending)[0]
            self.escalation_rounds += 1
            self.escalated_users += int(subset.size)
            registry.inc("candidates.escalation_rounds")
            registry.inc("candidates.escalated_users", int(subset.size))
            # Escalation re-serves users the aggregate counters already
            # counted, so the sub-batch goes unrecorded (record=False) and
            # only the newly certified users are credited.
            with span("candidates.escalation"):
                sub_ids, sub_certificate = self.top_k_with_certificate(
                    users[subset], k, exclude_train=exclude_train,
                    factor=factor, record=False)
            self.certified_users += sub_certificate.num_certified
            ids[subset] = sub_ids
            pending[subset[sub_certificate.certified]] = False
        if pending.any():
            subset = np.nonzero(pending)[0]
            self.exact_fallback_users += int(subset.size)
            registry.inc("candidates.exact_fallback_users", int(subset.size))
            with span("candidates.exact_fallback"):
                ids[subset] = self._exact_backend.top_k(
                    users[subset], k, exclude_train=exclude_train)
        return ids

    @property
    def _exact_backend(self):
        """The exhaustive exact index escalation falls back to."""
        raise NotImplementedError

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Single-user convenience wrapper over :meth:`top_k`."""
        return [int(item) for item in self.top_k([int(user)], k,
                                                 exclude_train=exclude_train)[0]]


class CandidateIndex(_CertifiedTopK):
    """Two-stage (quantised candidates -> exact rescoring) top-K over one
    :class:`InferenceIndex`.

    A drop-in for the index's ``top_k``/``recommend``/``score_pairs`` serving
    surface; ``score_pairs`` stays exact (it never scores the catalogue).
    Only factorised snapshots qualify — stage 1 quantises the item matrix.
    """

    def __init__(self, index: InferenceIndex, mode: str = "int8",
                 factor: int = 4, *,
                 block: Optional[QuantizedItemBlock] = None) -> None:
        super().__init__(mode, factor)
        if not index.is_factorized:
            raise ValueError(
                "candidate generation requires a factorised InferenceIndex "
                "(a model exposing user_item_embeddings); scorer-fallback "
                "snapshots have no item matrix to quantise")
        self.index = index
        if block is not None:
            # Prebuilt (typically memory-mapped snapshot) block: adopting it
            # skips the O(items x dim) requantisation — the on-disk codes are
            # bit-identical to what quantize_item_matrix would rebuild.
            if block.mode != mode:
                raise ValueError(f"prebuilt block was quantised as "
                                 f"{block.mode!r}, not {mode!r}")
            if block.num_items != index.num_items:
                raise ValueError("prebuilt block must cover the catalogue")
            self.block = block
        else:
            self.block = quantize_item_matrix(index.item_embeddings, mode,
                                              item_norms=index.item_norms)
        self._max_item_norm = (float(self.block.item_norms.max())
                               if self.block.num_items else 0.0)

    @property
    def num_users(self) -> int:
        return self.index.num_users

    @property
    def num_items(self) -> int:
        return self.index.num_items

    @property
    def is_factorized(self) -> bool:
        return True

    @property
    def quantized_nbytes(self) -> int:
        return self.block.nbytes

    @property
    def _exact_backend(self):
        return self.index

    def top_k_with_certificate(
            self, users: Sequence[int], k: int, exclude_train: bool = True,
            factor: Optional[int] = None,
            record: bool = True) -> Tuple[np.ndarray, Certificate]:
        users, k = self._validate(users, k)
        factor = self.factor if factor is None else int(factor)
        if exclude_train and self.index.exclusion is None:
            raise ValueError("no exclusion index attached to this CandidateIndex")
        with span("candidates.top_k"):
            user_block = self.index.user_embeddings[users]
            user_norms = np.linalg.norm(
                user_block.astype(np.float64, copy=False), axis=1)
            candidates, scores, thresholds = _two_stage_block(
                user_block, users, user_norms, factor * k, self.block,
                self.index.exclusion, exclude_train,
                lambda candidate_ids: self.index.rescore(users, candidate_ids))
            return self._finalize(candidates, scores, thresholds, k,
                                  user_norms, self.block.dim,
                                  self.index.dtype, self.num_items,
                                  self._max_item_norm, factor=factor,
                                  record=record)

    def score_pairs(self, users: Sequence[int],
                    items: Sequence[int]) -> np.ndarray:
        return self.index.score_pairs(users, items)

    def __repr__(self) -> str:
        return (f"CandidateIndex(mode={self.mode!r}, factor={self.factor}, "
                f"items={self.num_items}, "
                f"certified={self.certified_users}/{self.total_users})")


class ShardedCandidateIndex(_CertifiedTopK):
    """Two-stage top-K over a :class:`ShardedInferenceIndex` — per-shard
    quantised blocks, per-shard exact rescoring, certified merge.

    Every shard quantises its own embedding slice (exactly what a remote
    worker would hold next to — or instead of — its full-precision block),
    runs the two-stage pipeline locally through the parent's executor seam,
    and returns its full exactly-rescored candidate set plus its local
    pruning threshold.  The merge re-ranks the pooled exact scores; the
    batch is certified when the k-th merged score clears both the *largest*
    shard threshold and the pooled runner-up by the rounding slack — no
    pruned item anywhere, and no runner-up, can then reach the top-k.
    """

    def __init__(self, sharded: ShardedInferenceIndex, mode: str = "int8",
                 factor: int = 4, *,
                 blocks: Optional[Sequence[QuantizedItemBlock]] = None) -> None:
        super().__init__(mode, factor)
        self.sharded = sharded
        if blocks is not None:
            # Prebuilt per-shard blocks (sliced from a snapshot's quantised
            # sections): quantisation is per-item, so a row slice of the
            # whole-catalogue block is bit-identical to requantising the
            # shard's embedding slice.
            blocks = list(blocks)
            if len(blocks) != sharded.num_shards:
                raise ValueError("need one prebuilt block per shard")
            for shard, block in zip(sharded.shards, blocks):
                if block.mode != mode:
                    raise ValueError(f"prebuilt block was quantised as "
                                     f"{block.mode!r}, not {mode!r}")
                if block.num_items != shard.num_local_items:
                    raise ValueError("prebuilt blocks must align with the "
                                     "shard partition")
            self.blocks = blocks
        else:
            self.blocks = [
                quantize_item_matrix(shard.item_embeddings, mode,
                                     item_norms=shard.item_norms)
                for shard in sharded.shards
            ]
        self._max_item_norm = max(
            (float(block.item_norms.max())
             for block in self.blocks if block.num_items), default=0.0)

    @property
    def num_users(self) -> int:
        return self.sharded.num_users

    @property
    def num_items(self) -> int:
        return self.sharded.num_items

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    @property
    def is_factorized(self) -> bool:
        return True

    @property
    def quantized_nbytes(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    @property
    def _exact_backend(self):
        return self.sharded

    def _shard_task(self, shard, block: QuantizedItemBlock,
                    user_block: np.ndarray, users: np.ndarray,
                    user_norms: np.ndarray, num_candidates: int,
                    exclude_train: bool):
        def rescore(candidates: np.ndarray) -> np.ndarray:
            return np.einsum("bd,bmd->bm", user_block,
                             shard.item_embeddings[candidates])

        local_ids, scores, thresholds = _two_stage_block(
            user_block, users, user_norms, num_candidates, block,
            shard.exclusion, exclude_train, rescore)
        return shard.item_ids[local_ids], scores, thresholds

    def top_k_with_certificate(
            self, users: Sequence[int], k: int, exclude_train: bool = True,
            factor: Optional[int] = None,
            record: bool = True) -> Tuple[np.ndarray, Certificate]:
        users, k = self._validate(users, k)
        factor = self.factor if factor is None else int(factor)
        if exclude_train and self.sharded.exclusion is None:
            raise ValueError(
                "no exclusion index attached to this ShardedCandidateIndex")
        user_block = self.sharded.user_embeddings[users]
        user_norms = np.linalg.norm(
            user_block.astype(np.float64, copy=False), axis=1)
        with span("candidates.fan_out"), \
                metrics().timer("candidates.fan_out_s"):
            results = self._fan_out(users, k, factor, exclude_train,
                                    user_block, user_norms)
        with span("candidates.merge"), metrics().timer("candidates.merge_s"):
            pooled_ids = np.concatenate([ids for ids, _, _ in results], axis=1)
            pooled_scores = np.concatenate(
                [scores for _, scores, _ in results], axis=1)
            thresholds = np.max(
                np.stack([thresh for _, _, thresh in results]), axis=0)
            return self._finalize(pooled_ids, pooled_scores, thresholds, k,
                                  user_norms, int(user_block.shape[1]),
                                  self.sharded.dtype, self.num_items,
                                  self._max_item_norm, factor=factor,
                                  record=record)

    def _fan_out(self, users: np.ndarray, k: int, factor: int,
                 exclude_train: bool, user_block: np.ndarray,
                 user_norms: np.ndarray) -> list:
        if getattr(self.sharded.executor, "ships_payloads", False):
            # Multi-process fan-out: workers run _two_stage_block over their
            # own mapped snapshot sections and return the exactly-rescored
            # candidates; the certified merge stays here in the router.
            # Router state the snapshot file does not hold (grown user rows,
            # ingested exclusion pairs) is shipped alongside.
            override_block, extra = self.sharded._payload_state(
                users, exclude_train)
            results = self.sharded.executor.fan_out(
                "candidates", users, factor * k, self.mode,
                bool(exclude_train), override_block, extra)
        else:
            tasks = [
                (lambda shard=shard, block=block: self._shard_task(
                    shard, block, user_block, users, user_norms, factor * k,
                    exclude_train))
                for shard, block in zip(self.sharded.shards, self.blocks)
            ]
            results = self.sharded.executor.run(tasks)
        return results

    def score_pairs(self, users: Sequence[int],
                    items: Sequence[int]) -> np.ndarray:
        return self.sharded.score_pairs(users, items)

    def __repr__(self) -> str:
        return (f"ShardedCandidateIndex(mode={self.mode!r}, "
                f"factor={self.factor}, shards={self.num_shards}, "
                f"items={self.num_items}, "
                f"certified={self.certified_users}/{self.total_users})")
