"""Durable write-ahead log for online ingest events.

:class:`~repro.engine.online.OnlineRecommendationService` acknowledges an
``ingest()`` only after the interaction batch is appended here, so the
durability contract is simple: **anything acknowledged survives process
death**.  Recovery replays the log onto the snapshot base and — by the
compaction-parity invariant — serves bit-identically to the service that
never crashed.  Anything *not* acknowledged (a crash mid-append) was never
promised, and the checksummed record framing makes the torn tail
detectable: recovery keeps exactly the longest prefix of intact records and
truncates the rest.

On-disk layout (all integers little-endian)::

    header:  b"RWAL" | u32 version
    record:  u32 payload_len | u32 crc32(payload) | payload
    payload: u32 count | int64 users[count] | int64 items[count]

Three fsync policies trade durability against append latency:

``always``
    ``fsync`` after every append — an acknowledged ingest survives even an
    OS crash.
``batch`` (default)
    flush to the OS after every append (survives *process* death), with an
    ``fsync`` every ``batch_interval`` appends and at every rotate/close.
``off``
    flush only; for benchmarks and tests that measure the framing cost.

The log stays bounded through :meth:`rotate`: after a snapshot publish
captures the compacted state, every record at or below the captured
:meth:`mark` is already baked into the snapshot, so the log rewrites itself
to just the tail beyond that mark (atomically, via a fsynced temp file and
``os.replace``).  Marks are monotonic record sequence numbers, not byte
offsets, so a mark captured before a concurrent rotation is still valid
after it — rotating to an already-covered mark is simply a no-op.  That
makes overlapping snapshot publishes safe: each rotates to its own mark and
the later mark always subsumes the earlier one.

Fault injection: an attached :class:`~repro.engine.faults.FaultPlan` is
consulted at site ``"wal.append"``; a ``torn_write`` action persists only a
prefix of the encoded record and raises :class:`WalTornWrite`, simulating a
crash in the middle of a write so recovery paths are testable
deterministically.
"""

from __future__ import annotations

import io
import os
import struct
import threading
import time
import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .observability import metrics

__all__ = [
    "FSYNC_POLICIES",
    "WalError",
    "WalTornWrite",
    "WriteAheadLog",
    "read_wal_records",
]

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sI")
_RECORD_PREFIX = struct.Struct("<II")  # payload_len, crc32(payload)
_COUNT = struct.Struct("<I")

#: Hard sanity cap on one record's payload: a length field beyond this is
#: treated as tail corruption, not an instruction to allocate gigabytes.
_MAX_PAYLOAD = 1 << 30

FSYNC_POLICIES = ("always", "batch", "off")


class WalError(RuntimeError):
    """The write-ahead log is unusable (bad header, closed, post-crash)."""


class WalTornWrite(WalError):
    """An injected torn write: the record was only partially persisted."""


def _encode_payload(users: np.ndarray, items: np.ndarray) -> bytes:
    count = int(users.shape[0])
    return (_COUNT.pack(count)
            + np.ascontiguousarray(users, dtype=np.int64).tobytes()
            + np.ascontiguousarray(items, dtype=np.int64).tobytes())


def _decode_payload(payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
    (count,) = _COUNT.unpack_from(payload, 0)
    expected = _COUNT.size + 2 * 8 * count
    if len(payload) != expected:
        raise WalError(
            f"WAL payload length mismatch: header says {count} pairs "
            f"({expected} bytes), got {len(payload)} bytes")
    users = np.frombuffer(payload, dtype=np.int64, count=count,
                          offset=_COUNT.size)
    items = np.frombuffer(payload, dtype=np.int64, count=count,
                          offset=_COUNT.size + 8 * count)
    return users.copy(), items.copy()


def _encode_record(users: np.ndarray, items: np.ndarray) -> bytes:
    payload = _encode_payload(users, items)
    return (_RECORD_PREFIX.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload)


def _scan(buffer: bytes) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], int]:
    """All intact records and the byte offset where the durable prefix ends.

    Anything after the returned offset failed a length, checksum, or
    payload-consistency check — by construction that can only be the torn
    tail of the final append, so the caller truncates it.
    """
    records: List[Tuple[np.ndarray, np.ndarray]] = []
    offset = _HEADER.size
    while True:
        prefix_end = offset + _RECORD_PREFIX.size
        if prefix_end > len(buffer):
            break
        payload_len, crc = _RECORD_PREFIX.unpack_from(buffer, offset)
        if payload_len > _MAX_PAYLOAD:
            break
        payload_end = prefix_end + payload_len
        if payload_end > len(buffer):
            break
        payload = buffer[prefix_end:payload_end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            records.append(_decode_payload(payload))
        except WalError:
            break
        offset = payload_end
    return records, offset


def read_wal_records(path) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Every intact ``(users, items)`` record in the log at ``path``.

    Read-only: torn tails are ignored but not truncated.  An empty or
    missing file yields no records; a file that exists but does not start
    with the WAL header raises :class:`WalError` (refusing to "recover"
    zero events from a file that was never a WAL).
    """
    try:
        buffer = _read_bytes(path)
    except FileNotFoundError:
        return []
    if not buffer:
        return []
    _check_header(buffer, path)
    records, _ = _scan(buffer)
    return records


def _read_bytes(path) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _check_header(buffer: bytes, path) -> None:
    if len(buffer) < _HEADER.size:
        raise WalError(f"{path}: truncated WAL header "
                       f"({len(buffer)} < {_HEADER.size} bytes)")
    magic, version = _HEADER.unpack_from(buffer, 0)
    if magic != _MAGIC:
        raise WalError(f"{path}: not a WAL file (bad magic {magic!r})")
    if version != _VERSION:
        raise WalError(f"{path}: unsupported WAL version {version} "
                       f"(expected {_VERSION})")


class WriteAheadLog:
    """Append-only, checksummed, crash-recoverable ingest log.

    Opening an existing log recovers it: intact records become
    :attr:`recovered` (for the service to replay) and a torn tail — a crash
    mid-append — is truncated away before the log accepts new appends.
    Thread-safe; appends, rotation, and stats share one lock because
    snapshot publishing (which rotates) runs on a background thread while
    the foreground keeps ingesting.
    """

    def __init__(self, path, *, fsync: str = "batch",
                 batch_interval: int = 64, fault_plan=None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_interval < 1:
            raise ValueError("batch_interval must be >= 1")
        self.path = os.fspath(path)
        self.fsync = fsync
        self.batch_interval = int(batch_interval)
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self._file: Optional[io.BufferedWriter] = None
        self._records = 0
        self._dropped = 0  # records rotated away over the log's lifetime
        self._appends_since_sync = 0
        self._syncs = 0
        self._rotations = 0
        self._truncated_bytes = 0
        self._last_fsync_record: Optional[int] = None
        self._broken = False

        self.recovered: List[Tuple[np.ndarray, np.ndarray]] = []
        try:
            buffer = _read_bytes(self.path)
        except FileNotFoundError:
            buffer = b""
        if buffer:
            _check_header(buffer, self.path)
            self.recovered, durable_end = _scan(buffer)
            self._truncated_bytes = len(buffer) - durable_end
            self._records = len(self.recovered)
            metrics().inc("wal.recovered_records", self._records)
            self._file = open(self.path, "r+b")
            if self._truncated_bytes:
                self._file.truncate(durable_end)
                self._file.flush()
                os.fsync(self._file.fileno())
            self._file.seek(0, os.SEEK_END)
        else:
            self._file = open(self.path, "wb")
            self._file.write(_HEADER.pack(_MAGIC, _VERSION))
            self._file.flush()
            if self.fsync != "off":
                os.fsync(self._file.fileno())
        self._offset = self._file.tell()

    # -- appends --------------------------------------------------------- #

    def append(self, users: Sequence[int], items: Sequence[int]) -> int:
        """Durably append one ingest batch; returns the record's mark.

        The returned value is the same rotation mark :meth:`mark` would
        report — the sequence number of the appended record.  The
        durability level is set by the fsync policy; on return under
        ``always`` the record has hit the disk, under ``batch`` it has hit
        the OS.  Raises :class:`WalTornWrite` when the attached fault plan
        schedules a torn write — after which the log refuses further
        appends, exactly like the crashed process it is simulating.
        """
        users = np.ascontiguousarray(users, dtype=np.int64).reshape(-1)
        items = np.ascontiguousarray(items, dtype=np.int64).reshape(-1)
        if users.shape != items.shape:
            raise ValueError("users and items must have matching lengths")
        record = _encode_record(users, items)
        append_start = time.perf_counter()
        with self._lock:
            self._ensure_open()
            action = (self.fault_plan.advance("wal.append")
                      if self.fault_plan is not None else None)
            if action is not None and action.kind == "torn_write":
                keep = action.param("keep_bytes")
                if keep is None:
                    fraction = float(action.param("keep_fraction", 0.5))
                    keep = int(len(record) * fraction)
                keep = max(0, min(int(keep), len(record) - 1))
                self._file.write(record[:keep])
                self._file.flush()
                os.fsync(self._file.fileno())
                self._broken = True
                raise WalTornWrite(
                    f"injected torn write: {keep}/{len(record)} bytes of "
                    f"record {self._records} persisted")
            self._file.write(record)
            self._file.flush()
            self._records += 1
            self._offset += len(record)
            self._appends_since_sync += 1
            if self.fsync == "always" or (
                    self.fsync == "batch"
                    and self._appends_since_sync >= self.batch_interval):
                self._fsync_locked()
            mark = self._dropped + self._records
        registry = metrics()
        registry.inc("wal.appends")
        registry.observe("wal.append_s", time.perf_counter() - append_start)
        return mark

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        with self._lock:
            self._ensure_open()
            self._file.flush()
            self._fsync_locked()

    def _fsync_locked(self) -> None:
        if self.fsync == "off":
            self._appends_since_sync = 0
            return
        fsync_start = time.perf_counter()
        os.fsync(self._file.fileno())
        metrics().observe("wal.fsync_s", time.perf_counter() - fsync_start)
        self._syncs += 1
        self._appends_since_sync = 0
        self._last_fsync_record = self._records

    def _ensure_open(self) -> None:
        if self._broken:
            raise WalError("WAL is unusable after a torn write "
                           "(simulated crash); reopen to recover")
        if self._file is None:
            raise WalError("WAL is closed")

    # -- rotation -------------------------------------------------------- #

    def mark(self) -> int:
        """Rotation mark covering every record appended so far.

        Marks are monotonic record sequence numbers (records ever appended,
        including already-rotated ones), never byte offsets — so a captured
        mark stays valid even if another thread rotates the log in between.
        """
        with self._lock:
            return self._dropped + self._records

    def rotate(self, up_to: int) -> int:
        """Drop every record at or below sequence mark ``up_to``.

        Called after a snapshot publish: the publish captured state that
        already includes all records up to the mark, so only the tail
        appended *after* the capture still needs the log.  A mark already
        covered by an earlier rotation is a no-op — overlapping publishes
        may rotate in either order and the later mark always subsumes the
        earlier one.  The rewrite goes through a fsynced temp file and
        ``os.replace`` so a crash mid-rotate leaves either the old log or
        the new one, never a hybrid.  Returns the number of bytes dropped.
        """
        with self._lock:
            self._ensure_open()
            end = self._dropped + self._records
            if up_to < 0 or up_to > end:
                raise ValueError(
                    f"rotate mark {up_to} outside log bounds [0, {end}]")
            drop = up_to - self._dropped
            if drop <= 0:
                return 0  # an earlier rotation already covered this mark
            rotate_start = time.perf_counter()
            self._file.flush()
            if self.fsync != "off":
                os.fsync(self._file.fileno())
            buffer = _read_bytes(self.path)
            boundary = _HEADER.size
            for _ in range(drop):
                payload_len, _ = _RECORD_PREFIX.unpack_from(buffer, boundary)
                boundary += _RECORD_PREFIX.size + payload_len
            tail = buffer[boundary:]
            tmp_path = self.path + ".rotate.tmp"
            with open(tmp_path, "wb") as writer:
                writer.write(_HEADER.pack(_MAGIC, _VERSION))
                writer.write(tail)
                writer.flush()
                os.fsync(writer.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self._offset = self._file.tell()
            self._records -= drop
            self._dropped += drop
            self._rotations += 1
            self._appends_since_sync = 0
            self._last_fsync_record = None
            registry = metrics()
            registry.inc("wal.rotations")
            registry.observe("wal.rotate_s",
                             time.perf_counter() - rotate_start)
            return boundary - _HEADER.size

    # -- lifecycle / stats ----------------------------------------------- #

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "fsync": self.fsync,
                "records": self._records,
                "bytes": self._offset,
                "rotations": self._rotations,
                "syncs": self._syncs,
                "recovered_records": len(self.recovered),
                "truncated_bytes": self._truncated_bytes,
                "last_fsync_record": self._last_fsync_record,
            }

    def close(self) -> None:
        with self._lock:
            if self._file is None:
                return
            if not self._broken:
                self._file.flush()
                if self.fsync != "off":
                    os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
