"""Item-partitioned sharded serving: fan out top-K across shards, merge exactly.

Past ~10M items a single frozen :class:`InferenceIndex` matrix no longer fits
one worker's memory or latency budget.  This module partitions the frozen
item-embedding matrix **item-wise** into ``S`` shards:

* :func:`partition_items` — the partition policies.  ``contiguous`` slices the
  id space into equal-width blocks (the last blocks may be short or empty when
  the catalogue does not divide evenly); ``strided`` deals item ``i`` to shard
  ``i % S`` (balanced shard sizes under any catalogue ordering).
* :class:`ItemShard` — one shard: its global item ids, its slice of the item
  embeddings (exactly what a remote worker would hold — a zero-copy view for
  contiguous blocks, a gathered copy for strided ones), and a
  **local** :class:`UserItemIndex` exclusion built by slicing the parent
  exclusion's flat (user, item) pairs down to this shard's items and remapping
  them to local columns — so per-shard train masking stays one flat-index
  assignment, never a per-user Python loop.
* :class:`ShardedInferenceIndex` — the serving facade.  ``top_k`` gathers the
  user block once, fans ``local_top_k`` out across shards through an executor
  seam, concatenates the per-shard ``(global ids, scores)`` candidate lists
  (``S·k`` candidates per user) and re-ranks them exactly — mathematically
  identical to unsharded top-K because every item's score appears in exactly
  one shard's candidate list whenever it could enter the global top-K.
* :class:`SerialExecutor` / :class:`ThreadedExecutor` — the fan-out seam.
  Shard scoring is one BLAS matmul per shard, which releases the GIL, so the
  thread-pool executor gives real parallelism without processes; the serial
  executor is the dependency-free default and the reference for tests.

Correctness of the merge: each shard returns its local top ``min(k, n_s)``
(an empty candidate list for empty shards).  Any item in the global top-k is
in its own shard's top-k (the shard ranking is a sub-ranking of the global
one), so re-ranking the union of per-shard candidates by score reproduces the
unsharded result bit-for-bit wherever scores are distinct.  On exact ties the
merge is *more* deterministic than the unsharded path: it always prefers the
ascending global item id, whereas ``argpartition`` order is arbitrary — the
only place this shows is the meaningless ``-inf`` masked tail when ``k``
approaches the catalogue size.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .index import InferenceIndex, UserItemIndex, top_k_indices
from .observability import metrics, span


def _timed_shard_task(shard_id: int, task):
    """Run one shard's closure, observing its wall time per shard."""
    start = time.perf_counter()
    result = task()
    metrics().observe(f"sharding.shard.{shard_id}.task_s",
                      time.perf_counter() - start)
    return result

__all__ = [
    "partition_items",
    "ItemShard",
    "ShardedInferenceIndex",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
]

PARTITION_POLICIES = ("contiguous", "strided")


def partition_items(num_items: int, num_shards: int,
                    policy: str = "contiguous") -> List[np.ndarray]:
    """Partition ``[0, num_items)`` into ``num_shards`` sorted id arrays.

    ``contiguous`` uses equal ceil-width blocks, so a non-divisible catalogue
    leaves the trailing shards short or empty (e.g. 5 items over 7 shards
    yields five singleton shards and two empty ones); ``strided`` assigns item
    ``i`` to shard ``i % num_shards``.  Every item lands in exactly one shard.
    """
    num_items = int(num_items)
    num_shards = int(num_shards)
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    ids = np.arange(num_items, dtype=np.int64)
    if policy == "contiguous":
        width = -(-num_items // num_shards) if num_items else 0
        return [ids[s * width:(s + 1) * width] for s in range(num_shards)]
    if policy == "strided":
        return [ids[s::num_shards] for s in range(num_shards)]
    raise ValueError(f"unknown partition policy {policy!r}; "
                     f"options: {PARTITION_POLICIES}")


class _ExecutorBase:
    """Shared executor plumbing: context management + worker validation.

    Every executor is context-manageable (``with ThreadedExecutor() as ex:``)
    and idempotently closeable, so pools are released deterministically
    instead of lingering until interpreter shutdown.
    """

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def close(self) -> None:
        """Release any worker pool (idempotent; a no-op by default)."""

    @staticmethod
    def _validate_max_workers(max_workers: Optional[int]) -> Optional[int]:
        if max_workers is None:
            return None
        max_workers = int(max_workers)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        return max_workers


class SerialExecutor(_ExecutorBase):
    """Run shard tasks inline, in shard order (the dependency-free default)."""

    parallel = False

    def run(self, tasks: Sequence) -> list:
        return [task() for task in tasks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor(_ExecutorBase):
    """Fan shard tasks out over a lazily created thread pool.

    Shard scoring is NumPy/BLAS-bound and releases the GIL, so threads give
    genuine parallelism here without pickling embeddings across processes.
    Results always come back in task (= shard) order, like the serial
    executor, so the merge is executor-independent.
    """

    parallel = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = self._validate_max_workers(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None

    def run(self, tasks: Sequence) -> list:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return f"ThreadedExecutor(max_workers={self.max_workers})"


class ProcessExecutor(_ExecutorBase):
    """Fan shard tasks out to worker *processes* over an mmap'd snapshot.

    Threads share the in-process matrices; processes cannot — so instead of
    pickling embedding slices per task, every worker opens the shard's
    sections of one on-disk snapshot (:mod:`repro.engine.snapshot`) by
    offset, zero-copy, and caches them for the life of the process.  A task
    ships only ``(snapshot_path, shard geometry, shard_id, user batch)`` and
    returns one small per-shard candidate array, so steady-state IPC is
    O(batch x k) — never O(items x dim).

    The executor is bound to one snapshot + shard geometry at construction;
    :class:`ShardedInferenceIndex` / :class:`ShardedCandidateIndex` built
    over the *same* snapshot detect ``ships_payloads`` and describe their
    shard tasks instead of closing over matrices, keeping the certified
    merge (and hence bit-exactness) in the router.  Mismatched geometry is
    rejected at bind time.  Router state that has diverged from the frozen
    file — a rebound (grown) user matrix, exclusion pairs ingested into an
    online overlay — rides along with each task
    (:meth:`ShardedInferenceIndex._payload_state`), so online serving over a
    process executor stays bit-identical to the in-process path.

    The same snapshot file is the worker's entire world, which is exactly
    the multi-host shape: replace the process pool with a socket to a shard
    server holding the same file and nothing else changes.
    """

    parallel = True
    ships_payloads = True

    def __init__(self, snapshot_path, num_shards: int, *,
                 policy: str = "contiguous",
                 max_workers: Optional[int] = None) -> None:
        self.snapshot_path = str(snapshot_path)
        self.num_shards = int(num_shards)
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if policy not in PARTITION_POLICIES:
            raise ValueError(f"unknown partition policy {policy!r}; "
                             f"options: {PARTITION_POLICIES}")
        self.policy = policy
        self.max_workers = self._validate_max_workers(max_workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    def bind_check(self, num_shards: int, policy: str) -> None:
        """Reject binding to an index whose geometry the workers don't hold."""
        if num_shards != self.num_shards or policy != self.policy:
            raise ValueError(
                f"ProcessExecutor is bound to {self.num_shards} "
                f"{self.policy!r} shards of {self.snapshot_path}; cannot "
                f"serve {num_shards} {policy!r} shards")

    def run(self, tasks: Sequence) -> list:
        raise TypeError(
            "ProcessExecutor ships picklable shard payloads, not in-process "
            "closures; use it through a ShardedInferenceIndex built over the "
            "same snapshot")

    def fan_out(self, kind: str, *request) -> list:
        """Run one payload per shard; results come back in shard order."""
        payloads = [
            (kind, self.snapshot_path, self.num_shards, self.policy, shard_id)
            + request
            for shard_id in range(self.num_shards)
        ]
        from .snapshot import _execute_shard_payload

        if self.num_shards == 1:
            # One shard gains nothing from IPC; run it inline (the worker
            # cache makes repeated calls cheap).
            return [_execute_shard_payload(payloads[0])]
        if self._pool is None:
            workers = self.max_workers or min(self.num_shards,
                                              os.cpu_count() or 1)
            self._pool = ProcessPoolExecutor(max_workers=workers)
        futures = [self._pool.submit(_execute_shard_payload, payload)
                   for payload in payloads]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return (f"ProcessExecutor(snapshot={self.snapshot_path!r}, "
                f"shards={self.num_shards}, policy={self.policy!r}, "
                f"max_workers={self.max_workers})")


class ItemShard:
    """One item partition: embedding slice + local exclusion index.

    Parameters
    ----------
    shard_id:
        Position of this shard in the fan-out (used only for repr/debugging).
    item_ids:
        Sorted global item ids owned by this shard (may be empty).
    item_embeddings:
        The ``(len(item_ids), dim)`` slice of the frozen item matrix — in a
        real deployment the only piece of the catalogue resident on the
        shard's worker (in-process it may alias the frozen matrix as a view;
        :class:`InferenceIndex` already froze it read-only-by-convention).
    exclusion:
        Parent ``user -> train items`` index over the *global* id space; the
        shard slices it down to its own items at construction time.
    """

    def __init__(self, shard_id: int, item_ids: np.ndarray,
                 item_embeddings: np.ndarray,
                 exclusion: Optional[UserItemIndex] = None, *,
                 local_exclusion: Optional[UserItemIndex] = None) -> None:
        self.shard_id = int(shard_id)
        self.item_ids = np.asarray(item_ids, dtype=np.int64)
        self.item_embeddings = item_embeddings
        if self.item_embeddings.shape[0] != self.item_ids.size:
            raise ValueError("embedding slice rows must match item_ids")
        if local_exclusion is not None:
            # Pre-sliced by the caller (ShardedInferenceIndex builds all S
            # local indexes in one pass over the parent CSR).
            self.exclusion = local_exclusion
        else:
            self.exclusion = (self._slice_exclusion(exclusion)
                              if exclusion is not None else None)
        self._item_norms: Optional[np.ndarray] = None

    @property
    def item_norms(self) -> np.ndarray:
        """Cached L2 norms of this shard's embedding slice (float64, frozen).

        Mirrors :attr:`InferenceIndex.item_norms` for the sharded world: the
        two-stage candidate pipeline's norm-cap bound is computed per shard
        against these.
        """
        if self._item_norms is None:
            norms = np.linalg.norm(
                self.item_embeddings.astype(np.float64, copy=False), axis=1)
            norms.setflags(write=False)
            self._item_norms = norms
        return self._item_norms

    @property
    def num_local_items(self) -> int:
        return int(self.item_ids.size)

    # ------------------------------------------------------------------ #
    def _slice_exclusion(self, parent: UserItemIndex) -> UserItemIndex:
        """Project the parent exclusion onto this shard's local columns.

        One vectorised pass over the parent CSR arrays: expand the user of
        every (user, item) pair from the indptr, keep the pairs whose item
        this shard owns (a ``searchsorted`` against the sorted ``item_ids``),
        and remap kept items to local column ids — the searchsorted positions
        themselves.  No per-user or per-pair Python loops.
        """
        sel, local = self.locate(parent.indices)
        users = np.repeat(np.arange(parent.num_users, dtype=np.int64),
                          np.diff(parent.indptr))
        return UserItemIndex(parent.num_users, max(self.num_local_items, 1),
                             users[sel], local[sel])

    def locate(self, items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(owned mask, local column ids) of global ``items`` in this shard.

        Positions where the mask is ``False`` carry meaningless local ids;
        callers must filter by the mask.  Policy-agnostic: works for any
        sorted partition, not just the two built-in policies.
        """
        items = np.asarray(items, dtype=np.int64)
        if self.num_local_items == 0:
            return (np.zeros(items.shape, dtype=bool),
                    np.zeros(items.shape, dtype=np.int64))
        local = np.searchsorted(self.item_ids, items)
        clipped = np.minimum(local, self.num_local_items - 1)
        return self.item_ids[clipped] == items, clipped

    # ------------------------------------------------------------------ #
    def local_scores(self, user_block: np.ndarray, users: np.ndarray,
                     exclude_train: bool,
                     extra_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
                     ) -> np.ndarray:
        """Dense ``(len(users), num_local_items)`` block, train items masked.

        ``extra_pairs`` is an optional ``(batch row, local column)`` pair set
        masked on top of the shard's own exclusion — how a payload worker
        applies exclusion pairs the frozen snapshot does not hold (an online
        overlay's ingested delta).
        """
        scores = user_block @ self.item_embeddings.T
        if exclude_train:
            if self.exclusion is not None:
                self.exclusion.mask(scores, users)
            if extra_pairs is not None:
                rows, cols = extra_pairs
                scores[rows, cols] = -np.inf
        return scores

    def local_top_k(self, user_block: np.ndarray, users: np.ndarray, k: int,
                    exclude_train: bool,
                    extra_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-user top ``min(k, num_local_items)`` candidates of this shard.

        Returns ``(global item ids, scores)``, both ``(len(users), k_local)``
        and ordered best-first.  An empty shard contributes zero-width
        candidate lists instead of padding — the merge must never see
        fabricated items.
        """
        if self.num_local_items == 0:
            return (np.empty((users.size, 0), dtype=np.int64),
                    np.empty((users.size, 0), dtype=user_block.dtype))
        scores = self.local_scores(user_block, users, exclude_train,
                                   extra_pairs=extra_pairs)
        local = top_k_indices(scores, min(int(k), self.num_local_items))
        return (self.item_ids[local],
                np.take_along_axis(scores, local, axis=1))

    def score_pairs_local(self, user_block: np.ndarray,
                          local_items: np.ndarray) -> np.ndarray:
        """Scores of aligned (user row, local item) pairs."""
        return np.einsum("ij,ij->i", user_block,
                         self.item_embeddings[local_items])

    def __repr__(self) -> str:
        return (f"ItemShard(id={self.shard_id}, items={self.num_local_items}, "
                f"span=[{self.item_ids[0] if self.num_local_items else '-'}"
                f"..{self.item_ids[-1] if self.num_local_items else '-'}])")


class ShardedInferenceIndex:
    """Item-sharded drop-in for :class:`InferenceIndex` top-K serving.

    ``top_k`` / ``score_pairs`` / ``recommend`` match the unsharded index
    bit-for-bit on distinct scores: candidates are generated per shard and
    re-ranked exactly, never approximated.  Only factorised snapshots can be
    sharded — the whole point is splitting the item-embedding matrix.
    """

    def __init__(self, num_users: int, num_items: int,
                 user_embeddings: np.ndarray, shards: Sequence[ItemShard], *,
                 exclusion: Optional[UserItemIndex] = None,
                 executor=None, policy: str = "contiguous") -> None:
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.user_embeddings = user_embeddings
        self.dtype = user_embeddings.dtype
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("need at least one shard")
        covered = sum(shard.num_local_items for shard in self.shards)
        if covered != self.num_items:
            raise ValueError(
                f"shards cover {covered} items, catalogue has {self.num_items}")
        self.exclusion = exclusion
        self.executor = executor if executor is not None else SerialExecutor()
        self.policy = policy
        if getattr(self.executor, "ships_payloads", False):
            # Payload executors (multi-process fan-out) hold their own copy
            # of the shard geometry; a mismatch would merge candidates from
            # a different partition.
            self.executor.bind_check(len(self.shards), policy)
        # Bind-time references to the state payload workers rebuild from the
        # snapshot file.  Later router-side swaps (a rebound user matrix for
        # grown users, an online exclusion overlay) are detected against
        # these and shipped alongside every payload task.
        self._baseline_users = self.user_embeddings
        self._baseline_exclusion = self.exclusion

    # ------------------------------------------------------------------ #
    @classmethod
    def from_index(cls, index: InferenceIndex, num_shards: int, *,
                   policy: str = "contiguous",
                   executor=None) -> "ShardedInferenceIndex":
        """Partition a frozen :class:`InferenceIndex` item-wise.

        Raises ``ValueError`` for non-factorised indexes (``score_users``
        fallbacks have no item matrix to split).
        """
        if not index.is_factorized:
            raise ValueError(
                "sharding requires a factorised InferenceIndex "
                "(a model exposing user_item_embeddings); "
                "scorer-fallback snapshots cannot be partitioned item-wise")
        parts = partition_items(index.num_items, num_shards, policy)
        locals_ = cls._slice_exclusions(index.exclusion, parts, policy)
        shards = []
        for shard_id, part in enumerate(parts):
            if policy == "contiguous":
                # Contiguous blocks are basic slices — zero-copy views of the
                # frozen matrix, so sharding in-process does not double the
                # item-embedding memory (strided partitions must gather).
                start = int(part[0]) if part.size else 0
                block = index.item_embeddings[start:start + part.size]
            else:
                block = index.item_embeddings[part]
            shards.append(ItemShard(shard_id, part, block,
                                    local_exclusion=locals_[shard_id]))
        return cls(index.num_users, index.num_items, index.user_embeddings,
                   shards, exclusion=index.exclusion, executor=executor,
                   policy=policy)

    @staticmethod
    def _slice_exclusions(parent: Optional[UserItemIndex],
                          parts: List[np.ndarray],
                          policy: str) -> List[Optional[UserItemIndex]]:
        """All S local exclusion indexes in ONE pass over the parent CSR.

        Each train pair's owning shard and local column come from closed-form
        arithmetic on the item id (``// width`` for contiguous, ``% S`` for
        strided), so the whole split is O(nnz) plus one stable sort by shard
        — refresh()-time cost stays flat in the shard count, unlike slicing
        the parent once per shard.
        """
        num_shards = len(parts)
        if parent is None:
            return [None] * num_shards
        users = np.repeat(np.arange(parent.num_users, dtype=np.int64),
                          np.diff(parent.indptr))
        items = parent.indices
        if policy == "contiguous":
            width = parts[0].size if num_shards else 0  # ceil-width blocks
            owner = items // width if width else np.zeros_like(items)
            local = items - owner * width
        else:  # strided
            owner = items % num_shards
            local = items // num_shards
        order = np.argsort(owner, kind="stable")
        offsets = np.zeros(num_shards + 1, dtype=np.int64)
        np.cumsum(np.bincount(owner, minlength=num_shards), out=offsets[1:])
        result = []
        for shard_id, part in enumerate(parts):
            chunk = order[offsets[shard_id]:offsets[shard_id + 1]]
            result.append(UserItemIndex(parent.num_users, max(part.size, 1),
                                        users[chunk], local[chunk]))
        return result

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def is_factorized(self) -> bool:
        return True

    def rebind_users(self, user_embeddings: np.ndarray) -> None:
        """Swap in a replacement (typically grown) user-embedding matrix.

        Mirrors :meth:`InferenceIndex.rebind_users` for the sharded facade:
        shards only hold item slices, so growing the user side never touches
        them.  The matrix may only grow.
        """
        user_embeddings = np.asarray(user_embeddings)
        if user_embeddings.ndim != 2 or \
                user_embeddings.shape[1] != self.user_embeddings.shape[1]:
            raise ValueError("replacement user matrix must keep the embedding dim")
        if user_embeddings.shape[0] < self.num_users:
            raise ValueError("replacement user matrix cannot drop existing users")
        self.user_embeddings = user_embeddings
        self.num_users = int(user_embeddings.shape[0])

    # ------------------------------------------------------------------ #
    def _payload_state(self, users: np.ndarray, exclude_train: bool) -> tuple:
        """Router-vs-snapshot divergence to ship with payload tasks.

        Payload workers rebuild their shard state from the frozen snapshot
        file, so anything the router changed since binding must ride along
        or the workers silently serve stale state: a rebound user matrix
        (online serving appends fallback rows for grown user ids the
        snapshot has no row for — workers would raise ``IndexError``) and
        exclusion pairs the file does not hold (an overlay's ingested
        delta, or a compacted base CSR superseding the stored one —
        workers would recommend freshly consumed items back).

        Returns ``(user_block, extra_pairs)``: the gathered user rows when
        the router's matrix is no longer the bind-time one (else ``None``),
        and the ``(batch row, global item)`` exclusion pairs missing from
        the snapshot (else ``None``).
        """
        user_block = None
        if self.user_embeddings is not self._baseline_users:
            user_block = np.ascontiguousarray(self.user_embeddings[users])
        extra = self._extra_exclusion_pairs(users) if exclude_train else None
        return user_block, extra

    def _extra_exclusion_pairs(self, users: np.ndarray) -> Optional[tuple]:
        """The batch's exclusion pairs absent from the bind-time exclusion."""
        current = self.exclusion
        baseline = self._baseline_exclusion
        if current is None or current is baseline:
            return None
        base = getattr(current, "base", None)
        delta = getattr(current, "delta", None)
        if base is baseline and delta is not None:
            # An online overlay sitting directly on the snapshot's CSR: the
            # delta IS the divergence (it is kept disjoint from the base).
            if not delta.nnz:
                return None
            rows, items = delta.pairs_for(users)
        else:
            # General case — e.g. a compacted overlay whose merged base
            # superseded the snapshot CSR: diff the users' accumulated pairs
            # against the bind-time baseline.
            rows, items = current.flat_pairs(users)
            if baseline is not None and rows.size:
                pair_users = users[rows]
                novel = np.ones(rows.size, dtype=bool)
                known = pair_users < baseline.num_users
                if known.any():
                    novel[known] = ~baseline.contains(pair_users[known],
                                                      items[known])
                rows, items = rows[novel], items[novel]
        if not rows.size:
            return None
        return rows, items

    def top_k(self, users: Sequence[int], k: int,
              exclude_train: bool = True) -> np.ndarray:
        """Top-``k`` item ids per user, best first — fan out, merge exactly.

        The user embedding block is gathered once and shared by every shard
        task; each shard contributes ``min(k, items_in_shard)`` candidates,
        so the merged pool always holds at least ``min(k, num_items)``
        genuine items and the result width matches the unsharded path.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d array of user ids")
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        if exclude_train and self.exclusion is None:
            raise ValueError("no exclusion index attached to this "
                             "ShardedInferenceIndex")
        registry = metrics()
        with span("sharding.fan_out"), registry.timer("sharding.fan_out_s"):
            if getattr(self.executor, "ships_payloads", False):
                # Multi-process fan-out: ship (users, k) descriptions; each
                # worker gathers the user block from its own mapped snapshot.
                # State the snapshot file does not hold (grown user rows,
                # ingested exclusion pairs) is shipped alongside.
                user_block, extra = self._payload_state(users, exclude_train)
                results = self.executor.fan_out("top_k", users, int(k),
                                                bool(exclude_train),
                                                user_block, extra)
            else:
                user_block = self.user_embeddings[users]
                tasks = [
                    (lambda shard=shard: _timed_shard_task(
                        shard.shard_id,
                        lambda: shard.local_top_k(user_block, users, k,
                                                  exclude_train)))
                    for shard in self.shards
                ]
                results = self.executor.run(tasks)
        with span("sharding.merge"), registry.timer("sharding.merge_s"):
            candidate_ids = np.concatenate([ids for ids, _ in results], axis=1)
            candidate_scores = np.concatenate(
                [scores for _, scores in results], axis=1)
            return self._merge(candidate_ids, candidate_scores,
                               min(k, self.num_items))

    @staticmethod
    def _merge(candidate_ids: np.ndarray, candidate_scores: np.ndarray,
               width: int) -> np.ndarray:
        """Exact re-rank of the pooled S·k candidates per user.

        One ``lexsort`` per batch: primary key descending score, secondary
        key ascending global item id (the last key of ``lexsort`` is the
        primary one).  The pooled candidates are a superset of the true
        top-``width`` set, so taking the first ``width`` columns reproduces
        the unsharded ranking.
        """
        order = np.lexsort((candidate_ids, -candidate_scores), axis=-1)
        return np.take_along_axis(candidate_ids, order[:, :width], axis=1)

    def score_pairs(self, users: Sequence[int],
                    items: Sequence[int]) -> np.ndarray:
        """Scores of aligned (user, item) pairs, routed to each item's shard."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must be aligned 1-d arrays")
        out = np.empty(users.shape, dtype=self.dtype)
        found = np.zeros(users.shape, dtype=bool)
        for shard in self.shards:
            sel, local = shard.locate(items)
            if sel.any():
                out[sel] = shard.score_pairs_local(
                    self.user_embeddings[users[sel]], local[sel])
                found |= sel
        if not found.all():
            raise IndexError("item id out of range for this sharded index")
        return out

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Single-user convenience wrapper over :meth:`top_k`."""
        return [int(item) for item in self.top_k([int(user)], k,
                                                 exclude_train=exclude_train)[0]]

    def close(self) -> None:
        """Release the executor's worker pool (if it holds one)."""
        self.executor.close()

    def __repr__(self) -> str:
        sizes = [shard.num_local_items for shard in self.shards]
        return (f"ShardedInferenceIndex(users={self.num_users}, "
                f"items={self.num_items}, shards={self.num_shards}, "
                f"policy={self.policy!r}, sizes={sizes}, "
                f"executor={self.executor!r})")
