"""Serving front-end: batched top-K with an LRU result cache.

:class:`RecommendationService` is what sits between a trained model and
anything that wants recommendations — the CLI, the examples,
``Recommender.recommend`` — so the expensive pieces (final embedding
snapshot, exclusion index, top-K partition) are built once and reused across
requests.  Repeated single-user requests hit an LRU cache keyed by
``(user, k, exclude_train)``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from .index import InferenceIndex, UserItemIndex

__all__ = ["RecommendationService"]


class RecommendationService:
    """Batched recommendation serving over a frozen :class:`InferenceIndex`.

    Parameters
    ----------
    model:
        Any scorer accepted by :meth:`InferenceIndex.from_model`.  Ignored
        when a prebuilt ``index`` is given.
    split:
        Split providing the exclusion index; defaults to ``model.split``.
    dtype:
        Serving dtype (``float32`` halves the embedding snapshot's memory).
    batch_size:
        Users per scoring batch in :meth:`top_k` — bounds the peak size of
        the dense ``(batch, num_items)`` score block.
    cache_size:
        Capacity of the per-user LRU result cache (0 disables caching).
    """

    def __init__(self, model=None, split=None, *,
                 index: Optional[InferenceIndex] = None,
                 dtype=np.float64, batch_size: int = 1024,
                 cache_size: int = 4096) -> None:
        if index is None:
            if model is None:
                raise ValueError("provide a model or a prebuilt InferenceIndex")
            index = InferenceIndex.from_model(model, split, dtype=dtype)
        self.index = index
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self._model = model
        self._split = split
        self._dtype = dtype
        self._cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.index.num_users

    @property
    def num_items(self) -> int:
        return self.index.num_items

    @property
    def exclusion(self) -> Optional[UserItemIndex]:
        return self.index.exclusion

    def refresh(self, model=None) -> "RecommendationService":
        """Re-freeze the model's embeddings (after more training) and clear the cache."""
        model = model if model is not None else self._model
        if model is None:
            raise ValueError("no model to refresh from")
        self._model = model
        self.index = InferenceIndex.from_model(
            model, self._split, dtype=self._dtype, exclusion=self.index.exclusion)
        self.clear_cache()
        return self

    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    def top_k(self, users: Sequence[int], k: int,
              exclude_train: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(len(users), k)``.

        Scoring runs in ``batch_size`` blocks so arbitrarily large user
        batches never materialise more than one dense score block at a time.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d array of user ids")
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        width = min(k, self.num_items)
        out = np.empty((users.size, width), dtype=np.int64)
        for start in range(0, users.size, self.batch_size):
            block = users[start:start + self.batch_size]
            out[start:start + block.size] = self.index.top_k(
                block, k, exclude_train=exclude_train)
        return out

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Cached single-user top-``k`` (the interactive / online entry point)."""
        key = (int(user), int(k), bool(exclude_train))
        if self.cache_size > 0:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return list(cached)
        self.cache_misses += 1
        items = [int(item) for item in
                 self.index.top_k([int(user)], k, exclude_train=exclude_train)[0]]
        if self.cache_size > 0:
            self._cache[key] = tuple(items)
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return items

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Scores of aligned (user, item) pairs — O(batch · dim) when factorised."""
        return self.index.score_pairs(users, items)

    def __repr__(self) -> str:
        return (f"RecommendationService(index={self.index!r}, "
                f"batch_size={self.batch_size}, cache_size={self.cache_size}, "
                f"hits={self.cache_hits}, misses={self.cache_misses})")
