"""Serving front-end: batched top-K with an LRU result cache.

:class:`RecommendationService` is what sits between a trained model and
anything that wants recommendations — the CLI, the examples,
``Recommender.recommend`` — so the expensive pieces (final embedding
snapshot, exclusion index, top-K partition) are built once and reused across
requests.  Repeated single-user requests hit an LRU cache keyed by
``(user, k, exclude_train)``.

With ``num_shards > 1`` the service routes every request through a
:class:`repro.engine.sharding.ShardedInferenceIndex` — the item catalogue is
partitioned item-wise, each shard ranks its own candidates, and the exact
merge reproduces the unsharded ranking.  ``parallel=True`` swaps the serial
fan-out for a thread pool (shard scoring is BLAS-bound and releases the GIL).

With ``candidate_mode`` set (``"int8"`` or ``"float32"``) top-K requests run
the two-stage pipeline of :mod:`repro.engine.candidates`: a quantised
candidate stage selects ``candidate_factor * k`` items per user, an exact
stage rescores and re-ranks them, and every batch carries a certificate
saying whether the result provably equals exhaustive search.  The exact path
stays the default (``candidate_mode=None``) and the correctness oracle;
``certificate_stats`` aggregates how often served batches were certified.

With ``snapshot=…`` the frozen state is not rebuilt at all: the service
adopts the memory-mapped sections of a :mod:`repro.engine.snapshot` artifact
(embeddings, norms, exclusion CSR, quantised blocks) zero-copy, so opening a
service is O(open) regardless of catalogue size, and ``executor="process"``
fans sharded requests out to worker processes that re-open the same file
instead of receiving pickled matrices.  Serving from a snapshot is
bit-identical to serving from the index it was saved from.

With ``executor="remote"`` (plus ``shard_addresses=["host:port", …]``) the
same payloads cross machine boundaries instead: each address is a
:class:`repro.engine.remote.ShardServer` holding a byte-identical copy of
the snapshot, pinned by a content-fingerprint handshake, and the router
keeps the exact merge — remote serving is bit-identical and fails closed
(a :class:`repro.engine.remote.RemoteShardError`, never a partial merge).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .candidates import CandidateIndex, ShardedCandidateIndex
from .index import InferenceIndex, UserItemIndex
from .observability import metrics, traced
from .sharding import (ProcessExecutor, SerialExecutor, ShardedInferenceIndex,
                       ThreadedExecutor)
from .snapshot import ServingSnapshot, load_snapshot

__all__ = ["EXECUTOR_NAMES", "RecommendationService"]

#: Executor spellings accepted by ``RecommendationService(executor=…)`` and
#: the CLI's ``--executor`` flag.
EXECUTOR_NAMES = ("serial", "threads", "process", "remote")


class RecommendationService:
    """Batched recommendation serving over a frozen :class:`InferenceIndex`.

    Parameters
    ----------
    model:
        Any scorer accepted by :meth:`InferenceIndex.from_model`.  Ignored
        when a prebuilt ``index`` or a ``snapshot`` is given.
    split:
        Split providing the exclusion index; defaults to ``model.split``.
    snapshot:
        A :class:`repro.engine.snapshot.ServingSnapshot` (or a path to one)
        to serve from instead of freezing a model: embeddings, item norms,
        exclusion CSR and quantised candidate blocks are adopted zero-copy
        from the (memory-mapped) snapshot sections, so construction is
        O(open) instead of O(freeze).  The snapshot's dtype wins over
        ``dtype``.  Mutually exclusive with ``index``.
    dtype:
        Serving dtype (``float32`` halves the embedding snapshot's memory).
    batch_size:
        Users per scoring batch in :meth:`top_k` — bounds the peak size of
        the dense ``(batch, num_items)`` score block.
    cache_size:
        Capacity of the per-user LRU result cache (0 disables caching).
    num_shards:
        Partition the item catalogue into this many shards and serve through
        the fan-out/merge path (1 keeps the single-matrix path).
    shard_policy:
        ``"contiguous"`` (default) or ``"strided"`` item partitioning.
    parallel:
        Fan shard requests out over a thread pool instead of serially.
        Only meaningful with ``num_shards > 1``.
    executor:
        Explicit fan-out executor (overrides ``parallel``): any object with
        ``run(tasks) -> results`` and ``close()``, or one of the
        ``EXECUTOR_NAMES`` strings — ``"serial"``, ``"threads"``,
        ``"process"`` (multi-process fan-out; requires ``snapshot=…`` because
        worker processes re-open the snapshot file instead of receiving
        pickled matrices) or ``"remote"`` (socket fan-out to
        :class:`repro.engine.remote.ShardServer` endpoints; requires
        ``snapshot=…`` and ``shard_addresses``).  With ``num_shards == 1``
        and no remote addresses a string executor is never constructed at
        all — single-shard serving stays on the single-matrix path and never
        crosses the fan-out seam.  The service owns the executor it resolves
        from a string or builds from ``parallel`` and shuts it down in
        :meth:`close` / ``with`` exit.
    shard_addresses:
        One replica set per shard *in shard order*, for
        ``executor="remote"`` (implied when given): ``"host:port"`` for a
        single replica, ``"h1:p1,h2:p2"`` or ``["h1:p1", "h2:p2"]`` for
        redundant replicas the executor fails over across.  ``num_shards``
        left at 1 is inferred as ``len(shard_addresses)``.
    candidate_mode:
        ``None`` (default) serves exact top-K.  ``"int8"`` / ``"float32"``
        switch top-K to the two-stage quantised-candidates + exact-rescoring
        pipeline with per-batch exactness certificates.
    candidate_factor:
        Candidates kept per user in stage 1, as a multiple of ``k``
        (``candidate_factor * k``); must be >= 1.
    candidate_escalation:
        With ``candidate_mode`` set, re-serve the *uncertified* users of each
        batch with a doubled candidate factor (doubling again up to
        ``max_candidate_factor``), then fall back to the exact path for
        whoever is still uncertified — every served list is then provably
        identical to exhaustive search.  Escalation counters land in
        :attr:`certificate_stats`.
    max_candidate_factor:
        Upper bound of the escalation doubling (>= ``candidate_factor``).
    """

    def __init__(self, model=None, split=None, *,
                 index: Optional[InferenceIndex] = None,
                 snapshot=None,
                 dtype=np.float64, batch_size: int = 1024,
                 cache_size: int = 4096, num_shards: int = 1,
                 shard_policy: str = "contiguous", parallel: bool = False,
                 executor=None, shard_addresses=None,
                 candidate_mode: Optional[str] = None,
                 candidate_factor: int = 4,
                 candidate_escalation: bool = False,
                 max_candidate_factor: int = 32) -> None:
        self._snapshot: Optional[ServingSnapshot] = None
        if snapshot is not None:
            if index is not None:
                raise ValueError("provide either snapshot or index, not both")
            if not isinstance(snapshot, ServingSnapshot):
                snapshot = load_snapshot(snapshot)
            self._snapshot = snapshot
            index = snapshot.inference_index()
            dtype = snapshot.dtype
        if index is None:
            if model is None:
                raise ValueError("provide a model, a prebuilt InferenceIndex "
                                 "or a serving snapshot")
            index = InferenceIndex.from_model(model, split, dtype=dtype)
        self.index = index
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.num_shards = int(num_shards)
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if parallel and self.num_shards <= 1:
            raise ValueError("parallel=True fans out shard scoring and "
                             "requires num_shards > 1")
        self.shard_policy = shard_policy
        self.candidate_mode = candidate_mode
        self.candidate_factor = int(candidate_factor)
        self.candidate_escalation = bool(candidate_escalation)
        self.max_candidate_factor = int(max_candidate_factor)
        if self.candidate_escalation and candidate_mode is None:
            raise ValueError("candidate_escalation re-serves uncertified "
                             "users and requires a candidate_mode")
        if (candidate_mode is not None
                and self.max_candidate_factor < self.candidate_factor):
            raise ValueError("max_candidate_factor must be >= candidate_factor")
        # Each entry is one shard's replica set: a "host:port" string (commas
        # separate replicas), an (host, port) pair, or an explicit list of
        # replicas.  List-shaped entries pass through untouched so the
        # remote executor can parse them; everything else normalises to str.
        self.shard_addresses = None if shard_addresses is None else [
            entry if isinstance(entry, (tuple, list)) else str(entry)
            for entry in shard_addresses]
        if self.shard_addresses is not None:
            if not self.shard_addresses:
                raise ValueError("shard_addresses must name at least one "
                                 "shard server")
            if executor is None:
                executor = "remote"
            elif executor != "remote":
                raise ValueError("shard_addresses fan requests out over "
                                 "sockets and only applies to "
                                 "executor='remote'")
        if isinstance(executor, str):
            if executor not in EXECUTOR_NAMES:
                raise ValueError(f"unknown executor {executor!r}; "
                                 f"options: {EXECUTOR_NAMES}")
            if executor == "process" and self._snapshot is None:
                raise ValueError(
                    "executor='process' ships (snapshot path, shard id, user "
                    "batch) payloads to worker processes and requires "
                    "snapshot=…")
            if executor == "remote":
                executor = self._resolve_remote_executor()
            elif self.num_shards == 1:
                # Single-shard serving never crosses the fan-out seam, so
                # there is no pool to build — requests go straight to the
                # single-matrix path below.
                executor = None
            else:
                executor = self._resolve_executor(executor)
        if getattr(executor, "is_remote", False) and self.num_shards == 1:
            # One address per shard: a remote geometry is authoritative even
            # when num_shards was left at its default.
            self.num_shards = int(executor.num_shards)
        self._executor = executor if executor is not None else (
            ThreadedExecutor() if parallel else SerialExecutor())
        self._model = model
        self._split = split
        self._dtype = dtype
        self._sharded: Optional[ShardedInferenceIndex] = None
        if self.num_shards > 1 or getattr(self._executor, "is_remote", False):
            # A remote executor always serves through the fan-out seam —
            # even a single shard lives behind its socket.
            self._sharded = ShardedInferenceIndex.from_index(
                index, self.num_shards, policy=shard_policy,
                executor=self._executor)
        self._candidates = self._build_candidates()
        # The LRU cache is shared mutable state: the async front-end's worker
        # thread, a user's own threads and the event loop may all touch it, so
        # every cache mutation happens under one lock.  Scoring itself never
        # holds the lock — a miss computed twice is wasted work, not a bug.
        self._cache_lock = threading.Lock()
        self._cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        # user id -> cache keys currently held for that user, so targeted
        # invalidation after an ingest is O(touched users), not O(cache).
        self._user_keys: Dict[int, Set[Tuple[int, int, bool]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _resolve_executor(self, name: str):
        """An owned executor instance for one of the ``EXECUTOR_NAMES``."""
        if name == "serial":
            return SerialExecutor()
        if name == "threads":
            return ThreadedExecutor()
        if name == "process":
            if self._snapshot is None:
                raise ValueError(
                    "executor='process' ships (snapshot path, shard id, user "
                    "batch) payloads to worker processes and requires "
                    "snapshot=…")
            return ProcessExecutor(self._snapshot.path, self.num_shards,
                                   policy=self.shard_policy)
        if name == "remote":
            return self._resolve_remote_executor()
        raise ValueError(f"unknown executor {name!r}; "
                         f"options: {EXECUTOR_NAMES}")

    def _resolve_remote_executor(self):
        """A :class:`RemoteExecutor` over ``shard_addresses``, fingerprint-
        pinned to this service's snapshot."""
        if self._snapshot is None:
            raise ValueError(
                "executor='remote' pins shard servers to this router's "
                "snapshot via a content-fingerprint handshake and requires "
                "snapshot=…")
        if not self.shard_addresses:
            raise ValueError(
                "executor='remote' needs shard_addresses=['host:port', …] — "
                "one shard-server address per shard, in shard order")
        from .remote import RemoteExecutor

        return RemoteExecutor(self.shard_addresses,
                              snapshot_path=self._snapshot.path,
                              policy=self.shard_policy)

    def _build_candidates(self):
        """The two-stage backend for the current snapshot (or ``None``)."""
        if self.candidate_mode is None:
            if self.candidate_factor < 1:
                raise ValueError("candidate_factor must be a positive integer")
            return None
        if self._sharded is not None:
            if self._snapshot is not None:
                # Slice the stored whole-catalogue block instead of
                # requantising — bit-identical, O(view) for contiguous shards.
                return ShardedCandidateIndex(
                    self._sharded, self.candidate_mode, self.candidate_factor,
                    blocks=self._snapshot.shard_blocks(
                        self.candidate_mode, self.num_shards,
                        self.shard_policy))
            return ShardedCandidateIndex(self._sharded, self.candidate_mode,
                                         self.candidate_factor)
        if self._snapshot is not None:
            return CandidateIndex(
                self.index, self.candidate_mode, self.candidate_factor,
                block=self._snapshot.quantized_block(self.candidate_mode))
        return CandidateIndex(self.index, self.candidate_mode,
                              self.candidate_factor)

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.index.num_users

    @property
    def num_items(self) -> int:
        return self.index.num_items

    @property
    def exclusion(self) -> Optional[UserItemIndex]:
        return self.index.exclusion

    @property
    def sharded(self) -> Optional[ShardedInferenceIndex]:
        """The sharded backend, or ``None`` on the single-matrix path."""
        return self._sharded

    @property
    def snapshot(self) -> Optional[ServingSnapshot]:
        """The snapshot this service was opened from, or ``None``."""
        return self._snapshot

    @property
    def candidates(self):
        """The two-stage candidate backend, or ``None`` on the exact path."""
        return self._candidates

    @property
    def certificate_stats(self) -> Optional[dict]:
        """Aggregate certificate counters, or ``None`` on the exact path."""
        backend = self._candidates
        if backend is None:
            return None
        return {
            "mode": backend.mode,
            "factor": backend.factor,
            "batches": backend.total_batches,
            "certified_batches": backend.certified_batches,
            "users": backend.total_users,
            "certified_users": backend.certified_users,
            "escalation": self.candidate_escalation,
            "max_factor": self.max_candidate_factor,
            "escalation_rounds": backend.escalation_rounds,
            "escalated_users": backend.escalated_users,
            "exact_fallback_users": backend.exact_fallback_users,
        }

    def health_stats(self) -> Optional[dict]:
        """Replica health from the remote executor, or ``None`` when serving
        is local (there are no replicas to monitor)."""
        executor = self._executor
        if getattr(executor, "is_remote", False) \
                and hasattr(executor, "health_stats"):
            return executor.health_stats()
        return None

    @property
    def _backend(self):
        """Where requests go: two-stage candidates, sharded fan-out or the
        plain exact index (in that order of precedence)."""
        if self._candidates is not None:
            return self._candidates
        return self._sharded if self._sharded is not None else self.index

    def refresh(self, model=None) -> "RecommendationService":
        """Re-freeze the model's embeddings (after more training).

        Cached results are dropped only when the re-frozen embeddings
        actually differ from the serving snapshot — a defensive refresh
        (e.g. a train/eval mode flip without weight updates) keeps the whole
        LRU cache warm.  Scorer-fallback snapshots cannot be compared, so
        they always clear.
        """
        model = model if model is not None else self._model
        if model is None:
            raise ValueError("no model to refresh from")
        self._model = model
        fresh = InferenceIndex.from_model(
            model, self._split, dtype=self._dtype, exclusion=self.index.exclusion)
        if not self._snapshot_changed(self.index, fresh):
            # Same embeddings, same exclusion: the frozen stack still serves
            # identical results, so keep everything — the sharded slices, the
            # quantised blocks, the LRU cache and the certificate counters.
            return self
        if getattr(self._executor, "ships_payloads", False):
            # Payload workers rebuild from the on-disk snapshot, which still
            # holds the superseded embeddings; carrying the executor over
            # would silently fan requests out to stale matrices.
            raise ValueError(
                "refresh() cannot serve re-frozen embeddings through a "
                "payload-shipping executor (process or remote): its workers "
                "map the superseded snapshot file. Publish a new snapshot "
                "and build a fresh service, or serve with an in-process "
                "executor.")
        self.index = fresh
        # A refresh from a model supersedes the on-disk snapshot: its stored
        # blocks no longer match the serving embeddings, so stop adopting it.
        self._snapshot = None
        if self.num_shards > 1:
            # Re-shard the fresh snapshot; the executor (and its thread pool)
            # carries over so refresh never leaks worker threads.
            self._sharded = ShardedInferenceIndex.from_index(
                self.index, self.num_shards, policy=self.shard_policy,
                executor=self._executor)
        # Quantised blocks snapshot the embeddings too — requantise.
        self._candidates = self._build_candidates()
        self.clear_cache()
        return self

    @staticmethod
    def _snapshot_changed(previous: InferenceIndex,
                          current: InferenceIndex) -> bool:
        """Whether a re-frozen snapshot could serve different results."""
        if not (previous.is_factorized and current.is_factorized):
            return True
        return not (
            previous.user_embeddings.shape == current.user_embeddings.shape
            and np.array_equal(previous.user_embeddings, current.user_embeddings)
            and np.array_equal(previous.item_embeddings, current.item_embeddings))

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self._user_keys.clear()
            self.cache_hits = 0
            self.cache_misses = 0

    def invalidate_users(self, users) -> int:
        """Drop cached results of just these users; everyone else stays warm.

        The targeted counterpart of :meth:`clear_cache` for online updates:
        an ingest only changes the touched users' exclusion sets, so only
        their entries can be stale.  The per-user key index makes this
        O(touched users + removed entries) rather than a scan of the whole
        cache.  Hit/miss counters are preserved.  Returns the number of
        entries removed.
        """
        targets = {int(user) for user in np.atleast_1d(np.asarray(users))}
        removed = 0
        with self._cache_lock:
            for user in targets:
                for key in self._user_keys.pop(user, ()):
                    if self._cache.pop(key, None) is not None:
                        removed += 1
        return removed

    def cache_lookup(self, user: int, k: int,
                     exclude_train: bool = True) -> Optional[List[int]]:
        """The cached top-``k`` list for ``user``, or ``None`` on a miss.

        Counts a hit or a miss; returns ``None`` (without counting) when
        caching is disabled.  Thread-safe — this is the probe the async
        front-end uses to resolve requests without forming a batch.
        """
        if self.cache_size <= 0:
            return None
        key = (int(user), int(k), bool(exclude_train))
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is None:
                self.cache_misses += 1
            else:
                self._cache.move_to_end(key)
                self.cache_hits += 1
        if cached is None:
            metrics().inc("service.cache.misses")
            return None
        metrics().inc("service.cache.hits")
        return list(cached)

    def cache_store(self, user: int, k: int, exclude_train: bool,
                    items: Sequence[int]) -> None:
        """Insert one served top-``k`` list, evicting LRU entries over capacity.

        Thread-safe; a no-op when caching is disabled.  Evicted keys are
        dropped from the per-user index so :meth:`invalidate_users` never
        touches dead entries.
        """
        if self.cache_size <= 0:
            return
        key = (int(user), int(k), bool(exclude_train))
        with self._cache_lock:
            self._cache[key] = tuple(int(item) for item in items)
            self._cache.move_to_end(key)
            self._user_keys.setdefault(key[0], set()).add(key)
            while len(self._cache) > self.cache_size:
                evicted, _ = self._cache.popitem(last=False)
                keys = self._user_keys.get(evicted[0])
                if keys is not None:
                    keys.discard(evicted)
                    if not keys:
                        del self._user_keys[evicted[0]]

    def cache_stats(self) -> dict:
        """Point-in-time LRU counters (hits, misses, hit rate, occupancy)."""
        with self._cache_lock:
            hits, misses = self.cache_hits, self.cache_misses
            size = len(self._cache)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "size": size,
            "capacity": self.cache_size,
        }

    def _fault_stats(self) -> Optional[dict]:
        """Injected-fault counters from every attached :class:`FaultPlan`.

        Collects the remote executor's plan and (on the online subclass) the
        WAL's plan; when both point at the same plan object it is reported
        once.  ``fired_events`` lists every fault that actually fired —
        (site, kind, operation index) — so tests and benchmarks can assert
        *which* faults hit without reaching into private state.
        """
        plans = []
        executor_plan = getattr(self._executor, "fault_plan", None)
        if executor_plan is not None:
            plans.append(executor_plan)
        wal = getattr(self, "wal", None)
        wal_plan = getattr(wal, "fault_plan", None)
        if wal_plan is not None and all(wal_plan is not p for p in plans):
            plans.append(wal_plan)
        if not plans:
            return None
        if len(plans) == 1:
            return plans[0].stats()
        merged = [plan.stats() for plan in plans]
        return {
            "plans": merged,
            "fired_events": [event for stats in merged
                             for event in stats["fired_events"]],
        }

    def stats(self) -> dict:
        """One unified serving-stats surface with stable nested keys.

        Subsumes every per-subsystem accessor — each key is exactly what the
        old accessor returns (those accessors all keep working; this is the
        aggregation, not a replacement) — plus the process-local metrics
        registry:

        - ``service``: static geometry (users/items/shards/executor/…)
        - ``cache``: :meth:`cache_stats`
        - ``certificates``: :attr:`certificate_stats` (``None`` on the exact
          path)
        - ``health``: :meth:`health_stats` (``None`` when serving is local)
        - ``online`` / ``wal``: the online subclass's ``online_stats`` /
          ``wal_stats`` (``None`` on a plain service)
        - ``frontend``: the attached async frontend's ``stats()`` (``None``
          when no frontend wraps this service)
        - ``faults``: fired fault-injection events (``None`` without a plan)
        - ``metrics``: :meth:`MetricsRegistry.snapshot` of the global
          registry — counters, gauges and latency histograms
        """
        frontend = getattr(self, "_attached_frontend", None)
        return {
            "service": {
                "num_users": self.num_users,
                "num_items": self.num_items,
                "num_shards": self.num_shards,
                "shard_policy": self.shard_policy,
                "executor": type(self._executor).__name__,
                "candidate_mode": self.candidate_mode,
                "candidate_factor": self.candidate_factor,
                "batch_size": self.batch_size,
                "cache_size": self.cache_size,
            },
            "cache": self.cache_stats(),
            "certificates": self.certificate_stats,
            "health": self.health_stats(),
            "online": getattr(self, "online_stats", None),
            "wal": getattr(self, "wal_stats", None),
            "frontend": None if frontend is None else frontend.stats(),
            "faults": self._fault_stats(),
            "metrics": metrics().snapshot(),
        }

    def _serve_top_k(self, users: np.ndarray, k: int,
                     exclude_train: bool) -> np.ndarray:
        """One backend dispatch, escalation-aware on the candidate path."""
        backend = self._backend
        if self._candidates is not None and self.candidate_escalation:
            return backend.top_k_adaptive(
                users, k, exclude_train=exclude_train,
                max_factor=self.max_candidate_factor)
        return backend.top_k(users, k, exclude_train=exclude_train)

    # ------------------------------------------------------------------ #
    def top_k(self, users: Sequence[int], k: int,
              exclude_train: bool = True) -> np.ndarray:
        """Top-``k`` item ids for a batch of users, shape ``(len(users), k)``.

        Scoring runs in ``batch_size`` blocks so arbitrarily large user
        batches never materialise more than one dense score block at a time.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d array of user ids")
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        width = min(k, self.num_items)
        registry = metrics()
        registry.inc("service.top_k_calls")
        registry.inc("service.top_k_users", users.size)
        out = np.empty((users.size, width), dtype=np.int64)
        with traced("service.top_k"), registry.timer("service.top_k_s"):
            for start in range(0, users.size, self.batch_size):
                block = users[start:start + self.batch_size]
                out[start:start + block.size] = self._serve_top_k(
                    block, k, exclude_train)
        return out

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Cached single-user top-``k`` (the interactive / online entry point)."""
        with traced("service.recommend"):
            cached = self.cache_lookup(user, k, exclude_train)
            if cached is not None:
                return cached
            if self.cache_size <= 0:
                with self._cache_lock:
                    self.cache_misses += 1
            block = np.asarray([int(user)], dtype=np.int64)
            items = [int(item) for item in
                     self._serve_top_k(block, int(k), bool(exclude_train))[0]]
            self.cache_store(user, k, exclude_train, items)
            return items

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Scores of aligned (user, item) pairs — O(batch · dim) when factorised."""
        return self._backend.score_pairs(users, items)

    def close(self) -> None:
        """Release fan-out resources (the executor's thread/process pool).

        Idempotent; the service keeps serving on the single-matrix path
        afterwards but must not fan out again.
        """
        self._executor.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        backend = (f", shards={self.num_shards}({self.shard_policy}), "
                   f"executor={self._executor!r}" if self._sharded else "")
        if self._candidates is not None:
            backend += (f", candidates={self.candidate_mode}"
                        f"(x{self.candidate_factor})")
        return (f"RecommendationService(index={self.index!r}{backend}, "
                f"batch_size={self.batch_size}, cache_size={self.cache_size}, "
                f"hits={self.cache_hits}, misses={self.cache_misses})")
