"""Command-line interface: ``python -m repro <command> ...``.

The subcommands cover the common workflows:

* ``train``      — train one model on one dataset preset (or a CSV) and report metrics.
* ``recommend``  — train (or load a checkpoint) and serve top-K recommendations
                   through the :mod:`repro.engine` RecommendationService, or
                   serve straight from an on-disk snapshot (``--snapshot``,
                   optionally with ``--executor process`` multi-process
                   fan-out) without touching the model at all.
* ``snapshot``   — ``save`` a trained model's frozen serving state as a
                   memory-mappable artifact, or ``inspect`` an existing one.
* ``shard-server`` — serve one shard of a snapshot over TCP; a router started
                   with ``recommend --executor remote --shard-addr host:port``
                   (one flag per shard, in shard order) fans requests out to
                   these servers and merges bit-exactly.
* ``stats``      — pretty-print a unified serving-stats document (the
                   ``stats`` key of a ``recommend --json`` payload, or a
                   raw ``service.stats()`` dump from a benchmark artifact).
* ``experiment`` — run one of the paper's tables/figures by identifier.
* ``models`` / ``datasets`` / ``experiments`` — list what is available.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .data import list_presets, prepare_split
from .eval import evaluate_model
from .experiments import list_experiments, resolve_scale, run_experiment
from .models import available_models, build_model
from .training import Trainer, TrainerConfig
from .utils import load_checkpoint, save_checkpoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Layer-refined Graph Convolutional Networks for Recommendation'",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    train = subparsers.add_parser("train", help="train a model on a dataset preset or CSV")
    train.add_argument("--model", default="layergcn", help="registered model name")
    train.add_argument("--dataset", default="games", help="dataset preset name")
    train.add_argument("--csv", default=None, help="path to a user,item,timestamp CSV")
    train.add_argument("--embedding-dim", type=int, default=64)
    train.add_argument("--num-layers", type=int, default=4)
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--learning-rate", type=float, default=0.005)
    train.add_argument("--dropout-ratio", type=float, default=0.1)
    train.add_argument("--edge-dropout", default="degreedrop",
                       choices=["degreedrop", "dropedge", "mixed", "none"])
    train.add_argument("--scale", type=float, default=1.0, help="synthetic dataset scale factor")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--checkpoint", default=None, help="write trained weights to this .npz path")
    train.add_argument("--json", action="store_true", help="emit metrics as JSON")

    recommend = subparsers.add_parser(
        "recommend", help="serve top-K recommendations via the inference engine")
    recommend.add_argument("--model", default="layergcn", help="registered model name")
    recommend.add_argument("--dataset", default="games", help="dataset preset name")
    recommend.add_argument("--csv", default=None, help="path to a user,item,timestamp CSV")
    recommend.add_argument("--embedding-dim", type=int, default=64)
    recommend.add_argument("--num-layers", type=int, default=4)
    recommend.add_argument("--epochs", type=int, default=10,
                           help="training epochs before serving (ignored with --checkpoint)")
    recommend.add_argument("--learning-rate", type=float, default=0.005)
    recommend.add_argument("--scale", type=float, default=1.0)
    recommend.add_argument("--seed", type=int, default=0)
    recommend.add_argument("--checkpoint", default=None,
                           help="load trained weights from this .npz instead of training")
    recommend.add_argument("--users", default="0,1,2",
                           help="comma-separated user ids to recommend for")
    recommend.add_argument("-k", "--top-k", type=int, default=10, dest="top_k")
    recommend.add_argument("--include-train", action="store_true",
                           help="do not exclude items seen during training")
    recommend.add_argument("--shards", type=int, default=1,
                           help="partition the item catalogue into this many shards "
                                "and serve via fan-out/merge (exact results; "
                                "default 1 = unsharded)")
    recommend.add_argument("--shard-policy", default="contiguous",
                           choices=["contiguous", "strided"],
                           help="item partitioning policy for --shards")
    recommend.add_argument("--parallel", action="store_true",
                           help="fan sharded scoring out over a thread pool "
                                "(shard scoring releases the GIL); requires "
                                "--shards > 1")
    recommend.add_argument("--snapshot", default=None, metavar="PATH",
                           help="serve from this snapshot file (written by "
                                "'repro snapshot save') instead of training "
                                "or loading a checkpoint: the frozen "
                                "embeddings, exclusion index and quantised "
                                "blocks are memory-mapped zero-copy, so "
                                "startup is O(open)")
    recommend.add_argument("--executor", default=None,
                           choices=["serial", "threads", "process", "remote"],
                           help="fan-out executor for --shards > 1: 'serial', "
                                "'threads', 'process' (worker processes "
                                "re-open the snapshot by offset — requires "
                                "--snapshot; no matrices are pickled), or "
                                "'remote' (fan out over TCP to 'repro "
                                "shard-server' processes — requires "
                                "--snapshot and one --shard-addr per shard)")
    recommend.add_argument("--shard-addr", action="append", default=None,
                           metavar="HOST:PORT[,HOST:PORT...]",
                           dest="shard_addr",
                           help="with --executor remote: one shard's replica "
                                "set — a server address, or several "
                                "comma-separated replicas of the same shard "
                                "(transport faults fail over between them); "
                                "repeat once per shard, in shard order "
                                "(--shards defaults to the number of "
                                "--shard-addr flags)")
    recommend.add_argument("--candidates", default=None,
                           choices=["int8", "float32"], dest="candidates",
                           help="serve through the two-stage pipeline: "
                                "quantised candidate generation in this "
                                "precision, then exact rescoring with a "
                                "per-batch exactness certificate (default: "
                                "exact single-stage serving)")
    recommend.add_argument("--candidate-factor", type=int, default=4,
                           help="stage-1 candidates per user as a multiple "
                                "of K (only with --candidates; must be >= 1)")
    recommend.add_argument("--adaptive-candidates", action="store_true",
                           help="re-serve uncertified users with a doubled "
                                "candidate factor (up to "
                                "--max-candidate-factor), then fall back to "
                                "the exact path — every served list is then "
                                "provably exact (requires --candidates)")
    recommend.add_argument("--max-candidate-factor", type=int, default=32,
                           help="escalation ceiling for --adaptive-candidates "
                                "(must be >= --candidate-factor)")
    recommend.add_argument("--ingest", default=None, metavar="CSV",
                           help="fold new 'user,item' interaction events from "
                                "this CSV into the serving index before "
                                "recommending (online serving; consumed items "
                                "drop out of those users' lists, unseen user "
                                "ids get a fallback embedding row)")
    recommend.add_argument("--compact-threshold", type=int, default=50_000,
                           help="with --ingest: merge the interaction delta "
                                "into the base index once it reaches this "
                                "many pairs (results are identical before "
                                "and after the merge)")
    recommend.add_argument("--wal", default=None, metavar="PATH",
                           help="durable online serving: append every "
                                "ingested event batch to a checksummed "
                                "write-ahead log at PATH before "
                                "acknowledging it; if PATH already holds a "
                                "log, its records are replayed first "
                                "(crash recovery — a torn final record is "
                                "detected and dropped)")
    recommend.add_argument("--wal-fsync", default="batch",
                           choices=["always", "batch", "off"],
                           dest="wal_fsync",
                           help="with --wal: fsync after every append "
                                "('always'), periodically plus at "
                                "rotation ('batch', default), or never "
                                "('off' — flush only)")
    recommend.add_argument("--serve", action="store_true",
                           help="serve the requested users concurrently "
                                "through the async micro-batching frontend "
                                "(results stay bit-identical to direct "
                                "serving)")
    recommend.add_argument("--batch-window-ms", type=float, default=2.0,
                           dest="batch_window_ms", metavar="MS",
                           help="with --serve: max time the first waiter of a "
                                "batch is held before scoring (default 2.0)")
    recommend.add_argument("--max-batch-size", type=int, default=64,
                           dest="max_batch_size", metavar="N",
                           help="with --serve: coalesce at most N requests "
                                "into one scoring batch (default 64)")
    recommend.add_argument("--max-pending", type=int, default=1024,
                           dest="max_pending", metavar="N",
                           help="with --serve: bounded queue depth before "
                                "load shedding kicks in (default 1024)")
    recommend.add_argument("--trace", type=int, default=None, metavar="N",
                           dest="trace",
                           help="record request traces and print the N "
                                "slowest request trees (span timings per "
                                "serving stage; with --executor remote the "
                                "shard servers' spans are stitched in)")
    recommend.add_argument("--json", action="store_true", help="emit results as JSON")

    stats = subparsers.add_parser(
        "stats",
        help="pretty-print a unified serving-stats document (the 'stats' "
             "key of a 'recommend --json' payload, or a raw "
             "service.stats() dump)")
    stats.add_argument("path", nargs="?", default="-",
                       help="JSON file to read ('-' or omitted = stdin)")
    stats.add_argument("--json", action="store_true",
                       help="re-emit the normalised stats document as JSON")

    snapshot = subparsers.add_parser(
        "snapshot",
        help="save or inspect zero-copy memory-mapped serving snapshots")
    snapshot_sub = snapshot.add_subparsers(dest="snapshot_command")
    snap_save = snapshot_sub.add_parser(
        "save", help="freeze a trained model's serving state to one file")
    snap_save.add_argument("output", help="snapshot file to write")
    snap_save.add_argument("--model", default="layergcn", help="registered model name")
    snap_save.add_argument("--dataset", default="games", help="dataset preset name")
    snap_save.add_argument("--csv", default=None, help="path to a user,item,timestamp CSV")
    snap_save.add_argument("--embedding-dim", type=int, default=64)
    snap_save.add_argument("--num-layers", type=int, default=4)
    snap_save.add_argument("--epochs", type=int, default=10,
                           help="training epochs before freezing (ignored "
                                "with --checkpoint)")
    snap_save.add_argument("--learning-rate", type=float, default=0.005)
    snap_save.add_argument("--scale", type=float, default=1.0)
    snap_save.add_argument("--seed", type=int, default=0)
    snap_save.add_argument("--checkpoint", default=None,
                           help="load trained weights from this .npz instead "
                                "of training")
    snap_save.add_argument("--dtype", default="float64",
                           choices=["float64", "float32"],
                           help="serving dtype of the frozen embeddings")
    snap_save.add_argument("--candidate-modes", default="int8",
                           help="comma-separated quantised candidate blocks "
                                "to persist (subset of int8,float32; 'none' "
                                "to skip)")
    snap_save.add_argument("--json", action="store_true",
                           help="emit the snapshot summary as JSON")
    snap_inspect = snapshot_sub.add_parser(
        "inspect", help="validate a snapshot's header and print its layout")
    snap_inspect.add_argument("path", help="snapshot file to inspect")
    snap_inspect.add_argument("--json", action="store_true",
                              help="emit the header as JSON")

    shard_server = subparsers.add_parser(
        "shard-server",
        help="serve one shard of a snapshot over TCP (consumed by "
             "'recommend --executor remote')")
    shard_server.add_argument("snapshot",
                              help="serving snapshot file — must be a "
                                   "byte-identical copy of the router's "
                                   "(the handshake rejects anything else)")
    shard_server.add_argument("--shard-id", type=int, required=True,
                              metavar="I",
                              help="which shard of the partition this server "
                                   "holds (0-based)")
    shard_server.add_argument("--num-shards", type=int, required=True,
                              metavar="S",
                              help="total number of shards in the partition")
    shard_server.add_argument("--policy", default="contiguous",
                              choices=["contiguous", "strided"],
                              help="item partitioning policy (must match the "
                                   "router's --shard-policy)")
    shard_server.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default 127.0.0.1; "
                                   "use 0.0.0.0 for multi-host serving)")
    shard_server.add_argument("--port", type=int, default=0,
                              help="TCP port to bind (default 0 = ephemeral; "
                                   "the bound address is printed at startup)")

    experiment = subparsers.add_parser("experiment", help="run a paper table/figure by identifier")
    experiment.add_argument("identifier", help="e.g. table3, fig6 (see 'repro experiments')")
    experiment.add_argument("--scale", default="quick", choices=["quick", "full"])

    subparsers.add_parser("models", help="list registered models")
    subparsers.add_parser("datasets", help="list synthetic dataset presets")
    subparsers.add_parser("experiments", help="list reproducible tables/figures")
    return parser


# Models that accept a num_layers argument (the LayerGCN family plus the
# layered baselines); the LayerGCN family additionally takes dropout options.
LAYERED_MODELS = ("layergcn", "content-layergcn", "ssl-layergcn", "lightgcn",
                  "lightgcn-learnable", "ngcf", "lr-gccf", "imp-gcn")
LAYERGCN_FAMILY = ("layergcn", "content-layergcn", "ssl-layergcn")


def _model_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"embedding_dim": args.embedding_dim, "seed": args.seed}
    if args.model in LAYERED_MODELS:
        kwargs["num_layers"] = args.num_layers
    if args.model in LAYERGCN_FAMILY and hasattr(args, "dropout_ratio"):
        kwargs["dropout_ratio"] = args.dropout_ratio
        kwargs["edge_dropout"] = args.edge_dropout
    return kwargs


def _command_train(args: argparse.Namespace) -> int:
    split = prepare_split(args.dataset, seed=args.seed, scale=args.scale,
                          source_csv=args.csv)
    model = build_model(args.model, split, **_model_kwargs(args))

    config = TrainerConfig(learning_rate=args.learning_rate, epochs=args.epochs,
                           early_stopping_patience=10, verbose=not args.json)
    history = Trainer(model, split, config).fit()
    result = evaluate_model(model, split, ks=(10, 20, 50))

    payload = {
        "model": args.model,
        "dataset": args.dataset,
        "epochs_run": history.num_epochs_run,
        "best_epoch": history.best_epoch,
        "metrics": result.as_dict(),
    }
    if args.checkpoint:
        path = save_checkpoint(model, args.checkpoint, extra_metadata={"dataset": args.dataset})
        payload["checkpoint"] = str(path)

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"\n{args.model} on {args.dataset}: best epoch {history.best_epoch} "
              f"of {history.num_epochs_run}")
        print("test metrics:", result.format_row(sorted(result.values)))
        if args.checkpoint:
            print(f"checkpoint written to {payload['checkpoint']}")
    return 0


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _load_interaction_events(path: str):
    """Read ``user,item`` integer event rows from a CSV (header tolerated)."""
    users, items = [], []
    try:
        handle = open(path, newline="")
    except OSError as error:
        raise SystemExit(f"error: cannot read --ingest file: {error}")
    with handle:
        first_content_row = True
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row or not "".join(row).strip():
                continue
            try:
                user, item = int(row[0]), int(row[1])
            except (ValueError, IndexError):
                # Tolerate a header as the first non-blank row, but only when
                # NO field parses as an id — a typo'd first data row ('O,3')
                # must error, not vanish.
                if first_content_row and not any(
                        _is_int(field) for field in row[:2]):
                    first_content_row = False
                    continue
                raise SystemExit(f"error: --ingest line {line_number}: need "
                                 f"integer user,item columns, got {row!r}")
            first_content_row = False
            if user < 0 or item < 0:
                raise SystemExit(f"error: --ingest line {line_number}: "
                                 f"ids must be non-negative, got {row!r}")
            users.append(user)
            items.append(item)
    if not users:
        raise SystemExit(f"error: --ingest file {path!r} contains no events")
    return np.asarray(users, dtype=np.int64), np.asarray(items, dtype=np.int64)


def _serve_recommendations(service, users, args):
    """Serve the requested users through the async micro-batching frontend.

    All users are submitted concurrently, so they coalesce into shared
    scoring batches exactly as concurrent clients would; the rows come back
    bit-identical to ``service.top_k`` (the frontend's core invariant).
    """
    import asyncio

    from .engine import AsyncRecommendationFrontend, OverloadedError

    async def run():
        async with AsyncRecommendationFrontend(
                service, max_batch_size=args.max_batch_size,
                batch_window_ms=args.batch_window_ms,
                max_pending=args.max_pending) as frontend:
            rows = await asyncio.gather(
                *[frontend.recommend(user, args.top_k,
                                     exclude_train=not args.include_train)
                  for user in users])
            return rows, frontend.stats()

    try:
        return asyncio.run(run())
    except OverloadedError:
        raise SystemExit(f"error: --serve: {len(users)} concurrent requests "
                         f"overflow --max-pending {args.max_pending}; raise "
                         f"it or batch fewer users")


def _command_recommend(args: argparse.Namespace) -> int:
    # Validate cheap arguments before any dataset/model/training work.
    if args.top_k <= 0:
        raise SystemExit("error: -k/--top-k must be a positive integer")
    if args.shards <= 0:
        raise SystemExit("error: --shards must be a positive integer")
    if args.parallel and args.shards <= 1:
        raise SystemExit("error: --parallel fans out shard scoring and "
                         "requires --shards > 1")
    if args.parallel and args.executor is not None:
        raise SystemExit("error: pass either --parallel or --executor, "
                         "not both")
    if args.executor == "process" and args.snapshot is None:
        raise SystemExit("error: --executor process ships snapshot offsets "
                         "to worker processes and requires --snapshot PATH")
    if args.executor == "remote":
        if args.snapshot is None:
            raise SystemExit("error: --executor remote pins shard servers to "
                             "the router's snapshot and requires --snapshot "
                             "PATH")
        if not args.shard_addr:
            raise SystemExit("error: --executor remote needs one --shard-addr "
                             "HOST:PORT per shard, in shard order")
        if args.shards > 1 and args.shards != len(args.shard_addr):
            raise SystemExit(f"error: --shards {args.shards} does not match "
                             f"the {len(args.shard_addr)} --shard-addr "
                             f"addresses given")
    elif args.shard_addr:
        raise SystemExit("error: --shard-addr names remote shard servers and "
                         "requires --executor remote")
    if args.snapshot is not None and args.checkpoint is not None:
        raise SystemExit("error: --snapshot already holds frozen embeddings; "
                         "drop --checkpoint (or save a new snapshot from it)")
    if args.candidate_factor < 1:
        raise SystemExit("error: --candidate-factor must be a positive integer")
    if args.adaptive_candidates and args.candidates is None:
        raise SystemExit("error: --adaptive-candidates escalates the two-stage "
                         "pipeline and requires --candidates")
    if args.candidates is not None \
            and args.max_candidate_factor < args.candidate_factor:
        raise SystemExit("error: --max-candidate-factor must be >= "
                         "--candidate-factor")
    if args.compact_threshold < 1:
        raise SystemExit("error: --compact-threshold must be a positive integer")
    if args.trace is not None and args.trace < 1:
        raise SystemExit("error: --trace must be a positive integer")
    if args.serve:
        if args.batch_window_ms < 0:
            raise SystemExit("error: --batch-window-ms must be >= 0")
        if args.max_batch_size < 1:
            raise SystemExit("error: --max-batch-size must be a positive "
                             "integer")
        if args.max_pending < 1:
            raise SystemExit("error: --max-pending must be a positive integer")
    try:
        users = [int(u) for u in args.users.split(",") if u.strip() != ""]
    except ValueError:
        raise SystemExit(f"error: --users must be comma-separated integers, got {args.users!r}")
    if not users:
        raise SystemExit("error: --users must name at least one user id")
    events = _load_interaction_events(args.ingest) if args.ingest else None

    ingest_stats = None
    if args.snapshot is not None:
        # Snapshot serving never touches the dataset or the model: the frozen
        # state is memory-mapped straight from the file.
        from .engine import (OnlineRecommendationService,
                             RecommendationService, SnapshotFormatError)
        engine_kwargs = dict(
            num_shards=args.shards, shard_policy=args.shard_policy,
            parallel=args.parallel, executor=args.executor,
            shard_addresses=args.shard_addr,
            candidate_mode=args.candidates,
            candidate_factor=args.candidate_factor,
            candidate_escalation=args.adaptive_candidates,
            max_candidate_factor=args.max_candidate_factor)
        try:
            if events is not None or args.wal is not None:
                # A WAL implies online serving even without fresh --ingest
                # events: opening the log replays any records a previous
                # (possibly crashed) process acknowledged.
                service = OnlineRecommendationService(
                    snapshot=args.snapshot,
                    compact_threshold=args.compact_threshold,
                    wal_path=args.wal, wal_fsync=args.wal_fsync,
                    **engine_kwargs)
            else:
                service = RecommendationService(snapshot=args.snapshot,
                                                **engine_kwargs)
        except (SnapshotFormatError, OSError, ValueError) as error:
            raise SystemExit(f"error: --snapshot: {error}")
        if events is None:
            # WAL replay (if any) already happened in the constructor, so
            # num_users reflects recovered user growth here.
            bad = [u for u in users if not 0 <= u < service.num_users]
            if bad:
                raise SystemExit(f"error: user ids {bad} outside "
                                 f"[0, {service.num_users})")
    else:
        split = prepare_split(args.dataset, seed=args.seed, scale=args.scale,
                              source_csv=args.csv)
        if events is None:
            # With --ingest, unseen user ids are legal (they may be created
            # by the events); the range check moves to after ingestion.
            bad = [u for u in users if not 0 <= u < split.num_users]
            if bad:
                raise SystemExit(f"error: user ids {bad} outside "
                                 f"[0, {split.num_users})")
        model = build_model(args.model, split, **_model_kwargs(args))

        if args.checkpoint:
            load_checkpoint(model, args.checkpoint)
        elif args.epochs > 0:
            config = TrainerConfig(learning_rate=args.learning_rate,
                                   epochs=args.epochs,
                                   early_stopping_patience=5, verbose=False)
            Trainer(model, split, config).fit()
        model.eval()

        if (events is not None or args.wal is not None or args.shards > 1
                or args.candidates is not None or args.executor is not None):
            from .engine import OnlineRecommendationService, RecommendationService
            engine_kwargs = dict(
                num_shards=args.shards, shard_policy=args.shard_policy,
                parallel=args.parallel, executor=args.executor,
                candidate_mode=args.candidates,
                candidate_factor=args.candidate_factor,
                candidate_escalation=args.adaptive_candidates,
                max_candidate_factor=args.max_candidate_factor)
            try:
                if events is not None or args.wal is not None:
                    service = OnlineRecommendationService(
                        model, split, compact_threshold=args.compact_threshold,
                        wal_path=args.wal, wal_fsync=args.wal_fsync,
                        **engine_kwargs)
                else:
                    service = RecommendationService(model, split,
                                                    **engine_kwargs)
            except ValueError as error:
                # e.g. a scorer-fallback model (no item matrix to partition or
                # quantise).
                raise SystemExit(f"error: {error}")
        else:
            service = model.inference_service()
    if events is not None:
        try:
            ingest_stats = service.ingest(*events)
        except (ValueError, IndexError) as error:
            # e.g. event items outside the catalogue, or unseen users on a
            # scorer-fallback model (no embedding row to fall back to).
            raise SystemExit(f"error: --ingest: {error}")
        bad = [u for u in users if not 0 <= u < service.num_users]
        if bad:
            raise SystemExit(f"error: user ids {bad} outside "
                             f"[0, {service.num_users}) after ingest")
    frontend_stats = None
    unified_stats = None
    tracer = None
    if args.trace is not None:
        from .engine import Tracer, set_tracer
        tracer = Tracer(capacity=max(64, args.trace))
        previous_tracer = set_tracer(tracer)
    try:
        if args.serve:
            top, frontend_stats = _serve_recommendations(service, users, args)
        else:
            top = service.top_k(np.asarray(users, dtype=np.int64), args.top_k,
                                exclude_train=not args.include_train)
        stats_fn = getattr(service, "stats", None)
        if stats_fn is not None:
            unified_stats = stats_fn()
    except RuntimeError as error:
        from .engine import RemoteShardError
        if isinstance(error, RemoteShardError):
            # Fail closed with a readable message: an unreachable or stale
            # shard must end the command, never truncate a ranking.
            raise SystemExit(f"error: remote serving failed: {error}")
        raise
    finally:
        if tracer is not None:
            from .engine import set_tracer
            set_tracer(previous_tracer)
        close = getattr(service, "close", None)
        if close is not None:
            close()
    slowest_traces = tracer.slowest(args.trace) if tracer is not None else []

    source = (f"snapshot {args.snapshot}" if args.snapshot is not None
              else f"{args.model} on {args.dataset}")
    payload = {
        "model": None if args.snapshot is not None else args.model,
        "dataset": None if args.snapshot is not None else args.dataset,
        "snapshot": args.snapshot,
        "executor": args.executor,
        "shard_addresses": args.shard_addr,
        "k": args.top_k,
        "shards": service.num_shards if args.executor == "remote"
        else args.shards,
        "parallel": bool(args.parallel),
        "recommendations": {str(u): [int(i) for i in row]
                            for u, row in zip(users, top)},
    }
    cache_stats = getattr(service, "cache_stats", None)
    if cache_stats is not None:
        payload["cache"] = cache_stats()
    if frontend_stats is not None:
        payload["frontend"] = frontend_stats
    # Replica health (remote executor) and ingest durability (WAL): counters
    # survive service.close(), so reading them here is safe.
    health_stats = getattr(service, "health_stats", None)
    if health_stats is not None and (health := health_stats()) is not None:
        payload["health"] = health
    wal_stats = getattr(service, "wal_stats", None)
    if wal_stats is not None:
        payload["wal"] = wal_stats
    if args.candidates is not None:
        payload["candidates"] = service.certificate_stats
    if ingest_stats is not None:
        payload["ingest"] = dict(ingest_stats, **service.online_stats)
    if unified_stats is not None:
        payload["stats"] = unified_stats
    if tracer is not None:
        payload["traces"] = [trace.as_dict() for trace in slowest_traces]
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{source} — {service!r}")
        if ingest_stats is not None:
            print(f"ingested {ingest_stats['ingested']} new pairs from "
                  f"{ingest_stats['events']} events "
                  f"({ingest_stats['new_users']} new users, "
                  f"{ingest_stats['duplicates']} duplicates, "
                  f"compacted={ingest_stats['compacted']})")
        for user, row in zip(users, top):
            print(f"user {user}: {[int(i) for i in row]}")
        if frontend_stats is not None:
            print(f"frontend: {frontend_stats['requests']} requests in "
                  f"{frontend_stats['batches']} batches "
                  f"(mean occupancy {frontend_stats['mean_occupancy']:.1f}, "
                  f"window {frontend_stats['batch_window_ms']} ms, "
                  f"shed {frontend_stats['shed']})")
        if cache_stats is not None:
            stats = payload["cache"]
            print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
                  f"(hit rate {stats['hit_rate']:.2f}, "
                  f"size {stats['size']}/{stats['capacity']})")
        if "health" in payload:
            stats = payload["health"]
            print(f"replicas: {stats['requests']} requests over "
                  f"{stats['num_shards']} shard(s) "
                  f"(replicas per shard {stats['replicas_per_shard']}, "
                  f"failovers {stats['failovers']})")
        if "wal" in payload and payload["wal"] is not None:
            stats = payload["wal"]
            print(f"wal: {stats['records']} records ({stats['bytes']} bytes, "
                  f"fsync {stats['fsync']}, "
                  f"replayed {stats['replayed_records']}, "
                  f"rotations {stats['rotations']})")
        if args.candidates is not None:
            stats = service.certificate_stats
            print(f"certificates: {stats['certified_users']}/{stats['users']} "
                  f"users certified exact "
                  f"({stats['mode']}, factor {stats['factor']})")
            if args.adaptive_candidates:
                print(f"escalation: {stats['escalated_users']} users escalated "
                      f"over {stats['escalation_rounds']} rounds, "
                      f"{stats['exact_fallback_users']} exact fallbacks "
                      f"(max factor {stats['max_factor']})")
        if tracer is not None:
            from .engine import format_trace
            print(f"\n{len(slowest_traces)} slowest request trace(s):")
            for trace in slowest_traces:
                print(format_trace(trace))
    return 0


def _format_metric_value(name: str, value) -> str:
    """Histogram values named ``*_s`` hold seconds; everything else is a
    plain number (batch occupancy, counts)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        return "?"
    if not name.endswith("_s"):
        return f"{value:g}"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _compact_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _command_stats(args: argparse.Namespace) -> int:
    if args.path in (None, "-"):
        source, text = "<stdin>", sys.stdin.read()
    else:
        try:
            with open(args.path) as handle:
                source, text = args.path, handle.read()
        except OSError as error:
            raise SystemExit(f"error: {error}")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SystemExit(f"error: {source} is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise SystemExit(f"error: {source} does not hold a JSON object")
    # Accept either a bare service.stats() document or a whole
    # 'recommend --json' payload wrapping one under its "stats" key.
    stats = document["stats"] if isinstance(document.get("stats"), dict) \
        else document
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    shown = False
    for key in ("service", "cache", "certificates", "health", "online",
                "wal", "frontend"):
        section = stats.get(key)
        if section is None:
            continue
        shown = True
        if not isinstance(section, dict):
            print(f"{key}: {section}")
            continue
        body = ", ".join(f"{name}={_compact_value(value)}"
                         for name, value in section.items()
                         if not isinstance(value, (dict, list)))
        print(f"{key}: {body}" if body else f"{key}: (nested)")
    faults = stats.get("faults")
    if isinstance(faults, dict):
        shown = True
        fired = faults.get("fired_events") or []
        print(f"faults: {len(fired)} injected fault(s) fired")
        for event in fired:
            if isinstance(event, dict):
                print(f"  {event.get('site')}#{event.get('index')} "
                      f"{event.get('kind')}")
    metrics_doc = stats.get("metrics")
    if isinstance(metrics_doc, dict):
        shown = True
        counters = metrics_doc.get("counters") or {}
        gauges = metrics_doc.get("gauges") or {}
        histograms = metrics_doc.get("histograms") or {}
        state = "on" if metrics_doc.get("enabled", True) else "off"
        print(f"metrics ({state}): {len(counters)} counters, "
              f"{len(gauges)} gauges, {len(histograms)} histograms")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
        for name in sorted(gauges):
            print(f"  {name} ~ {_compact_value(gauges[name])}")
        for name in sorted(histograms):
            summary = histograms[name]
            if not isinstance(summary, dict) or not summary.get("count"):
                continue
            rendered = " ".join(
                f"{stat}={_format_metric_value(name, summary.get(stat))}"
                for stat in ("mean", "p50", "p90", "p99", "max"))
            print(f"  {name}: n={summary['count']} {rendered}")
    if not shown:
        raise SystemExit(f"error: {source} holds none of the unified stats "
                         f"sections (service/cache/.../metrics)")
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    if args.snapshot_command == "save":
        return _command_snapshot_save(args)
    if args.snapshot_command == "inspect":
        return _command_snapshot_inspect(args)
    raise SystemExit("error: snapshot needs a subcommand: save or inspect")


def _command_snapshot_save(args: argparse.Namespace) -> int:
    modes_text = args.candidate_modes.strip().lower()
    if modes_text in ("", "none"):
        modes = ()
    else:
        modes = tuple(mode.strip() for mode in modes_text.split(","))
        bad = [mode for mode in modes if mode not in ("int8", "float32")]
        if bad:
            raise SystemExit(f"error: unknown --candidate-modes {bad}; "
                             f"options: int8,float32 (or 'none')")

    split = prepare_split(args.dataset, seed=args.seed, scale=args.scale,
                          source_csv=args.csv)
    model = build_model(args.model, split, **_model_kwargs(args))
    if args.checkpoint:
        load_checkpoint(model, args.checkpoint)
    elif args.epochs > 0:
        config = TrainerConfig(learning_rate=args.learning_rate,
                               epochs=args.epochs,
                               early_stopping_patience=5, verbose=False)
        Trainer(model, split, config).fit()
    model.eval()

    from .engine import InferenceIndex, save_snapshot, snapshot_info
    try:
        index = InferenceIndex.from_model(model, split,
                                          dtype=np.dtype(args.dtype))
        path = save_snapshot(args.output, index, candidate_modes=modes,
                             metadata={"model": args.model,
                                       "dataset": args.dataset,
                                       "seed": args.seed})
    except (ValueError, OSError) as error:
        # e.g. a scorer-fallback model (no matrices to persist) or an
        # unwritable output path.
        raise SystemExit(f"error: {error}")
    header = snapshot_info(path)
    payload = {
        "snapshot": str(path),
        "bytes": path.stat().st_size,
        "users": header["num_users"],
        "items": header["num_items"],
        "dim": header["dim"],
        "dtype": header["dtype"],
        "candidate_modes": header["candidate_modes"],
        "sections": sorted(header["sections"]),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"wrote {payload['bytes']} bytes to {path}")
        print(f"{payload['users']} users x {payload['items']} items, "
              f"dim {payload['dim']}, dtype {payload['dtype']}, "
              f"candidate modes {payload['candidate_modes'] or ['(none)']}")
        print("serve it with: repro recommend --snapshot", path)
    return 0


def _command_snapshot_inspect(args: argparse.Namespace) -> int:
    from .engine import SnapshotFormatError, snapshot_info
    try:
        header = snapshot_info(args.path)
    except (SnapshotFormatError, OSError) as error:
        raise SystemExit(f"error: {error}")
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
        return 0
    print(f"{args.path}: serving snapshot v{header['format_version']}")
    print(f"  {header['num_users']} users x {header['num_items']} items, "
          f"dim {header['dim']}, dtype {header['dtype']}")
    print(f"  exclusion: {'yes' if header['has_exclusion'] else 'no'}; "
          f"candidate modes: {header['candidate_modes'] or '(none)'}")
    for name in sorted(header["sections"]):
        spec = header["sections"][name]
        print(f"  section {name}: {spec['dtype']} "
              f"{tuple(spec['shape'])} @ +{spec['offset']} "
              f"({spec['nbytes']} bytes)")
    if header.get("metadata"):
        print(f"  metadata: {header['metadata']}")
    return 0


def _command_shard_server(args: argparse.Namespace) -> int:
    if args.num_shards < 1:
        raise SystemExit("error: --num-shards must be a positive integer")
    if not 0 <= args.shard_id < args.num_shards:
        raise SystemExit(f"error: --shard-id must be in "
                         f"[0, {args.num_shards}), got {args.shard_id}")
    if not 0 <= args.port < 65536:
        raise SystemExit(f"error: --port must be in [0, 65536), "
                         f"got {args.port}")
    from .engine import ShardServer, SnapshotFormatError
    try:
        server = ShardServer(args.snapshot, args.shard_id, args.num_shards,
                             policy=args.policy, host=args.host,
                             port=args.port)
    except (SnapshotFormatError, OSError, ValueError) as error:
        raise SystemExit(f"error: {error}")
    host, port = server.address
    print(f"shard {args.shard_id}/{args.num_shards} ({args.policy}) of "
          f"{args.snapshot} — {server.shard_items} of {server.num_items} "
          f"items, fingerprint {server.fingerprint}")
    # Exact marker line consumed by launchers (the benchmark, scripts) to
    # learn the bound ephemeral port; flush so a piped reader sees it now.
    print(f"listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    output = run_experiment(args.identifier, scale=resolve_scale(args.scale))
    # Results are lists of dicts or dicts of arrays; render something readable
    # without depending on the exact shape.
    if isinstance(output, list):
        for row in output:
            print({key: value for key, value in row.items() if not hasattr(value, "shape")})
    elif isinstance(output, dict):
        for key, value in output.items():
            if hasattr(value, "shape"):
                print(f"{key}: array{tuple(value.shape)}")
            else:
                print(f"{key}: {value}")
    else:
        print(output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "train":
        return _command_train(args)
    if args.command == "recommend":
        return _command_recommend(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "snapshot":
        return _command_snapshot(args)
    if args.command == "shard-server":
        return _command_shard_server(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "models":
        print("\n".join(available_models()))
        return 0
    if args.command == "datasets":
        print("\n".join(list_presets()))
        return 0
    if args.command == "experiments":
        print("\n".join(list_experiments()))
        return 0
    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
