"""Core contribution: the LayerGCN model and its layer-refinement operator."""

from .content import ContentLayerGCN
from .layergcn import LayerGCN
from .refinement import refine_layer, refinement_similarity

__all__ = ["ContentLayerGCN", "LayerGCN", "refine_layer", "refinement_similarity"]
