"""Content-aware LayerGCN (the extension discussed in Section II-B).

The paper notes LayerGCN "could be applied to other scenarios where nodes are
associated with rich semantic features" in two ways:

1. initialise the node representations from content features (as vanilla GCN
   does for node classification), or
2. fuse the ID embeddings produced by LayerGCN with content features through
   an operator such as concatenation, addition or attention.

:class:`ContentLayerGCN` implements both modes on top of
:class:`~repro.core.layergcn.LayerGCN`:

* ``mode="init"`` — node embeddings are initialised as a learnable linear
  projection of the provided content features, then refined by LayerGCN's
  propagation as usual.
* ``mode="fuse"`` — standard ID embeddings are propagated, and the final
  representation adds (or concatenates) a projection of the content features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Parameter, Tensor, init
from ..autograd.functional import concat
from ..data import DataSplit
from .layergcn import LayerGCN

__all__ = ["ContentLayerGCN"]

_FUSION_OPERATORS = ("add", "concat")
_MODES = ("init", "fuse")


class ContentLayerGCN(LayerGCN):
    """LayerGCN with node content features.

    Parameters
    ----------
    split:
        The interaction data split.
    user_features, item_features:
        Optional dense feature matrices of shapes ``(num_users, d_u)`` and
        ``(num_items, d_i)``.  Missing matrices are replaced by zero features
        (the corresponding nodes then rely on ID embeddings only).
    mode:
        ``"init"`` (content initialises the ego layer) or ``"fuse"`` (content
        is combined with the propagated ID embeddings).
    fusion:
        ``"add"`` or ``"concat"``; only used in ``"fuse"`` mode.
    """

    name = "content-layergcn"

    def __init__(
        self,
        split: DataSplit,
        user_features: Optional[np.ndarray] = None,
        item_features: Optional[np.ndarray] = None,
        mode: str = "fuse",
        fusion: str = "add",
        embedding_dim: int = 64,
        num_layers: int = 4,
        l2_reg: float = 1e-3,
        edge_dropout: str = "degreedrop",
        dropout_ratio: float = 0.1,
        batch_size: int = 1024,
        seed: int = 0,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if fusion not in _FUSION_OPERATORS:
            raise ValueError(f"fusion must be one of {_FUSION_OPERATORS}")
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, edge_dropout=edge_dropout,
                         dropout_ratio=dropout_ratio, batch_size=batch_size, seed=seed)
        self.mode = mode
        self.fusion = fusion

        self._content = self._assemble_content(user_features, item_features)
        content_dim = self._content.shape[1]
        self.content_projection = Parameter(
            init.xavier_uniform((content_dim, embedding_dim), rng=self.rng),
            name="content_projection")

        if mode == "init":
            # The ego layer becomes (projected content + a learnable residual
            # ID embedding), so purely content-driven nodes still train.
            projected = self._content @ self.content_projection.data
            self.embeddings.data = self.embeddings.data * 0.1 + projected

    # ------------------------------------------------------------------ #
    def _assemble_content(self, user_features: Optional[np.ndarray],
                          item_features: Optional[np.ndarray]) -> np.ndarray:
        """Stack user and item features into one (N, d) matrix, zero-padded."""
        user_dim = 0 if user_features is None else np.asarray(user_features).shape[1]
        item_dim = 0 if item_features is None else np.asarray(item_features).shape[1]
        dim = max(user_dim, item_dim, 1)

        content = np.zeros((self.num_users + self.num_items, dim), dtype=np.float64)
        if user_features is not None:
            user_features = np.asarray(user_features, dtype=np.float64)
            if user_features.shape[0] != self.num_users:
                raise ValueError("user_features must have one row per user")
            content[: self.num_users, : user_features.shape[1]] = user_features
        if item_features is not None:
            item_features = np.asarray(item_features, dtype=np.float64)
            if item_features.shape[0] != self.num_items:
                raise ValueError("item_features must have one row per item")
            content[self.num_users:, : item_features.shape[1]] = item_features
        # Row-normalise so content and ID embeddings live on comparable scales.
        norms = np.linalg.norm(content, axis=1, keepdims=True)
        return content / np.maximum(norms, 1e-12)

    # ------------------------------------------------------------------ #
    def propagate(self) -> Tensor:
        propagated = super().propagate()
        if self.mode == "init":
            return propagated
        projected_content = Tensor(self._content).matmul(self.content_projection)
        if self.fusion == "add":
            return propagated + projected_content
        return concat([propagated, projected_content], axis=1)
