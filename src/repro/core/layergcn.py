"""LayerGCN: the paper's primary contribution.

The model combines three ingredients (Section III-B):

1. **Degree-sensitive edge dropout (DegreeDrop).**  At the start of every
   training epoch a fraction of edges is pruned from the interaction graph,
   keeping each edge with probability proportional to
   :math:`1/(\\sqrt{d_i}\\sqrt{d_j})` (Eq. 5).  Inference always uses the full
   graph.
2. **Layer-refined graph convolution (LayerGC).**  Each propagated layer is
   rescaled row-wise by its cosine similarity to the ego layer (Eq. 6-8),
   which amplifies hidden layers that agree with the node's own embedding and
   damps divergent ones.
3. **Ego-dropping sum readout.**  The final representation sums the refined
   hidden layers and *excludes* the ego layer (Eq. 9); prediction is the dot
   product of user and item final embeddings (Eq. 10) trained with BPR + L2
   (Eq. 11-12).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..engine import PropagationEngine
from ..data import DataSplit
from ..graph import EdgeDropout, build_edge_dropout, propagation_matrix
from ..models.graph_base import GraphRecommender
from .refinement import refine_layer

__all__ = ["LayerGCN"]


class LayerGCN(GraphRecommender):
    """Layer-refined Graph Convolutional Network for recommendation.

    Parameters
    ----------
    split:
        Train/validation/test split to bind the model to.
    embedding_dim:
        Embedding size ``T`` (the paper fixes 64).
    num_layers:
        Number of propagation layers ``L`` (the paper fixes 4).
    l2_reg:
        Coefficient λ of the L2 regulariser on ego embeddings (Eq. 12).
    edge_dropout:
        One of ``"degreedrop"`` (paper default), ``"dropedge"``, ``"mixed"``
        or ``"none"``; the LayerGCN (w/o Dropout) variant of Table II uses
        ``"none"`` (equivalently ``dropout_ratio=0``).
    dropout_ratio:
        Fraction of edges pruned per epoch (the paper tunes in {0, 0.1, 0.2}).
    epsilon:
        The ε of Eq. 6 guarding against zero rows after refinement.
    """

    name = "layergcn"

    def __init__(
        self,
        split: DataSplit,
        embedding_dim: int = 64,
        num_layers: int = 4,
        l2_reg: float = 1e-3,
        edge_dropout: str = "degreedrop",
        dropout_ratio: float = 0.1,
        epsilon: float = 1e-8,
        batch_size: int = 1024,
        seed: int = 0,
    ) -> None:
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed, self_loops=False)
        if num_layers < 1:
            raise ValueError("LayerGCN needs at least one propagation layer")
        self.epsilon = float(epsilon)
        self.dropout_ratio = float(dropout_ratio)
        self.edge_dropout_kind = edge_dropout if dropout_ratio > 0 else "none"
        self.edge_dropout: Optional[EdgeDropout] = build_edge_dropout(
            self.edge_dropout_kind, dropout_ratio, rng=self.rng)

        # Propagation matrix used during the current training epoch (pruned),
        # and the most recent per-layer mean similarities for Fig. 5.
        self._train_operator: Optional[PropagationEngine] = None
        self._last_layer_similarities: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Edge dropout (Section III-B-1)
    # ------------------------------------------------------------------ #
    def begin_epoch(self, epoch: int) -> None:
        """Resample the pruned propagation matrix :math:`\\hat{A}_p` for this epoch."""
        super().begin_epoch(epoch)
        if self.edge_dropout is None:
            self._train_operator = None
            return
        kept = self.edge_dropout.sample_edges(self.graph, epoch=epoch)
        pruned = propagation_matrix(
            self.graph,
            user_indices=self.graph.user_indices[kept],
            item_indices=self.graph.item_indices[kept],
            self_loops=False,
        )
        self._train_operator = PropagationEngine(pruned)

    def propagation_operator(self) -> PropagationEngine:
        """Pruned matrix during training; full graph at inference (Section III-B-1)."""
        if self.training and self._train_operator is not None:
            return self._train_operator
        return self.adjacency

    # ------------------------------------------------------------------ #
    # Layer-refined propagation (Section III-B-2)
    # ------------------------------------------------------------------ #
    def refined_layers(self) -> Tuple[List[Tensor], List[Tensor]]:
        """All refined hidden layers ``X^1..X^L`` and their similarity vectors."""
        operator = self.propagation_operator()
        ego = self.embeddings
        layers: List[Tensor] = []
        similarities: List[Tensor] = []
        current: Tensor = ego
        for _ in range(self.num_layers):
            propagated = operator.apply(current)
            refined, similarity = refine_layer(propagated, ego, eps=self.epsilon)
            layers.append(refined)
            similarities.append(similarity)
            current = refined
        return layers, similarities

    def propagate(self) -> Tensor:
        """Sum readout over refined hidden layers, ego layer excluded (Eq. 9)."""
        layers, similarities = self.refined_layers()
        self._last_layer_similarities = np.asarray(
            [float(similarity.data.mean()) for similarity in similarities])
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total

    # ------------------------------------------------------------------ #
    # Introspection used by the figure experiments
    # ------------------------------------------------------------------ #
    def layer_similarity_values(self) -> Optional[np.ndarray]:
        """Mean refinement similarity per layer from the latest forward pass (Fig. 5)."""
        return self._last_layer_similarities
