"""Layer-refinement operator (Section III-B-2 of the paper).

After each propagation step the hidden layer is rescaled row-by-row with its
cosine similarity to the ego layer:

.. math::

    \\tilde{X}^{l+1} = \\hat{A}_p X^{l}                         \\\\
    X^{l+1} = (a^{l+1} + \\epsilon) \\tilde{X}^{l+1},\\qquad
    a^{l+1} = \\mathrm{SIM}(\\tilde{X}^{l+1}, X^0)               (Eq.~6\\text{–}8)

so hidden layers that agree with the node's ego representation are amplified
and divergent layers are damped, which is the mechanism Proposition 2 uses to
bound the drift from the ego embedding.
"""

from __future__ import annotations

from typing import Tuple


from ..autograd import Tensor
from ..autograd.functional import row_cosine_similarity, scale_rows

__all__ = ["refine_layer", "refinement_similarity"]


def refinement_similarity(hidden: Tensor, ego: Tensor, eps: float = 1e-8) -> Tensor:
    """Per-node cosine similarity ``a^{l+1} = SIM(X^{l+1}, X^0)`` (Eq. 7-8)."""
    return row_cosine_similarity(hidden, ego, eps=eps)


def refine_layer(hidden: Tensor, ego: Tensor, eps: float = 1e-8) -> Tuple[Tensor, Tensor]:
    """Apply the layer refinement of Eq. 6 and return (refined layer, similarities).

    Parameters
    ----------
    hidden:
        The freshly propagated layer :math:`\\tilde{X}^{l+1}` of shape (N, T).
    ego:
        The ego layer :math:`X^0` of shape (N, T).
    eps:
        The small positive constant added to the similarity so refined rows
        can never become exactly zero (the ε of Eq. 6).

    Returns
    -------
    refined:
        :math:`(a^{l+1} + \\epsilon)\\,\\tilde{X}^{l+1}`.
    similarity:
        The similarity vector ``a^{l+1}`` (shape (N, 1)), useful for the
        Fig. 5 visualisation and for tests of Proposition 2.
    """
    similarity = refinement_similarity(hidden, ego, eps=eps)
    refined = scale_rows(hidden, similarity + eps)
    return refined, similarity
