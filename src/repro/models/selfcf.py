"""Self-supervised LayerGCN (the direction named in the paper's future work).

The conclusion of the paper states: "In our future work, we would like to
study how self-supervised signals can augment the representation learning of
LayerGCN."  This module implements that extension in the style of SelfCF /
contrastive graph CF: alongside the BPR objective, two stochastically
perturbed views of the propagated embeddings are pulled together with an
InfoNCE-style contrastive loss, computed only for the nodes in the current
batch so the extra cost stays proportional to the batch size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd.functional import l2_normalize
from ..core.layergcn import LayerGCN
from ..data import DataSplit

__all__ = ["SelfSupervisedLayerGCN"]


class SelfSupervisedLayerGCN(LayerGCN):
    """LayerGCN augmented with a contrastive self-supervised objective.

    Parameters
    ----------
    ssl_weight:
        Weight of the contrastive term added to the BPR + L2 loss.
    ssl_temperature:
        Softmax temperature of the InfoNCE loss.
    perturbation_scale:
        Standard deviation of the random noise used to build the two views
        (embedding-level augmentation; no extra graph is materialised).
    """

    name = "ssl-layergcn"

    def __init__(self, split: DataSplit, ssl_weight: float = 0.1,
                 ssl_temperature: float = 0.2, perturbation_scale: float = 0.1,
                 **kwargs) -> None:
        super().__init__(split, **kwargs)
        if ssl_weight < 0:
            raise ValueError("ssl_weight must be non-negative")
        if ssl_temperature <= 0:
            raise ValueError("ssl_temperature must be positive")
        self.ssl_weight = float(ssl_weight)
        self.ssl_temperature = float(ssl_temperature)
        self.perturbation_scale = float(perturbation_scale)

    # ------------------------------------------------------------------ #
    def _perturbed_view(self, embeddings: Tensor) -> Tensor:
        """Add scaled random noise in the direction of the embedding sign.

        This mirrors the "random noise on the embedding" augmentation used by
        SimGCL-style models: the perturbation has a fixed norm and a random
        direction correlated with the embedding's sign.
        """
        noise = self.rng.normal(size=embeddings.shape)
        noise = np.sign(embeddings.data) * np.abs(noise)
        norms = np.linalg.norm(noise, axis=1, keepdims=True)
        noise = noise / np.maximum(norms, 1e-12) * self.perturbation_scale
        return embeddings + Tensor(noise)

    def _info_nce(self, view_a: Tensor, view_b: Tensor) -> Tensor:
        """InfoNCE loss between two aligned views of the same nodes."""
        a = l2_normalize(view_a, axis=1)
        b = l2_normalize(view_b, axis=1)
        logits = a.matmul(b.transpose()) * (1.0 / self.ssl_temperature)
        # Cross-entropy against the diagonal (each node's positive is itself).
        batch = logits.shape[0]
        log_denominator = logits.exp().sum(axis=1).log()
        positives = (a * b).sum(axis=1) * (1.0 / self.ssl_temperature)
        return (log_denominator - positives).sum() * (1.0 / batch)

    # ------------------------------------------------------------------ #
    def train_step(self, batch: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tensor:
        loss = super().train_step(batch)
        if self.ssl_weight == 0:
            return loss

        users, positives, _ = batch
        nodes = np.unique(np.concatenate([
            np.asarray(users, dtype=np.int64),
            self._item_nodes(positives),
        ]))
        final = self.propagate()
        anchor = final.gather_rows(nodes)
        view_a = self._perturbed_view(anchor)
        view_b = self._perturbed_view(anchor)
        contrastive = self._info_nce(view_a, view_b)
        return loss + contrastive * self.ssl_weight
