"""Baseline recommendation models compared against LayerGCN (Table II)."""

from .base import Recommender
from .graph_base import GraphRecommender
from .bpr_mf import BprMF
from .buir import BUIR
from .ehcf import EHCF
from .impgcn import IMPGCN
from .lightgcn import LightGCN, WeightedLightGCN
from .lrgccf import LRGCCF
from .multivae import MultiVAE
from .ngcf import NGCF
from .ultragcn import UltraGCN
from .registry import MODEL_REGISTRY, available_models, build_model, register_model

__all__ = [
    "Recommender",
    "GraphRecommender",
    "BprMF",
    "BUIR",
    "EHCF",
    "IMPGCN",
    "LightGCN",
    "WeightedLightGCN",
    "LRGCCF",
    "MultiVAE",
    "NGCF",
    "UltraGCN",
    "MODEL_REGISTRY",
    "available_models",
    "build_model",
    "register_model",
]
