"""Mult-VAE (Liang et al., WWW 2018): variational autoencoder for CF.

Each user's binary interaction row is encoded into a Gaussian latent variable
and decoded into a multinomial distribution over items; training maximises the
ELBO (multinomial log-likelihood minus an annealed KL term).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import Parameter, Tensor, init, no_grad
from ..autograd.functional import dropout, log_softmax
from ..data import BatchSpec, DataSplit
from ..engine import UserItemIndex
from .base import Recommender

__all__ = ["MultiVAE"]


class MultiVAE(Recommender):
    """Variational autoencoder with a multinomial likelihood over items.

    Parameters
    ----------
    hidden_dim:
        Width of the encoder/decoder hidden layer.
    latent_dim:
        Dimensionality of the Gaussian latent variable.
    anneal_cap / anneal_steps:
        The KL annealing schedule β_t = min(anneal_cap, t / anneal_steps).
    input_dropout:
        Dropout applied to the (normalised) input interaction rows.
    """

    name = "multivae"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, hidden_dim: int = 128,
                 latent_dim: Optional[int] = None, anneal_cap: float = 0.2,
                 anneal_steps: int = 2000, input_dropout: float = 0.5,
                 batch_size: int = 128, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        self.hidden_dim = int(hidden_dim)
        self.latent_dim = int(latent_dim or embedding_dim)
        self.anneal_cap = float(anneal_cap)
        self.anneal_steps = int(anneal_steps)
        self.input_dropout = float(input_dropout)
        self._train_steps = 0

        num_items = self.num_items
        rng = self.rng
        # Encoder: items -> hidden -> (mu, logvar)
        self.enc_w1 = Parameter(init.xavier_uniform((num_items, hidden_dim), rng=rng), name="enc_w1")
        self.enc_b1 = Parameter(np.zeros(hidden_dim), name="enc_b1")
        self.enc_w_mu = Parameter(init.xavier_uniform((hidden_dim, self.latent_dim), rng=rng), name="enc_w_mu")
        self.enc_b_mu = Parameter(np.zeros(self.latent_dim), name="enc_b_mu")
        self.enc_w_logvar = Parameter(init.xavier_uniform((hidden_dim, self.latent_dim), rng=rng), name="enc_w_logvar")
        self.enc_b_logvar = Parameter(np.zeros(self.latent_dim), name="enc_b_logvar")
        # Decoder: latent -> hidden -> items
        self.dec_w1 = Parameter(init.xavier_uniform((self.latent_dim, hidden_dim), rng=rng), name="dec_w1")
        self.dec_b1 = Parameter(np.zeros(hidden_dim), name="dec_b1")
        self.dec_w2 = Parameter(init.xavier_uniform((hidden_dim, num_items), rng=rng), name="dec_w2")
        self.dec_b2 = Parameter(np.zeros(num_items), name="dec_b2")

    # ------------------------------------------------------------------ #
    def batch_spec(self) -> BatchSpec:
        """Dense user-row batches from the pipeline's CSR scatter."""
        return BatchSpec(kind="user_rows", batch_size=self.batch_size)

    @staticmethod
    def _normalize_rows(rows: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        return rows / np.maximum(norms, 1e-12)

    def _encode(self, rows: Tensor) -> Tuple[Tensor, Tensor]:
        hidden = (rows.matmul(self.enc_w1) + self.enc_b1).tanh()
        mu = hidden.matmul(self.enc_w_mu) + self.enc_b_mu
        logvar = hidden.matmul(self.enc_w_logvar) + self.enc_b_logvar
        return mu, logvar

    def _decode(self, latent: Tensor) -> Tensor:
        hidden = (latent.matmul(self.dec_w1) + self.dec_b1).tanh()
        return hidden.matmul(self.dec_w2) + self.dec_b2

    # ------------------------------------------------------------------ #
    def train_step(self, batch: Tuple[np.ndarray, np.ndarray]) -> Tensor:
        _, rows = batch
        self._train_steps += 1
        anneal = min(self.anneal_cap, self._train_steps / max(self.anneal_steps, 1))

        inputs = Tensor(self._normalize_rows(rows))
        inputs = dropout(inputs, self.input_dropout, rng=self.rng, training=self.training)

        mu, logvar = self._encode(inputs)
        noise = Tensor(self.rng.normal(size=mu.shape))
        latent = mu + (logvar * 0.5).exp() * noise
        logits = self._decode(latent)

        log_probs = log_softmax(logits, axis=1)
        reconstruction = -(Tensor(rows) * log_probs).sum(axis=1).mean()
        kl = (-0.5 * (1.0 + logvar - mu * mu - logvar.exp()).sum(axis=1)).mean()
        return reconstruction + kl * anneal

    # ------------------------------------------------------------------ #
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        # One CSR scatter builds the whole input batch (shared split index).
        rows = UserItemIndex.from_split(self.split, "train").dense_rows(
            users, dtype=np.float64)
        with no_grad():
            inputs = Tensor(self._normalize_rows(rows))
            mu, _ = self._encode(inputs)
            logits = self._decode(mu)
        return logits.data
