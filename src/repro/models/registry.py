"""Model registry used by experiments, examples and benchmarks.

Every model in Table II is registered under the (lower-case) name the paper
uses for it, so the benchmark harness can instantiate them uniformly:

>>> from repro.models import build_model
>>> model = build_model("lightgcn", split, embedding_dim=64, num_layers=3)
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..data import DataSplit
from .base import Recommender
from .bpr_mf import BprMF
from .buir import BUIR
from .ehcf import EHCF
from .impgcn import IMPGCN
from .lightgcn import LightGCN, WeightedLightGCN
from .lrgccf import LRGCCF
from .multivae import MultiVAE
from .ngcf import NGCF
from .ultragcn import UltraGCN

__all__ = ["MODEL_REGISTRY", "build_model", "available_models", "register_model"]


MODEL_REGISTRY: Dict[str, Type[Recommender]] = {
    "bpr": BprMF,
    "multivae": MultiVAE,
    "ehcf": EHCF,
    "buir": BUIR,
    "ngcf": NGCF,
    "lr-gccf": LRGCCF,
    "lightgcn": LightGCN,
    "lightgcn-learnable": WeightedLightGCN,
    "ultragcn": UltraGCN,
    "imp-gcn": IMPGCN,
}


def _ensure_core_models() -> None:
    """Register the core LayerGCN model lazily to avoid a circular import.

    ``repro.core.layergcn`` subclasses :class:`GraphRecommender` from this
    package, so the registry cannot import it at module load time.
    """
    if "layergcn" in MODEL_REGISTRY:
        return
    from ..core.content import ContentLayerGCN
    from ..core.layergcn import LayerGCN
    from .selfcf import SelfSupervisedLayerGCN

    MODEL_REGISTRY["layergcn"] = LayerGCN
    MODEL_REGISTRY["content-layergcn"] = ContentLayerGCN
    MODEL_REGISTRY["ssl-layergcn"] = SelfSupervisedLayerGCN


def register_model(name: str, factory: Type[Recommender], overwrite: bool = False) -> None:
    """Register a custom recommender class under ``name``."""
    key = name.lower()
    if key in MODEL_REGISTRY and not overwrite:
        raise KeyError(f"model '{name}' is already registered")
    MODEL_REGISTRY[key] = factory


def available_models() -> List[str]:
    """Sorted list of registered model names."""
    _ensure_core_models()
    return sorted(MODEL_REGISTRY)


def build_model(name: str, split: DataSplit, **kwargs) -> Recommender:
    """Instantiate a registered model bound to ``split``.

    Keyword arguments are passed straight to the model constructor; unknown
    model names raise ``KeyError`` listing the available options.
    """
    _ensure_core_models()
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; options: {available_models()}")
    return MODEL_REGISTRY[key](split, **kwargs)
