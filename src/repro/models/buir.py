"""BUIR (Lee et al., SIGIR 2021): bootstrapping user and item representations.

BUIR learns without negative samples by maintaining two encoders: an *online*
encoder updated by gradients and a *target* encoder updated as an exponential
moving average of the online one.  The online side additionally has a linear
predictor; the loss pulls ``predictor(online_user)`` towards ``target_item``
and ``predictor(online_item)`` towards ``target_user`` for observed pairs.

Following the paper's experimental setup (Section V-A-2), the encoders use a
LightGCN backbone over the training graph.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autograd import Parameter, Tensor, init, no_grad
from ..autograd.functional import l2_normalize
from ..data import DataSplit
from ..engine import PropagationEngine
from ..graph import normalized_adjacency
from .base import Recommender

__all__ = ["BUIR"]


class BUIR(Recommender):
    """BUIR with a LightGCN backbone and momentum target network."""

    name = "buir"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 2,
                 momentum: float = 0.995, batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        if not 0.0 < momentum < 1.0:
            raise ValueError("momentum must lie in (0, 1)")
        self.num_layers = int(num_layers)
        self.momentum = float(momentum)

        graph = split.train_graph()
        self.adjacency = PropagationEngine(normalized_adjacency(graph, self_loops=False))

        num_nodes = self.num_users + self.num_items
        self.online_embeddings = Parameter(
            init.xavier_uniform((num_nodes, embedding_dim), rng=self.rng), name="online_embeddings")
        self.predictor_weight = Parameter(
            init.xavier_uniform((embedding_dim, embedding_dim), rng=self.rng), name="predictor_weight")
        self.predictor_bias = Parameter(np.zeros(embedding_dim), name="predictor_bias")
        # The target network is a plain array (never receives gradients).
        self._target_embeddings = self.online_embeddings.data.copy()

    # ------------------------------------------------------------------ #
    def _encode(self, embeddings: Tensor) -> Tensor:
        """LightGCN-style mean readout over the propagation layers."""
        layers = [embeddings]
        current = embeddings
        for _ in range(self.num_layers):
            current = self.adjacency.apply(current)
            layers.append(current)
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total * (1.0 / len(layers))

    def _encode_target(self) -> np.ndarray:
        matrix = self.adjacency.matrix
        layers = [self._target_embeddings]
        current = self._target_embeddings
        for _ in range(self.num_layers):
            current = matrix @ current
            layers.append(current)
        return np.mean(layers, axis=0)

    # ------------------------------------------------------------------ #
    def train_step(self, batch: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tensor:
        users, positives, _ = batch
        users = np.asarray(users, dtype=np.int64)
        item_nodes = np.asarray(positives, dtype=np.int64) + self.num_users

        online = self._encode(self.online_embeddings)
        target = self._encode_target()

        online_users = online.gather_rows(users)
        online_items = online.gather_rows(item_nodes)
        target_users = Tensor(target[users])
        target_items = Tensor(target[item_nodes])

        predicted_users = online_users.matmul(self.predictor_weight) + self.predictor_bias
        predicted_items = online_items.matmul(self.predictor_weight) + self.predictor_bias

        # Symmetric BYOL-style loss: 2 - 2 * cos(pred, target).
        loss_user_to_item = (
            2.0 - 2.0 * (l2_normalize(predicted_users) * l2_normalize(target_items)).sum(axis=1)
        ).mean()
        loss_item_to_user = (
            2.0 - 2.0 * (l2_normalize(predicted_items) * l2_normalize(target_users)).sum(axis=1)
        ).mean()
        return loss_user_to_item + loss_item_to_user

    def after_step(self) -> None:
        """Momentum (EMA) update of the target embedding table."""
        self._target_embeddings = (
            self.momentum * self._target_embeddings
            + (1.0 - self.momentum) * self.online_embeddings.data
        )

    # ------------------------------------------------------------------ #
    def user_item_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Final (user, item) matrices combining the online and target views."""
        with no_grad():
            online = self._encode(self.online_embeddings).data
        # Prediction combines both views, as in the original implementation.
        combined = online + self._encode_target()
        return combined[: self.num_users], combined[self.num_users:]

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        user_matrix, item_matrix = self.user_item_embeddings()
        return user_matrix[users] @ item_matrix.T
