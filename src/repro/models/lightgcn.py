"""LightGCN (He et al., SIGIR 2020) and its learnable-layer-weight variant.

LightGCN propagates the embedding table with the symmetric normalised
adjacency (Eq. 2) and averages the ego layer with all hidden layers for the
final representation (the mean READOUT of Eq. 3).

:class:`WeightedLightGCN` replaces the fixed mean with learnable softmax
weights over layers — the variant used in Fig. 1 of the paper to demonstrate
that the weight space collapses onto the ego layer.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Parameter, Tensor
from ..autograd.functional import softmax
from ..data import DataSplit
from .graph_base import GraphRecommender

__all__ = ["LightGCN", "WeightedLightGCN"]


class LightGCN(GraphRecommender):
    """LightGCN with mean readout over the ego and hidden layers."""

    name = "lightgcn"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 3,
                 l2_reg: float = 1e-4, batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed, self_loops=False)

    def layer_embeddings(self) -> List[Tensor]:
        """Ego layer plus all ``num_layers`` propagated layers."""
        operator = self.propagation_operator()
        layers = [self.embeddings]
        current: Tensor = self.embeddings
        for _ in range(self.num_layers):
            current = operator.apply(current)
            layers.append(current)
        return layers

    def propagate(self) -> Tensor:
        layers = self.layer_embeddings()
        total = layers[0]
        for layer in layers[1:]:
            total = total + layer
        return total * (1.0 / len(layers))


class WeightedLightGCN(LightGCN):
    """LightGCN with learnable softmax weights over layer embeddings (Fig. 1).

    The readout becomes ``X = Σ_l w_l X^l`` with ``w = softmax(θ)`` learned
    jointly with the embeddings.  The paper shows the ego-layer weight ``w_0``
    grows to dominate the others during training, which motivates LayerGCN's
    dropping of the ego layer.
    """

    name = "lightgcn-learnable"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 4,
                 l2_reg: float = 1e-4, batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed)
        self.layer_logits = Parameter(np.zeros(num_layers + 1), name="layer_logits")

    def propagate(self) -> Tensor:
        layers = self.layer_embeddings()
        weights = softmax(self.layer_logits.reshape(1, -1), axis=1).reshape(-1)
        total: Optional[Tensor] = None
        for index, layer in enumerate(layers):
            contribution = layer * weights[index]
            total = contribution if total is None else total + contribution
        return total

    def layer_weight_values(self) -> np.ndarray:
        """Current softmax layer weights (ego layer first) — recorded for Fig. 1."""
        logits = self.layer_logits.data
        shifted = logits - logits.max()
        exp = np.exp(shifted)
        return exp / exp.sum()
