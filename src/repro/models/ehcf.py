"""EHCF (Chen et al., AAAI 2020): efficient heterogeneous CF without negative sampling.

The defining trait of EHCF is whole-data learning: instead of sampling
negatives, every unobserved (user, item) entry is treated as a weak negative
with a small confidence weight.  This implementation keeps that non-sampling
objective (a confidence-weighted squared loss over the user's full item row)
with a transfer-style prediction layer on top of the embeddings.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autograd import Parameter, Tensor, init, no_grad
from ..data import BatchSpec, DataSplit
from ..training.losses import l2_regularization
from .base import Recommender

__all__ = ["EHCF"]


class EHCF(Recommender):
    """Efficient whole-data collaborative filtering without negative sampling.

    Parameters
    ----------
    negative_weight:
        Confidence weight ``c0`` assigned to unobserved entries (observed
        entries have weight 1).
    """

    name = "ehcf"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, l2_reg: float = 1e-4,
                 negative_weight: float = 0.05, batch_size: int = 256, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        if not 0.0 < negative_weight <= 1.0:
            raise ValueError("negative_weight must lie in (0, 1]")
        self.l2_reg = float(l2_reg)
        self.negative_weight = float(negative_weight)

        self.user_factors = Parameter(
            init.xavier_uniform((self.num_users, embedding_dim), rng=self.rng), name="user_factors")
        self.item_factors = Parameter(
            init.xavier_uniform((self.num_items, embedding_dim), rng=self.rng), name="item_factors")
        # Per-dimension prediction weights (the "transfer" layer of EHCF).
        self.prediction_weights = Parameter(np.ones(embedding_dim) / np.sqrt(embedding_dim),
                                            name="prediction_weights")

    # ------------------------------------------------------------------ #
    def batch_spec(self) -> BatchSpec:
        """Whole-row batches: EHCF reconstructs each user's full item row."""
        return BatchSpec(kind="user_rows", batch_size=self.batch_size)

    def _predict_rows(self, users: np.ndarray) -> Tensor:
        """Scores of every item for the given users (dense, differentiable)."""
        user_embed = self.user_factors.gather_rows(users)
        weighted = user_embed * self.prediction_weights
        return weighted.matmul(self.item_factors.transpose())

    def train_step(self, batch: Tuple[np.ndarray, np.ndarray]) -> Tensor:
        users, rows = batch
        users = np.asarray(users, dtype=np.int64)
        predictions = self._predict_rows(users)

        weights = np.where(rows > 0, 1.0, self.negative_weight)
        difference = predictions - Tensor(rows)
        loss = (Tensor(weights) * difference * difference).sum(axis=1).mean()

        if self.l2_reg > 0:
            user_embed = self.user_factors.gather_rows(users)
            loss = loss + l2_regularization(user_embed, self.item_factors,
                                            coefficient=self.l2_reg, normalize_by=users.size)
        return loss

    # ------------------------------------------------------------------ #
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        with no_grad():
            scores = self._predict_rows(users)
        return scores.data
