"""LR-GCCF (Chen et al., AAAI 2020): linear residual graph CF.

LR-GCCF removes the non-linearities from NGCF and adds a residual preference
learning scheme: every propagation layer keeps the previous layer through the
re-normalised adjacency with self-loops, and the final representation is the
*concatenation* of all layer embeddings, so the prediction is the sum of the
per-layer inner products.
"""

from __future__ import annotations

from typing import List

from ..autograd import Tensor
from ..autograd.functional import concat
from ..data import DataSplit
from .graph_base import GraphRecommender

__all__ = ["LRGCCF"]


class LRGCCF(GraphRecommender):
    """Linear residual graph convolutional collaborative filtering."""

    name = "lr-gccf"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 3,
                 l2_reg: float = 1e-4, batch_size: int = 1024, seed: int = 0) -> None:
        # Self-loops implement the residual connection (A + I normalisation,
        # Eq. 22-23 of the paper's analysis section).
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed, self_loops=True)

    def layer_embeddings(self) -> List[Tensor]:
        operator = self.propagation_operator()
        layers = [self.embeddings]
        current: Tensor = self.embeddings
        for _ in range(self.num_layers):
            current = operator.apply(current)
            layers.append(current)
        return layers

    def propagate(self) -> Tensor:
        """Concatenate the ego and hidden layers along the feature dimension.

        The concatenation means the score ``x_u · x_i`` decomposes into the
        sum of per-layer inner products — the residual preference learning of
        LR-GCCF.
        """
        return concat(self.layer_embeddings(), axis=1)
