"""NGCF (Wang et al., SIGIR 2019): neural graph collaborative filtering.

NGCF keeps the feature-transformation matrices and non-linearities that
LightGCN later removes.  Each propagation layer computes

.. math::

    X^{(l+1)} = \\mathrm{LeakyReLU}\\bigl(\\hat{A} X^{(l)} W_1^{(l)}
                + (\\hat{A} X^{(l)} \\odot X^{(l)}) W_2^{(l)}\\bigr)

and the final representation concatenates all layers (including the ego
layer), following the original paper.  Message dropout is applied to every
layer output during training.
"""

from __future__ import annotations

from typing import List


from ..autograd import Parameter, Tensor, init
from ..autograd.functional import concat, dropout
from ..data import DataSplit
from .graph_base import GraphRecommender

__all__ = ["NGCF"]


class NGCF(GraphRecommender):
    """Neural Graph Collaborative Filtering with transformation weights."""

    name = "ngcf"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 3,
                 l2_reg: float = 1e-4, message_dropout: float = 0.1,
                 batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed, self_loops=True)
        if not 0.0 <= message_dropout < 1.0:
            raise ValueError("message_dropout must lie in [0, 1)")
        self.message_dropout = float(message_dropout)
        # Per-layer transformation matrices W1 (graph messages) and W2
        # (element-wise interaction messages).
        self.w_graph: List[Parameter] = []
        self.w_interaction: List[Parameter] = []
        for layer in range(num_layers):
            w1 = Parameter(init.xavier_uniform((embedding_dim, embedding_dim), rng=self.rng),
                           name=f"w_graph_{layer}")
            w2 = Parameter(init.xavier_uniform((embedding_dim, embedding_dim), rng=self.rng),
                           name=f"w_interaction_{layer}")
            # Register explicitly because list attributes bypass Module.__setattr__.
            self._parameters[f"w_graph_{layer}"] = w1
            self._parameters[f"w_interaction_{layer}"] = w2
            self.w_graph.append(w1)
            self.w_interaction.append(w2)

    def propagate(self) -> Tensor:
        operator = self.propagation_operator()
        layers: List[Tensor] = [self.embeddings]
        current: Tensor = self.embeddings
        for layer in range(self.num_layers):
            propagated = operator.apply(current)
            graph_message = propagated.matmul(self.w_graph[layer])
            interaction_message = (propagated * current).matmul(self.w_interaction[layer])
            current = (graph_message + interaction_message).leaky_relu(0.2)
            current = dropout(current, self.message_dropout, rng=self.rng, training=self.training)
            layers.append(current)
        return concat(layers, axis=1)
