"""Shared machinery for the graph-convolutional recommenders.

LightGCN, LR-GCCF, NGCF, IMP-GCN and LayerGCN all share the same skeleton:

* a single embedding table over the ``N = N_U + N_I`` nodes (the ego layer
  :math:`X^0`),
* linear propagation over a normalised bipartite adjacency,
* a READOUT over layer embeddings,
* a BPR + L2 objective over sampled (user, positive, negative) triples —
  the triples come from the base class's ``bpr`` batch spec, i.e. the
  vectorized :class:`repro.data.BprPipeline` (CSR flat-key negative
  sampling; see :mod:`repro.data.pipeline`),
* full-ranking scoring as the dot product of final user and item embeddings.

:class:`GraphRecommender` implements everything except the propagation rule,
which each subclass expresses in :meth:`propagate`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autograd import Parameter, Tensor, init, no_grad
from ..data import DataSplit
from ..engine import PropagationEngine
from ..graph import BipartiteGraph, normalized_adjacency
from ..training.losses import bpr_loss, l2_regularization
from .base import Recommender

__all__ = ["GraphRecommender"]


class GraphRecommender(Recommender):
    """Base class for models that propagate an embedding table over the graph.

    Parameters
    ----------
    split:
        Data split; the training interactions define the propagation graph.
    embedding_dim:
        Latent dimension ``T`` (64 in the paper).
    num_layers:
        Number of propagation layers ``L``.
    l2_reg:
        Coefficient λ of the L2 penalty on the ego embeddings involved in a
        batch (Eq. 12).
    self_loops:
        Whether the propagation matrix uses the re-normalisation trick
        (vanilla GCN) or the plain symmetric normalisation (LightGCN-style).
    """

    name = "graph-recommender"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 3,
                 l2_reg: float = 1e-4, batch_size: int = 1024, seed: int = 0,
                 self_loops: bool = False) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        if num_layers < 0:
            raise ValueError("num_layers must be non-negative")
        self.num_layers = int(num_layers)
        self.l2_reg = float(l2_reg)
        self.self_loops = bool(self_loops)

        self.graph: BipartiteGraph = split.train_graph()
        # Training propagation always runs in float64 — the autograd
        # substrate computes exact float64 gradients (see repro.engine for
        # the dtype policy; float32 engines are for inference-only paths).
        self.adjacency = PropagationEngine(
            normalized_adjacency(self.graph, self_loops=self_loops))

        num_nodes = self.num_users + self.num_items
        self.embeddings = Parameter(
            init.xavier_uniform((num_nodes, self.embedding_dim), rng=self.rng),
            name="embeddings",
        )
        self._cached_final: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def propagation_operator(self) -> PropagationEngine:
        """Propagation engine used for the current forward pass.

        Subclasses with edge dropout override this to return the pruned
        operator during training and the full operator at inference.
        """
        return self.adjacency

    def propagate(self) -> Tensor:
        """Return the final node embeddings ``X`` (shape ``(N, T)``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def begin_epoch(self, epoch: int) -> None:
        self._cached_final = None

    def _item_nodes(self, items: np.ndarray) -> np.ndarray:
        """Map item indices into the global node id space."""
        return np.asarray(items, dtype=np.int64) + self.num_users

    def train_step(self, batch: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tensor:
        users, positives, negatives = batch
        self._cached_final = None
        final = self.propagate()

        user_embed = final.gather_rows(np.asarray(users, dtype=np.int64))
        positive_embed = final.gather_rows(self._item_nodes(positives))
        negative_embed = final.gather_rows(self._item_nodes(negatives))

        positive_scores = (user_embed * positive_embed).sum(axis=1)
        negative_scores = (user_embed * negative_embed).sum(axis=1)
        loss = bpr_loss(positive_scores, negative_scores)

        if self.l2_reg > 0:
            ego_users = self.embeddings.gather_rows(np.asarray(users, dtype=np.int64))
            ego_positives = self.embeddings.gather_rows(self._item_nodes(positives))
            ego_negatives = self.embeddings.gather_rows(self._item_nodes(negatives))
            loss = loss + l2_regularization(
                ego_users, ego_positives, ego_negatives,
                coefficient=self.l2_reg, normalize_by=len(users),
            )
        return loss

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def final_embeddings(self) -> np.ndarray:
        """Final node embeddings as a plain array (cached while in eval mode)."""
        if self.training or self._cached_final is None:
            with no_grad():
                final = self.propagate()
            if self.training:
                return final.data
            self._cached_final = final.data
        return self._cached_final

    def user_item_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Split the final node embeddings into (user, item) matrices."""
        final = self.final_embeddings()
        return final[: self.num_users], final[self.num_users:]

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        user_matrix, item_matrix = self.user_item_embeddings()
        users = np.asarray(users, dtype=np.int64)
        return user_matrix[users] @ item_matrix.T

    def train(self, mode: bool = True) -> "GraphRecommender":
        self._cached_final = None
        return super().train(mode)

    def load_state_dict(self, state) -> None:
        super().load_state_dict(state)
        self._cached_final = None
