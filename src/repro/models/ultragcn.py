"""UltraGCN (Mao et al., CIKM 2021), simplified.

UltraGCN skips explicit message passing and instead approximates the limit of
infinitely many graph-convolution layers with weighted constraint losses on
user-item pairs.  The per-pair constraint weight is

.. math::

    \\beta_{u,i} = \\frac{1}{d_u}\\sqrt{\\frac{d_u + 1}{d_i + 1}}

and the objective combines a weighted log-sigmoid loss over observed pairs,
a sampled-negative term, and an item-item co-occurrence constraint built from
the top neighbours of each item.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd import Parameter, Tensor, init
from ..autograd.functional import logsigmoid
from ..data import BatchSpec, DataSplit
from ..training.losses import l2_regularization
from .base import Recommender

__all__ = ["UltraGCN"]


class UltraGCN(Recommender):
    """UltraGCN with user-item constraint weights and an item-item graph.

    Parameters
    ----------
    num_negatives:
        Negatives sampled per positive pair (UltraGCN uses many more than
        BPR-style models; the default keeps training fast at this scale).
    negative_weight:
        Weight of the sampled-negative term in the loss.
    item_graph_neighbors:
        Number of top co-occurring items kept per item for the item-item
        constraint (the ``I-I`` graph of the original paper).
    item_graph_weight:
        Weight of the item-item constraint loss term.
    gamma:
        Weight applied to the β-weighted positive term (λ in the original).
    """

    name = "ultragcn"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, l2_reg: float = 1e-4,
                 num_negatives: int = 8, negative_weight: float = 1.0,
                 item_graph_neighbors: int = 10, item_graph_weight: float = 0.5,
                 gamma: float = 1.0, batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        self.l2_reg = float(l2_reg)
        self.num_negatives = int(num_negatives)  # consumed by batch_spec()
        self.negative_weight = float(negative_weight)
        self.item_graph_weight = float(item_graph_weight)
        self.gamma = float(gamma)

        self.user_factors = Parameter(
            init.xavier_uniform((self.num_users, embedding_dim), rng=self.rng), name="user_factors")
        self.item_factors = Parameter(
            init.xavier_uniform((self.num_items, embedding_dim), rng=self.rng), name="item_factors")

        graph = split.train_graph()
        user_degrees = graph.user_degrees()
        item_degrees = graph.item_degrees()
        # β_{u,i} constraint weights (Eq. above); degrees floored at 1 to keep
        # isolated nodes finite.
        self._beta_user = 1.0 / np.maximum(user_degrees, 1.0) * np.sqrt(user_degrees + 1.0)
        self._beta_item = 1.0 / np.sqrt(item_degrees + 1.0)

        self._item_neighbors, self._item_neighbor_weights = self._build_item_graph(
            graph.interaction_matrix(), item_graph_neighbors)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _build_item_graph(interactions: sp.csr_matrix,
                          num_neighbors: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top co-occurring neighbours per item from the item-item matrix R^T R."""
        co_occurrence = (interactions.T @ interactions).tocsr()
        co_occurrence.setdiag(0)
        co_occurrence.eliminate_zeros()
        num_items = co_occurrence.shape[0]
        neighbors = np.zeros((num_items, num_neighbors), dtype=np.int64)
        weights = np.zeros((num_items, num_neighbors), dtype=np.float64)
        for item in range(num_items):
            start, stop = co_occurrence.indptr[item], co_occurrence.indptr[item + 1]
            columns = co_occurrence.indices[start:stop]
            values = co_occurrence.data[start:stop]
            if columns.size == 0:
                neighbors[item] = item
                continue
            order = np.argsort(-values)[:num_neighbors]
            chosen = columns[order]
            chosen_weights = values[order]
            neighbors[item, :chosen.size] = chosen
            weights[item, :chosen.size] = chosen_weights / max(chosen_weights.max(), 1e-12)
            if chosen.size < num_neighbors:
                neighbors[item, chosen.size:] = item
        return neighbors, weights

    # ------------------------------------------------------------------ #
    def batch_spec(self) -> BatchSpec:
        """Multi-negative batches: a ``(B, num_negatives)`` matrix per batch.

        The pipeline's vectorized sampler guarantees the negatives avoid
        each user's training positives (unlike the historical in-model
        uniform draw), which matches the original UltraGCN sampler.
        """
        return BatchSpec(kind="multi_negative", batch_size=self.batch_size,
                         num_negatives=self.num_negatives)

    def train_step(self, batch: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tensor:
        users, positives, negatives = batch
        users = np.asarray(users, dtype=np.int64)
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64).reshape(users.size, -1)
        num_negatives = negatives.shape[1]

        user_embed = self.user_factors.gather_rows(users)
        positive_embed = self.item_factors.gather_rows(positives)

        positive_scores = (user_embed * positive_embed).sum(axis=1)
        beta = self._beta_user[users] * self._beta_item[positives]
        positive_weights = Tensor(1.0 + self.gamma * beta)
        positive_loss = -(positive_weights * logsigmoid(positive_scores)).mean()

        # Sampled negatives: push scores of unobserved items down.
        negative_embed = self.item_factors.gather_rows(negatives.reshape(-1))
        negative_scores = (
            user_embed.gather_rows(np.repeat(np.arange(users.size), num_negatives))
            * negative_embed
        ).sum(axis=1)
        negative_loss = -logsigmoid(-negative_scores).mean() * self.negative_weight

        # Item-item constraint: positive items should score close to their
        # co-occurrence neighbours for the same user.
        neighbor_items = self._item_neighbors[positives]          # (B, K)
        neighbor_weights = self._item_neighbor_weights[positives]  # (B, K)
        neighbor_embed = self.item_factors.gather_rows(neighbor_items.reshape(-1))
        repeated_users = user_embed.gather_rows(
            np.repeat(np.arange(users.size), neighbor_items.shape[1]))
        neighbor_scores = (repeated_users * neighbor_embed).sum(axis=1)
        item_loss = -(Tensor(neighbor_weights.reshape(-1)) * logsigmoid(neighbor_scores)).mean()
        item_loss = item_loss * self.item_graph_weight

        loss = positive_loss + negative_loss + item_loss
        if self.l2_reg > 0:
            loss = loss + l2_regularization(user_embed, positive_embed,
                                            coefficient=self.l2_reg, normalize_by=users.size)
        return loss

    # ------------------------------------------------------------------ #
    def user_item_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Final (user, item) factor matrices for the inference engine."""
        return self.user_factors.data, self.item_factors.data

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return self.user_factors.data[users] @ self.item_factors.data.T
