"""BPR matrix factorisation baseline (Rendle et al., 2009).

Plain MF scored as the dot product of user and item latent factors, optimised
with the pairwise BPR loss (Eq. 11) — the "BPR" column of Table II.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..autograd import Parameter, Tensor, init
from ..data import DataSplit
from ..training.losses import bpr_loss, l2_regularization
from .base import Recommender

__all__ = ["BprMF"]


class BprMF(Recommender):
    """Bayesian Personalised Ranking matrix factorisation."""

    name = "bpr"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, l2_reg: float = 1e-4,
                 batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, batch_size=batch_size, seed=seed)
        self.l2_reg = float(l2_reg)
        self.user_factors = Parameter(
            init.xavier_uniform((self.num_users, embedding_dim), rng=self.rng), name="user_factors")
        self.item_factors = Parameter(
            init.xavier_uniform((self.num_items, embedding_dim), rng=self.rng), name="item_factors")

    def train_step(self, batch: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> Tensor:
        users, positives, negatives = batch
        user_embed = self.user_factors.gather_rows(users)
        positive_embed = self.item_factors.gather_rows(positives)
        negative_embed = self.item_factors.gather_rows(negatives)

        positive_scores = (user_embed * positive_embed).sum(axis=1)
        negative_scores = (user_embed * negative_embed).sum(axis=1)
        loss = bpr_loss(positive_scores, negative_scores)
        if self.l2_reg > 0:
            loss = loss + l2_regularization(
                user_embed, positive_embed, negative_embed,
                coefficient=self.l2_reg, normalize_by=len(users),
            )
        return loss

    def user_item_embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Final (user, item) factor matrices for the inference engine."""
        return self.user_factors.data, self.item_factors.data

    def score_users(self, users: Sequence[int]) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return self.user_factors.data[users] @ self.item_factors.data.T
