"""IMP-GCN (Liu et al., WWW 2021): interest-aware message passing GCN.

IMP-GCN splits users into interest subgroups and restricts high-order graph
convolutions to the subgraph induced by each group (items stay shared), which
limits over-smoothing by keeping the messages of users with different
interests apart.

This implementation follows the published architecture in spirit:

* the first-order propagation uses the full graph (as in the original);
* users are assigned to ``num_groups`` interest groups by clustering their
  first-order representations (re-computed every epoch, which plays the role
  of the original's learned grouping MLP without adding parameters);
* layers 2..L propagate over the per-group subgraphs, and the outputs of all
  layers are summed into the final representation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..engine import PropagationEngine
from ..data import DataSplit
from ..graph import propagation_matrix
from .graph_base import GraphRecommender

__all__ = ["IMPGCN"]


class IMPGCN(GraphRecommender):
    """Interest-aware message-passing GCN with user subgroup propagation."""

    name = "imp-gcn"

    def __init__(self, split: DataSplit, embedding_dim: int = 64, num_layers: int = 3,
                 num_groups: int = 3, l2_reg: float = 1e-4,
                 batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__(split, embedding_dim=embedding_dim, num_layers=num_layers,
                         l2_reg=l2_reg, batch_size=batch_size, seed=seed, self_loops=False)
        if num_groups < 1:
            raise ValueError("num_groups must be positive")
        self.num_groups = int(num_groups)
        self._group_operators: Optional[List[PropagationEngine]] = None

    # ------------------------------------------------------------------ #
    # Interest grouping
    # ------------------------------------------------------------------ #
    def _assign_groups(self) -> np.ndarray:
        """Cluster users into interest groups on their first-order embeddings.

        This runs once per epoch outside the autograd graph, so it reuses the
        engine's scratch buffer instead of allocating an (N, T) array each
        time; only the user block is copied out for the k-means below.
        """
        first_order = self.adjacency.forward(self.embeddings.data, out="scratch")
        user_repr = first_order[: self.num_users].copy()
        if self.num_groups == 1 or self.num_users <= self.num_groups:
            return np.zeros(self.num_users, dtype=np.int64)

        # Lightweight k-means (a handful of Lloyd iterations is enough because
        # the grouping is refreshed every epoch anyway).
        rng = self.rng
        centroid_idx = rng.choice(self.num_users, size=self.num_groups, replace=False)
        centroids = user_repr[centroid_idx].copy()
        assignment = np.zeros(self.num_users, dtype=np.int64)
        for _ in range(5):
            distances = ((user_repr[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignment = distances.argmin(axis=1)
            for group in range(self.num_groups):
                members = user_repr[assignment == group]
                if len(members):
                    centroids[group] = members.mean(axis=0)
        return assignment

    def _build_group_operators(self) -> List[PropagationEngine]:
        """Propagation matrices of the per-group subgraphs (items shared)."""
        assignment = self._assign_groups()
        operators: List[PropagationEngine] = []
        edge_groups = assignment[self.graph.user_indices]
        for group in range(self.num_groups):
            mask = edge_groups == group
            matrix = propagation_matrix(
                self.graph,
                user_indices=self.graph.user_indices[mask],
                item_indices=self.graph.item_indices[mask],
                self_loops=False,
            )
            operators.append(PropagationEngine(matrix))
        return operators

    def begin_epoch(self, epoch: int) -> None:
        super().begin_epoch(epoch)
        self._group_operators = self._build_group_operators()

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #
    def propagate(self) -> Tensor:
        if self._group_operators is None:
            self._group_operators = self._build_group_operators()

        # Layer 1: shared full-graph propagation.
        first = self.adjacency.apply(self.embeddings)
        total = self.embeddings + first

        # Layers 2..L: propagate within each interest subgraph and sum the
        # group outputs (each node receives messages only through its group's
        # edges, so the sum never double counts).
        previous_per_group = [op.apply(self.embeddings) for op in self._group_operators]
        for _ in range(1, self.num_layers):
            current_per_group = [
                op.apply(prev) for op, prev in zip(self._group_operators, previous_per_group)
            ]
            layer_sum: Optional[Tensor] = None
            for current in current_per_group:
                layer_sum = current if layer_sum is None else layer_sum + current
            total = total + layer_sum
            previous_per_group = current_per_group
        return total * (1.0 / (self.num_layers + 1))
