"""Shared recommender interface.

Every model in the library (the LayerGCN core model and all baselines)
subclasses :class:`Recommender` so that the :class:`repro.training.Trainer`,
the :class:`repro.eval.RankingEvaluator` and the benchmark harness can treat
them interchangeably.

The contract:

* ``batch_spec()`` declares the model's training-batch shape (a
  :class:`repro.data.BatchSpec`); ``make_batches(rng)`` routes it through
  the vectorized :mod:`repro.data.pipeline` subsystem and yields one epoch.
* ``train_step(batch)`` returns the scalar loss :class:`Tensor` for a batch.
* ``begin_epoch(epoch)`` is called once per epoch before batching (LayerGCN
  resamples its pruned adjacency here).
* ``after_step()`` is called after each optimiser step (BUIR updates its
  momentum target network here).
* ``score_users(users)`` returns a dense ``(len(users), num_items)`` score
  matrix for evaluation, computed without building an autograd graph.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..autograd import Module, Tensor
from ..data import BatchSpec, DataSplit, build_pipeline
from ..data.pipeline import BatchPipeline
from ..engine import RecommendationService

__all__ = ["Recommender"]


class Recommender(Module):
    """Base class for all recommendation models.

    Parameters
    ----------
    split:
        Train/validation/test split the model is bound to; the training graph
        and the id space come from here.
    embedding_dim:
        Latent dimensionality ``T`` (the paper fixes 64 for all models).
    batch_size:
        Mini-batch size used by :meth:`make_batches`.
    seed:
        Seed of the model-local RNG (initialisation, negative sampling,
        edge dropout).
    """

    name = "recommender"

    def __init__(self, split: DataSplit, embedding_dim: int = 64,
                 batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__()
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.split = split
        self.num_users = split.num_users
        self.num_items = split.num_items
        self.embedding_dim = int(embedding_dim)
        self.batch_size = int(batch_size)
        self.num_negatives = 1
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self._service: Optional[RecommendationService] = None
        self._pipeline: Optional[BatchPipeline] = None
        self._pipeline_key = None

    # ------------------------------------------------------------------ #
    # Training protocol
    # ------------------------------------------------------------------ #
    def batch_spec(self) -> BatchSpec:
        """Declarative shape of this model's training batches.

        Default: shuffled BPR ``(user, positive, negative)`` triples.
        Subclasses with other access patterns (multi-negative matrices,
        dense user rows) override this instead of hand-rolling iterators.
        """
        return BatchSpec(kind="bpr", batch_size=self.batch_size,
                         num_negatives=self.num_negatives)

    def configure_batching(self, batch_size: Optional[int] = None,
                           num_negatives: Optional[int] = None) -> None:
        """Apply trainer-level batching overrides (see ``TrainerConfig``).

        Overrides persist on the model: they replace ``batch_size`` /
        ``num_negatives`` for every later ``batch_spec()`` build, until the
        next explicit call.  ``None`` leaves a setting unchanged.
        """
        if batch_size is not None:
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")
            self.batch_size = int(batch_size)
        if num_negatives is not None:
            if num_negatives <= 0:
                raise ValueError("num_negatives must be positive")
            self.num_negatives = int(num_negatives)
        self._pipeline = None

    def training_pipeline(self, rng: Optional[np.random.Generator] = None) -> BatchPipeline:
        """The model's batch pipeline (cached while spec and RNG are stable)."""
        rng = rng if rng is not None else self.rng
        key = (self.batch_spec(), id(rng))
        if self._pipeline is None or self._pipeline_key != key:
            self._pipeline = build_pipeline(self.split, self.batch_spec(), rng=rng)
            self._pipeline_key = key
        return self._pipeline

    def make_batches(self, rng: Optional[np.random.Generator] = None) -> Iterator:
        """One epoch of training batches, routed through ``repro.data.pipeline``."""
        return iter(self.training_pipeline(rng))

    def begin_epoch(self, epoch: int) -> None:
        """Hook invoked at the start of every training epoch."""

    def after_step(self) -> None:
        """Hook invoked after every optimiser step."""

    def train_step(self, batch) -> Tensor:
        """Compute the training loss for one batch."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Inference protocol
    # ------------------------------------------------------------------ #
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        """Dense scores of every item for the given users (no gradient)."""
        raise NotImplementedError

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Scores of specific (user, item) pairs; routed through the engine."""
        return self.inference_service().score_pairs(users, items)

    def inference_service(self, refresh: bool = False) -> RecommendationService:
        """The model's serving front-end (see :mod:`repro.engine`).

        The service snapshots the final embeddings, so it is rebuilt on
        demand while the model is training and cached once it is in eval
        mode; switching modes via :meth:`train` invalidates it.
        """
        if self._service is None or refresh:
            self._service = RecommendationService(self, self.split)
        elif self.training:
            self._service.refresh(self)
        return self._service

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Top-``k`` item recommendations for a single user.

        Training items are excluded through the split's precomputed
        exclusion index (one vectorised assignment) instead of scanning the
        raw interaction arrays on every call.
        """
        return self.inference_service().recommend(int(user), k=k,
                                                  exclude_train=exclude_train)

    def train(self, mode: bool = True) -> "Recommender":
        # A mode flip drops the frozen serving snapshot; a same-mode call
        # keeps it (weight changes are handled by load_state_dict below, so a
        # defensive eval() before serving stays free).
        if mode != self.training:
            self._service = None
        return super().train(mode)

    def load_state_dict(self, state) -> None:
        # New weights invalidate any frozen serving snapshot.
        super().load_state_dict(state)
        self._service = None

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(users={self.num_users}, items={self.num_items}, "
            f"dim={self.embedding_dim})"
        )
