"""Shared recommender interface.

Every model in the library (the LayerGCN core model and all baselines)
subclasses :class:`Recommender` so that the :class:`repro.training.Trainer`,
the :class:`repro.eval.RankingEvaluator` and the benchmark harness can treat
them interchangeably.

The contract:

* ``make_batches(rng)`` yields training batches for one epoch.
* ``train_step(batch)`` returns the scalar loss :class:`Tensor` for a batch.
* ``begin_epoch(epoch)`` is called once per epoch before batching (LayerGCN
  resamples its pruned adjacency here).
* ``after_step()`` is called after each optimiser step (BUIR updates its
  momentum target network here).
* ``score_users(users)`` returns a dense ``(len(users), num_items)`` score
  matrix for evaluation, computed without building an autograd graph.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..autograd import Module, Tensor
from ..data import BprBatchIterator, DataSplit

__all__ = ["Recommender"]


class Recommender(Module):
    """Base class for all recommendation models.

    Parameters
    ----------
    split:
        Train/validation/test split the model is bound to; the training graph
        and the id space come from here.
    embedding_dim:
        Latent dimensionality ``T`` (the paper fixes 64 for all models).
    batch_size:
        Mini-batch size used by :meth:`make_batches`.
    seed:
        Seed of the model-local RNG (initialisation, negative sampling,
        edge dropout).
    """

    name = "recommender"

    def __init__(self, split: DataSplit, embedding_dim: int = 64,
                 batch_size: int = 1024, seed: int = 0) -> None:
        super().__init__()
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.split = split
        self.num_users = split.num_users
        self.num_items = split.num_items
        self.embedding_dim = int(embedding_dim)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Training protocol
    # ------------------------------------------------------------------ #
    def make_batches(self, rng: Optional[np.random.Generator] = None) -> Iterator:
        """Default: shuffled BPR (user, positive, negative) batches."""
        return iter(BprBatchIterator(self.split, batch_size=self.batch_size,
                                     rng=rng or self.rng))

    def begin_epoch(self, epoch: int) -> None:
        """Hook invoked at the start of every training epoch."""

    def after_step(self) -> None:
        """Hook invoked after every optimiser step."""

    def train_step(self, batch) -> Tensor:
        """Compute the training loss for one batch."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Inference protocol
    # ------------------------------------------------------------------ #
    def score_users(self, users: Sequence[int]) -> np.ndarray:
        """Dense scores of every item for the given users (no gradient)."""
        raise NotImplementedError

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Scores of specific (user, item) pairs; default slices score_users."""
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        scores = self.score_users(users)
        return scores[np.arange(users.size), items]

    def recommend(self, user: int, k: int = 10,
                  exclude_train: bool = True) -> List[int]:
        """Top-``k`` item recommendations for a single user."""
        scores = np.asarray(self.score_users([user]))[0].astype(np.float64)
        if exclude_train:
            seen = [item for u, item in zip(self.split.train_users, self.split.train_items)
                    if int(u) == int(user)]
            if seen:
                scores[np.asarray(seen, dtype=np.int64)] = -np.inf
        k = min(k, scores.size)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return [int(item) for item in top[np.argsort(-scores[top], kind="stable")]]

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(users={self.num_users}, items={self.num_items}, "
            f"dim={self.embedding_dim})"
        )
