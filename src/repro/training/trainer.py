"""Training loop with validation-based early stopping.

Mirrors the protocol of Section V-A-4: Adam optimiser, early stopping on the
validation score, a fixed cap on total epochs, and per-epoch loss tracking
(the batch-loss curves of Fig. 3(b) come straight from
:class:`TrainingHistory`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Adam, Optimizer, SGD
from ..data import DataSplit
from ..eval import EvaluationResult, RankingEvaluator
from ..models.base import Recommender

__all__ = ["TrainerConfig", "TrainingHistory", "Trainer"]


@dataclass
class TrainerConfig:
    """Hyper-parameters of the optimisation loop.

    Defaults are scaled-down versions of the paper's settings (learning rate
    1e-3 Adam, early stopping, validation on Recall@20).
    """

    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    optimizer: str = "adam"
    epochs: int = 50
    eval_every: int = 1
    early_stopping_patience: int = 10
    validation_metric: str = "recall@20"
    validation_ks: Sequence[int] = (10, 20, 50)
    eval_batch_size: int = 512
    #: Training-batch overrides routed into the model's
    #: :meth:`~repro.models.base.Recommender.batch_spec` via
    #: ``configure_batching`` when the Trainer is constructed.  ``None``
    #: leaves the model's current batching untouched; a set value persists
    #: on the model after this trainer (the model is reconfigured, not
    #: temporarily patched).
    batch_size: Optional[int] = None
    num_negatives: Optional[int] = None
    verbose: bool = False
    restore_best: bool = True


@dataclass
class TrainingHistory:
    """Record of one training run.

    Attributes
    ----------
    epoch_losses:
        Mean mini-batch loss of every epoch (Fig. 3(b) uses the sum; both are
        derivable from ``batch_losses``).
    batch_losses:
        Per-epoch list of every mini-batch loss.
    validation_scores:
        ``{epoch: metric_value}`` for the monitored validation metric.
    best_epoch / best_score:
        Epoch (1-based) that achieved the best validation score — the
        "best epoch" quantity plotted in Fig. 3(a).
    """

    epoch_losses: List[float] = field(default_factory=list)
    batch_losses: List[List[float]] = field(default_factory=list)
    validation_scores: Dict[int, float] = field(default_factory=dict)
    validation_results: Dict[int, EvaluationResult] = field(default_factory=dict)
    best_epoch: int = 0
    best_score: float = -np.inf
    stopped_early: bool = False
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def num_epochs_run(self) -> int:
        return len(self.epoch_losses)

    def epoch_loss_sum(self, epoch_index: int) -> float:
        """Summed batch loss of one epoch (matches the y-axis of Fig. 3(b))."""
        return float(np.sum(self.batch_losses[epoch_index]))


class Trainer:
    """Drives the epoch/batch loop of a :class:`~repro.models.base.Recommender`."""

    def __init__(self, model: Recommender, split: DataSplit,
                 config: Optional[TrainerConfig] = None,
                 callbacks: Optional[List[Callable[[int, Recommender, TrainingHistory], None]]] = None) -> None:
        self.model = model
        self.split = split
        self.config = config or TrainerConfig()
        self.callbacks = list(callbacks or [])
        if self.config.batch_size is not None or self.config.num_negatives is not None:
            model.configure_batching(batch_size=self.config.batch_size,
                                     num_negatives=self.config.num_negatives)
        self.optimizer = self._build_optimizer()
        metric, k = self._parse_metric(self.config.validation_metric)
        ks = sorted(set(list(self.config.validation_ks) + [k]))
        # One evaluator for the whole run: the engine's exclusion and
        # ground-truth indexes are built once here and reused every epoch.
        self.evaluator = RankingEvaluator(split, ks=ks, metrics=(metric,),
                                          batch_size=self.config.eval_batch_size)
        self._monitor_key = f"{metric}@{k}"

    # ------------------------------------------------------------------ #
    def _build_optimizer(self) -> Optimizer:
        parameters = list(self.model.parameters())
        name = self.config.optimizer.lower()
        if name == "adam":
            return Adam(parameters, lr=self.config.learning_rate,
                        weight_decay=self.config.weight_decay)
        if name == "sgd":
            return SGD(parameters, lr=self.config.learning_rate,
                       weight_decay=self.config.weight_decay)
        raise ValueError(f"unknown optimizer '{self.config.optimizer}'")

    @staticmethod
    def _parse_metric(spec: str):
        if "@" not in spec:
            raise ValueError("validation metric must look like 'recall@20'")
        metric, k = spec.split("@", 1)
        return metric, int(k)

    # ------------------------------------------------------------------ #
    def _validate_epoch(self, epoch: int, history: TrainingHistory) -> bool:
        """Evaluate one epoch on the validation split; True on improvement."""
        self.model.eval()
        result = self.evaluator.evaluate(self.model, which="valid")
        score = result.values.get(self._monitor_key, 0.0)
        history.validation_scores[epoch] = score
        history.validation_results[epoch] = result
        if score > history.best_score:
            history.best_score = score
            history.best_epoch = epoch
            return True
        return False

    def fit(self) -> TrainingHistory:
        """Run the full training loop and return its history."""
        history = TrainingHistory()
        best_state = None
        epochs_without_improvement = 0

        for epoch in range(1, self.config.epochs + 1):
            self.model.train()
            self.model.begin_epoch(epoch)
            batch_losses: List[float] = []
            for batch in self.model.make_batches(self.model.rng):
                self.optimizer.zero_grad()
                loss = self.model.train_step(batch)
                loss.backward()
                self.optimizer.step()
                self.model.after_step()
                batch_losses.append(float(loss.item()))

            history.batch_losses.append(batch_losses)
            epoch_loss = float(np.mean(batch_losses)) if batch_losses else 0.0
            history.epoch_losses.append(epoch_loss)

            if epoch % self.config.eval_every == 0 and self.split.num_valid > 0:
                if self._validate_epoch(epoch, history):
                    epochs_without_improvement = 0
                    if self.config.restore_best:
                        best_state = self.model.state_dict()
                else:
                    epochs_without_improvement += 1

            for callback in self.callbacks:
                callback(epoch, self.model, history)

            if self.config.verbose:
                val = history.validation_scores.get(epoch)
                val_text = f", valid {self._monitor_key}={val:.4f}" if val is not None else ""
                print(f"[{self.model.name}] epoch {epoch:3d} loss={epoch_loss:.4f}{val_text}")

            if (self.config.early_stopping_patience > 0
                    and epochs_without_improvement >= self.config.early_stopping_patience):
                history.stopped_early = True
                break

        # With eval_every > 1 the final trained epoch can fall between
        # validation points; evaluate it before restoring so best_epoch /
        # early-stop accounting sees every epoch that was actually trained.
        final_epoch = history.num_epochs_run
        if (final_epoch >= 1 and final_epoch not in history.validation_scores
                and self.split.num_valid > 0):
            if self._validate_epoch(final_epoch, history) and self.config.restore_best:
                best_state = self.model.state_dict()

        if self.config.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        if history.best_epoch == 0:
            history.best_epoch = history.num_epochs_run
        self.model.eval()
        if hasattr(self.model, "inference_service"):
            # Freeze the (possibly restored) final embeddings into the
            # model's serving snapshot so recommend()/score_pairs are ready.
            self.model.inference_service(refresh=True)
        return history
