"""Training: losses, trainer with early stopping, and recording callbacks."""

from .losses import bce_loss, bpr_loss, l2_regularization, multinomial_nll, weighted_mse_loss
from .trainer import Trainer, TrainerConfig, TrainingHistory
from .callbacks import LayerSimilarityRecorder, LayerWeightRecorder, LossRecorder

__all__ = [
    "bce_loss",
    "bpr_loss",
    "l2_regularization",
    "multinomial_nll",
    "weighted_mse_loss",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "LayerSimilarityRecorder",
    "LayerWeightRecorder",
    "LossRecorder",
]
