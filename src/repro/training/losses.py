"""Loss functions used across the models.

* :func:`bpr_loss` — pairwise Bayesian Personalised Ranking (Eq. 11).
* :func:`l2_regularization` — the λ ||X^0||² term of Eq. 12.
* :func:`bce_loss` — binary cross entropy on scores (UltraGCN-style losses).
* :func:`multinomial_nll` — the reconstruction term of MultiVAE's ELBO.
* :func:`weighted_mse_loss` — EHCF's whole-data weighted regression loss.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.functional import log_softmax, logsigmoid

__all__ = [
    "bpr_loss",
    "l2_regularization",
    "bce_loss",
    "multinomial_nll",
    "weighted_mse_loss",
]


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Pairwise BPR loss: ``-log σ(r_ui - r_uj)`` averaged over the batch (Eq. 11)."""
    difference = positive_scores - negative_scores
    return -logsigmoid(difference).mean()


def l2_regularization(*tensors: Tensor, coefficient: float = 1.0,
                      normalize_by: Optional[int] = None) -> Tensor:
    """λ * Σ ||x||² over the given tensors (the Eq. 12 regulariser).

    ``normalize_by`` optionally divides by the batch size so the strength of
    the penalty does not depend on the batch size, matching common LightGCN
    implementations.
    """
    total: Optional[Tensor] = None
    for tensor in tensors:
        term = (tensor * tensor).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("l2_regularization requires at least one tensor")
    scale = coefficient
    if normalize_by:
        scale = coefficient / float(normalize_by)
    return total * scale


def bce_loss(scores: Tensor, labels: np.ndarray, weights: Optional[np.ndarray] = None) -> Tensor:
    """Binary cross-entropy with logits, optionally weighted per element.

    Computed as ``softplus(scores) - labels * scores`` which is the stable
    form of ``-[y log σ(s) + (1-y) log(1-σ(s))]``.
    """
    labels_t = Tensor(np.asarray(labels, dtype=np.float64))
    elementwise = scores.softplus() - labels_t * scores
    if weights is not None:
        elementwise = elementwise * Tensor(np.asarray(weights, dtype=np.float64))
    return elementwise.mean()


def multinomial_nll(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Multinomial negative log-likelihood used by MultiVAE.

    ``targets`` is the binary (or count) interaction matrix of the batch; the
    loss is ``-mean_u Σ_i x_ui * log_softmax(logits)_ui``.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    log_probs = log_softmax(logits, axis=1)
    return -(targets_t * log_probs).sum(axis=1).mean()


def weighted_mse_loss(predictions: Tensor, targets: np.ndarray,
                      positive_weight: float = 1.0, negative_weight: float = 0.05) -> Tensor:
    """Whole-data weighted squared loss in the spirit of EHCF.

    Positive entries are weighted by ``positive_weight``; all missing entries
    are treated as weak negatives with ``negative_weight``, so the model is
    trained without negative sampling.
    """
    targets_arr = np.asarray(targets, dtype=np.float64)
    weights = np.where(targets_arr > 0, positive_weight, negative_weight)
    diff = predictions - Tensor(targets_arr)
    return (Tensor(weights) * diff * diff).mean()
