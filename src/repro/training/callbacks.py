"""Training callbacks used by the figure-reproduction experiments.

Callbacks are plain callables ``(epoch, model, history) -> None`` appended to
:class:`repro.training.Trainer`.  The two provided here record the per-layer
weighting trajectories that Figures 1 and 5 of the paper visualise.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["LayerWeightRecorder", "LayerSimilarityRecorder", "LossRecorder"]


class LayerWeightRecorder:
    """Records learnable layer-combination weights per epoch (Fig. 1).

    Works with any model exposing ``layer_weight_values()`` returning an array
    of per-layer weights (the learnable-weight LightGCN variant does).
    """

    def __init__(self) -> None:
        self.trajectory: List[np.ndarray] = []

    def __call__(self, epoch: int, model, history) -> None:
        if hasattr(model, "layer_weight_values"):
            self.trajectory.append(np.asarray(model.layer_weight_values(), dtype=np.float64))

    def as_array(self) -> np.ndarray:
        """(num_epochs, num_layers + 1) array of weights (ego layer first)."""
        return np.stack(self.trajectory) if self.trajectory else np.empty((0, 0))


class LayerSimilarityRecorder:
    """Records LayerGCN's mean per-layer refinement similarities (Fig. 5)."""

    def __init__(self) -> None:
        self.trajectory: List[np.ndarray] = []

    def __call__(self, epoch: int, model, history) -> None:
        if hasattr(model, "layer_similarity_values"):
            values = model.layer_similarity_values()
            if values is not None:
                self.trajectory.append(np.asarray(values, dtype=np.float64))

    def as_array(self) -> np.ndarray:
        """(num_epochs, num_layers) array of mean cosine similarities."""
        return np.stack(self.trajectory) if self.trajectory else np.empty((0, 0))


class LossRecorder:
    """Keeps the summed batch loss per epoch (the curve of Fig. 3(b))."""

    def __init__(self) -> None:
        self.epoch_loss_sums: List[float] = []

    def __call__(self, epoch: int, model, history) -> None:
        if history.batch_losses:
            self.epoch_loss_sums.append(float(np.sum(history.batch_losses[-1])))

    def as_dict(self) -> Dict[int, float]:
        return {epoch + 1: value for epoch, value in enumerate(self.epoch_loss_sums)}
