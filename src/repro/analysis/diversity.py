"""Recommendation-list diagnostics beyond accuracy.

These are standard companions to Recall/NDCG used when analysing GCN
recommenders: catalogue coverage, popularity bias (degree-sensitive pruning is
expected to reduce it), novelty and the Gini coefficient of recommended-item
exposure.  They operate on the top-K lists a trained model produces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data import DataSplit

__all__ = [
    "catalog_coverage",
    "gini_coefficient",
    "novelty",
    "popularity_bias",
    "recommendation_diagnostics",
]


def catalog_coverage(recommendations: Sequence[Sequence[int]], num_items: int) -> float:
    """Fraction of the catalogue that appears in at least one top-K list."""
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    recommended = {int(item) for items in recommendations for item in items}
    return len(recommended) / num_items


def gini_coefficient(recommendations: Sequence[Sequence[int]], num_items: int) -> float:
    """Gini coefficient of item exposure across all top-K lists (0 = equal, 1 = concentrated)."""
    counts = np.zeros(num_items, dtype=np.float64)
    for items in recommendations:
        for item in items:
            counts[int(item)] += 1.0
    if counts.sum() == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = num_items
    cumulative = np.cumsum(sorted_counts)
    # Standard Gini formula on the Lorenz curve of exposures.
    return float((n + 1 - 2 * np.sum(cumulative) / cumulative[-1]) / n)


def popularity_bias(recommendations: Sequence[Sequence[int]],
                    item_degrees: np.ndarray) -> float:
    """Average training popularity (degree) of the recommended items.

    Higher values mean the model concentrates on popular items; DegreeDrop is
    expected to reduce this compared with uniform pruning.
    """
    degrees = np.asarray(item_degrees, dtype=np.float64)
    values: List[float] = []
    for items in recommendations:
        if len(items):
            values.append(float(np.mean(degrees[np.asarray(items, dtype=np.int64)])))
    return float(np.mean(values)) if values else 0.0


def novelty(recommendations: Sequence[Sequence[int]], item_degrees: np.ndarray,
            num_users: int) -> float:
    """Mean self-information -log2(popularity) of recommended items.

    Popularity is the fraction of users who interacted with the item in the
    training data; rarely-seen items carry more novelty.
    """
    degrees = np.asarray(item_degrees, dtype=np.float64)
    probabilities = np.clip(degrees / max(num_users, 1), 1e-12, 1.0)
    information = -np.log2(probabilities)
    values: List[float] = []
    for items in recommendations:
        if len(items):
            values.append(float(np.mean(information[np.asarray(items, dtype=np.int64)])))
    return float(np.mean(values)) if values else 0.0


def recommendation_diagnostics(model, split: DataSplit, k: int = 20,
                               users: Optional[Iterable[int]] = None) -> Dict[str, float]:
    """Compute all list-level diagnostics for a trained model.

    ``model`` must expose ``recommend(user, k)`` (every
    :class:`~repro.models.base.Recommender` does).
    """
    if users is None:
        users = range(split.num_users)
    recommendations = [model.recommend(int(user), k=k) for user in users]
    item_degrees = split.train_graph().item_degrees()
    return {
        "coverage": catalog_coverage(recommendations, split.num_items),
        "gini": gini_coefficient(recommendations, split.num_items),
        "popularity_bias": popularity_bias(recommendations, item_degrees),
        "novelty": novelty(recommendations, item_degrees, split.num_users),
    }
