"""Quantitative over-smoothing diagnostics.

The paper argues (Section IV, Propositions 1-2) that LayerGCN alleviates the
over-smoothing LightGCN suffers from.  This module provides the measurements
used to check that claim empirically on trained models:

* :func:`mean_average_distance` (MAD) — the average cosine distance between
  connected node pairs; over-smoothed representations drive it towards zero.
* :func:`embedding_variance` — total variance of (row-normalised) embeddings;
  collapse towards a single direction drives it towards zero.
* :func:`neighbor_divergence` — the mean L2 distance between the endpoints of
  each edge, the quantity that Eq. 15 of the paper says vanishes for deep
  LightGCN stacks.
* :func:`ego_drift` — mean distance between final embeddings and the ego
  layer, the quantity bounded by the refinement analysis (Eq. 17-20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..graph import BipartiteGraph

__all__ = [
    "mean_average_distance",
    "embedding_variance",
    "neighbor_divergence",
    "ego_drift",
    "SmoothingReport",
    "smoothing_report",
]


def _normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, eps)


def mean_average_distance(embeddings: np.ndarray, graph: BipartiteGraph) -> float:
    """Mean cosine distance between the embeddings of connected node pairs.

    A value near 0 means neighbouring nodes have (nearly) identical directions
    — the signature of over-smoothing.
    """
    if graph.num_edges == 0:
        return 0.0
    normalized = _normalize_rows(np.asarray(embeddings, dtype=np.float64))
    user_nodes, item_nodes = graph.edge_endpoints()
    cosines = np.sum(normalized[user_nodes] * normalized[item_nodes], axis=1)
    return float(np.mean(1.0 - cosines))


def embedding_variance(embeddings: np.ndarray, normalize: bool = True) -> float:
    """Total variance of the embedding rows (optionally after L2 normalisation)."""
    matrix = np.asarray(embeddings, dtype=np.float64)
    if normalize:
        matrix = _normalize_rows(matrix)
    return float(np.var(matrix, axis=0).sum())


def neighbor_divergence(embeddings: np.ndarray, graph: BipartiteGraph,
                        p: float = 2.0) -> float:
    """Mean Lp distance between the endpoints of every edge (Eq. 15's quantity)."""
    if graph.num_edges == 0:
        return 0.0
    matrix = np.asarray(embeddings, dtype=np.float64)
    user_nodes, item_nodes = graph.edge_endpoints()
    differences = matrix[user_nodes] - matrix[item_nodes]
    return float(np.mean(np.linalg.norm(differences, ord=p, axis=1)))


def ego_drift(final_embeddings: np.ndarray, ego_embeddings: np.ndarray) -> float:
    """Mean L2 distance between final and ego embeddings (the d^l of Eq. 17).

    Both matrices are row-normalised first so the drift measures directional
    change rather than scale (the sum readout inflates norms mechanically).
    """
    final = _normalize_rows(np.asarray(final_embeddings, dtype=np.float64))
    ego = _normalize_rows(np.asarray(ego_embeddings, dtype=np.float64))
    if final.shape != ego.shape:
        raise ValueError("final and ego embeddings must have the same shape")
    return float(np.mean(np.linalg.norm(final - ego, axis=1)))


@dataclass(frozen=True)
class SmoothingReport:
    """Bundle of the over-smoothing diagnostics for one model."""

    model: str
    mad: float
    variance: float
    neighbor_distance: float
    ego_distance: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "mad": self.mad,
            "variance": self.variance,
            "neighbor_distance": self.neighbor_distance,
            "ego_distance": self.ego_distance,
        }


def smoothing_report(model, graph: Optional[BipartiteGraph] = None,
                     name: Optional[str] = None) -> SmoothingReport:
    """Compute all diagnostics for a trained graph recommender.

    ``model`` must expose ``final_embeddings()`` and an ``embeddings``
    parameter (all :class:`~repro.models.graph_base.GraphRecommender`
    subclasses do).
    """
    graph = graph or model.graph
    final = model.final_embeddings()
    ego = model.embeddings.data
    return SmoothingReport(
        model=name or getattr(model, "name", type(model).__name__),
        mad=mean_average_distance(final, graph),
        variance=embedding_variance(final),
        neighbor_distance=neighbor_divergence(final, graph),
        ego_distance=ego_drift(final, ego),
    )
