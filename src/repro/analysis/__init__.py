"""Analysis utilities: over-smoothing diagnostics and ranking diagnostics."""

from .smoothing import (
    SmoothingReport,
    ego_drift,
    embedding_variance,
    mean_average_distance,
    neighbor_divergence,
    smoothing_report,
)
from .diversity import (
    catalog_coverage,
    gini_coefficient,
    novelty,
    popularity_bias,
    recommendation_diagnostics,
)

__all__ = [
    "SmoothingReport",
    "ego_drift",
    "embedding_variance",
    "mean_average_distance",
    "neighbor_divergence",
    "smoothing_report",
    "catalog_coverage",
    "gini_coefficient",
    "novelty",
    "popularity_bias",
    "recommendation_diagnostics",
]
