"""Negative sampling and mini-batch iteration for implicit feedback training.

The BPR-style models (BPR-MF, NGCF, LR-GCCF, LightGCN, IMP-GCN, LayerGCN)
train on triples ``(u, i, j)`` where ``i`` is an observed interaction and
``j`` a sampled negative (Section III-B, "The Loss Function").  UltraGCN uses
multiple negatives per positive, and EHCF/MultiVAE consume whole interaction
rows; all three access patterns are provided here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import DataSplit

__all__ = ["NegativeSampler", "BprBatchIterator", "UserBatchIterator"]


class NegativeSampler:
    """Samples items a user has *not* interacted with in the training data."""

    def __init__(self, positive_sets: Sequence[set], num_items: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        self.positive_sets = list(positive_sets)
        self.num_items = int(num_items)
        self.rng = rng or np.random.default_rng()

    @classmethod
    def from_split(cls, split: DataSplit, rng: Optional[np.random.Generator] = None) -> "NegativeSampler":
        return cls(split.train_positive_sets(), split.num_items, rng=rng)

    def sample_one(self, user: int) -> int:
        """One negative item for ``user`` via rejection sampling."""
        positives = self.positive_sets[user]
        if len(positives) >= self.num_items:
            # Degenerate user that interacted with everything: fall back to a
            # uniform item so training can proceed.
            return int(self.rng.integers(self.num_items))
        while True:
            candidate = int(self.rng.integers(self.num_items))
            if candidate not in positives:
                return candidate

    def sample(self, users: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Vectorised sampling: ``(len(users), num_negatives)`` negatives.

        Candidates are drawn uniformly and re-drawn only where they collide
        with a training positive, which is fast for the sparse datasets the
        paper uses.
        """
        users = np.asarray(users, dtype=np.int64)
        negatives = self.rng.integers(self.num_items, size=(users.size, num_negatives))
        for row, user in enumerate(users):
            positives = self.positive_sets[user]
            if not positives:
                continue
            for col in range(num_negatives):
                while int(negatives[row, col]) in positives:
                    negatives[row, col] = self.rng.integers(self.num_items)
        if num_negatives == 1:
            return negatives[:, 0]
        return negatives


class BprBatchIterator:
    """Iterates shuffled ``(users, pos_items, neg_items)`` mini-batches.

    One pass over the iterator visits every training interaction exactly once
    (one epoch), pairing each positive with a freshly sampled negative, which
    mirrors the pairwise BPR training loop of the paper.
    """

    def __init__(self, split: DataSplit, batch_size: int = 1024,
                 num_negatives: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.num_negatives = int(num_negatives)
        self.rng = rng or np.random.default_rng()
        self.sampler = NegativeSampler.from_split(split, rng=self.rng)

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_train / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        order = self.rng.permutation(self.split.num_train)
        users = self.split.train_users[order]
        items = self.split.train_items[order]
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            batch_items = items[start:start + self.batch_size]
            batch_negatives = self.sampler.sample(batch_users, self.num_negatives)
            yield batch_users, batch_items, batch_negatives


class UserBatchIterator:
    """Iterates batches of user ids together with their binary interaction rows.

    Used by the autoencoder-style baselines (MultiVAE, EHCF) that reconstruct
    whole interaction vectors rather than scoring sampled pairs.
    """

    def __init__(self, split: DataSplit, batch_size: int = 256,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.rng = rng or np.random.default_rng()
        self.shuffle = shuffle
        self._interaction_rows = self._build_rows(split)

    @staticmethod
    def _build_rows(split: DataSplit) -> List[np.ndarray]:
        rows: List[List[int]] = [[] for _ in range(split.num_users)]
        for user, item in zip(split.train_users, split.train_items):
            rows[int(user)].append(int(item))
        return [np.asarray(sorted(set(items)), dtype=np.int64) for items in rows]

    def interaction_row(self, user: int) -> np.ndarray:
        """Dense binary vector of the user's training interactions."""
        row = np.zeros(self.split.num_items, dtype=np.float64)
        row[self._interaction_rows[user]] = 1.0
        return row

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_users / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        users = np.arange(self.split.num_users)
        if self.shuffle:
            users = self.rng.permutation(users)
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            matrix = np.zeros((batch_users.size, self.split.num_items), dtype=np.float64)
            for row_index, user in enumerate(batch_users):
                matrix[row_index, self._interaction_rows[int(user)]] = 1.0
            yield batch_users, matrix
