"""Back-compat batching entry points over :mod:`repro.data.pipeline`.

The real implementations — the fully vectorized :class:`NegativeSampler` and
the :class:`~repro.data.pipeline.BatchPipeline` family — live in
:mod:`repro.data.pipeline`; the historical pure-Python loop versions are
preserved in :mod:`repro.data.reference_sampling` as the behavioural oracle.
This module keeps the legacy class names, constructor signatures and batch
shapes working (``BprBatchIterator(split, batch_size, num_negatives, rng)``
and ``UserBatchIterator(split, batch_size, rng, shuffle)``) by mapping them
onto pipeline specs, so existing construct-and-iterate callers upgrade to
the vectorized path unchanged.  Two deliberate narrowings: ``num_negatives``
/ ``shuffle`` are read-only properties now (the spec is frozen — build a new
iterator to retune), and ``NegativeSampler`` exposes a CSR ``index`` instead
of the old ``positive_sets`` list.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .dataset import DataSplit
from .pipeline import BatchSpec, BprPipeline, NegativeSampler, UserRowPipeline

__all__ = ["NegativeSampler", "BprBatchIterator", "UserBatchIterator"]


class BprBatchIterator(BprPipeline):
    """Legacy name for :class:`repro.data.pipeline.BprPipeline`.

    Keeps the historical batch shapes exactly: users/positives stay ``(B,)``
    and negatives are ``(B,)`` for one negative or ``(B, n)`` for several
    (``BprPipeline`` itself flattens multi-negative draws into aligned
    triples for the pairwise ``train_step`` contract).
    """

    def __init__(self, split: DataSplit, batch_size: int = 1024,
                 num_negatives: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(split,
                         BatchSpec(kind="bpr", batch_size=batch_size,
                                   num_negatives=num_negatives),
                         rng=rng)

    def __iter__(self):
        return self._sampled_batches()

    @property
    def num_negatives(self) -> int:
        return self.spec.num_negatives


class UserBatchIterator(UserRowPipeline):
    """Legacy name for :class:`repro.data.pipeline.UserRowPipeline`."""

    def __init__(self, split: DataSplit, batch_size: int = 256,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> None:
        super().__init__(split,
                         BatchSpec(kind="user_rows", batch_size=batch_size,
                                   shuffle=shuffle),
                         rng=rng)

    @property
    def shuffle(self) -> bool:
        return self.spec.shuffle
