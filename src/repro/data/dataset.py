"""Interaction dataset containers.

An :class:`InteractionDataset` stores the raw (user, item, timestamp) triples
of one benchmark dataset plus an id-compaction map; a :class:`DataSplit`
stores the chronological train/validation/test partition used everywhere in
the evaluation (Section V-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph import BipartiteGraph

__all__ = ["InteractionDataset", "DataSplit"]


class InteractionDataset:
    """A set of timestamped implicit-feedback interactions.

    Parameters
    ----------
    users, items:
        Integer arrays of equal length; ids need not be contiguous — they are
        compacted on construction.
    timestamps:
        Optional float array used for the chronological split.  If omitted,
        the original ordering is used as a proxy for time.
    name:
        Human-readable dataset name (e.g. ``"mooc"``).
    """

    def __init__(
        self,
        users: Sequence[int],
        items: Sequence[int],
        timestamps: Optional[Sequence[float]] = None,
        name: str = "dataset",
    ) -> None:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.shape != items.shape:
            raise ValueError("users and items must have the same length")
        if timestamps is None:
            timestamps = np.arange(users.size, dtype=np.float64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.shape != users.shape:
            raise ValueError("timestamps must align with users/items")

        unique_users, user_codes = np.unique(users, return_inverse=True)
        unique_items, item_codes = np.unique(items, return_inverse=True)
        self.name = name
        self.users = user_codes.astype(np.int64)
        self.items = item_codes.astype(np.int64)
        self.timestamps = timestamps
        self.user_id_map: Dict[int, int] = {int(raw): idx for idx, raw in enumerate(unique_users)}
        self.item_id_map: Dict[int, int] = {int(raw): idx for idx, raw in enumerate(unique_items)}

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return len(self.user_id_map)

    @property
    def num_items(self) -> int:
        return len(self.item_id_map)

    @property
    def num_interactions(self) -> int:
        return int(self.users.size)

    @property
    def sparsity(self) -> float:
        """1 - |interactions| / (num_users * num_items) as reported in Table I."""
        possible = self.num_users * self.num_items
        if possible == 0:
            return 1.0
        return 1.0 - self.num_interactions / possible

    def __len__(self) -> int:
        return self.num_interactions

    def __repr__(self) -> str:
        return (
            f"InteractionDataset(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, interactions={self.num_interactions}, "
            f"sparsity={self.sparsity:.4%})"
        )

    # ------------------------------------------------------------------ #
    def to_graph(self) -> BipartiteGraph:
        """Full-dataset bipartite graph (train+valid+test)."""
        return BipartiteGraph(self.num_users, self.num_items, self.users, self.items)

    def chronological_order(self) -> np.ndarray:
        """Indices that sort interactions by timestamp (stable)."""
        return np.argsort(self.timestamps, kind="stable")

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "InteractionDataset":
        """New dataset containing only the given interaction rows (ids preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        dataset = InteractionDataset.__new__(InteractionDataset)
        dataset.name = name or self.name
        dataset.users = self.users[indices].copy()
        dataset.items = self.items[indices].copy()
        dataset.timestamps = self.timestamps[indices].copy()
        dataset.user_id_map = dict(self.user_id_map)
        dataset.item_id_map = dict(self.item_id_map)
        return dataset

    def table_row(self) -> Dict[str, object]:
        """One row of Table I (dataset statistics)."""
        return {
            "dataset": self.name,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "num_interactions": self.num_interactions,
            "sparsity": self.sparsity,
        }


@dataclass
class DataSplit:
    """Chronological train/validation/test partition of a dataset.

    All three partitions share the same user/item id space (sized by the
    training data after cold-start filtering, see
    :func:`repro.data.splits.chronological_split`).
    """

    name: str
    num_users: int
    num_items: int
    train_users: np.ndarray
    train_items: np.ndarray
    valid_users: np.ndarray
    valid_items: np.ndarray
    test_users: np.ndarray
    test_items: np.ndarray
    extra: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_train(self) -> int:
        return int(self.train_users.size)

    @property
    def num_valid(self) -> int:
        return int(self.valid_users.size)

    @property
    def num_test(self) -> int:
        return int(self.test_users.size)

    def train_graph(self) -> BipartiteGraph:
        """Bipartite graph over the *training* interactions only."""
        return BipartiteGraph(self.num_users, self.num_items, self.train_users, self.train_items)

    def ground_truth(self, which: str = "test") -> Dict[int, List[int]]:
        """Mapping user -> list of held-out items in the chosen partition."""
        if which == "test":
            users, items = self.test_users, self.test_items
        elif which in ("valid", "validation"):
            users, items = self.valid_users, self.valid_items
        elif which == "train":
            users, items = self.train_users, self.train_items
        else:
            raise ValueError("which must be one of 'train', 'valid', 'test'")
        truth: Dict[int, List[int]] = {}
        for user, item in zip(users, items):
            truth.setdefault(int(user), []).append(int(item))
        return truth

    def train_positive_sets(self) -> List[set]:
        """Per-user set of training items (for negative sampling and ranking masks)."""
        sets: List[set] = [set() for _ in range(self.num_users)]
        for user, item in zip(self.train_users, self.train_items):
            sets[int(user)].add(int(item))
        return sets

    def __repr__(self) -> str:
        return (
            f"DataSplit(name={self.name!r}, users={self.num_users}, items={self.num_items}, "
            f"train={self.num_train}, valid={self.num_valid}, test={self.num_test})"
        )
