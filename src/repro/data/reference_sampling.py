"""Reference (pure-Python loop) training-data implementations.

These are the historical :class:`NegativeSampler`, :class:`BprBatchIterator`
and :class:`UserBatchIterator`, kept verbatim as the behavioural oracle for
the vectorized pipeline in :mod:`repro.data.pipeline` — the same pattern as
:mod:`repro.eval.reference` on the serving side.  The distributional parity
tests and ``benchmarks/bench_training_throughput.py`` assert that the
pipeline samples from exactly the same distribution (negatives never collide
with training positives, uniform marginal over non-positives) while being at
least 5x faster.

Do not optimise this module; its value is being slow and obviously correct.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import DataSplit

__all__ = [
    "ReferenceNegativeSampler",
    "ReferenceBprBatchIterator",
    "ReferenceUserBatchIterator",
]


class ReferenceNegativeSampler:
    """Samples items a user has *not* interacted with, via per-element sets."""

    def __init__(self, positive_sets: Sequence[set], num_items: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        self.positive_sets = list(positive_sets)
        self.num_items = int(num_items)
        self.rng = rng or np.random.default_rng()

    @classmethod
    def from_split(cls, split: DataSplit,
                   rng: Optional[np.random.Generator] = None) -> "ReferenceNegativeSampler":
        return cls(split.train_positive_sets(), split.num_items, rng=rng)

    def sample_one(self, user: int) -> int:
        """One negative item for ``user`` via rejection sampling."""
        positives = self.positive_sets[user]
        if len(positives) >= self.num_items:
            # Degenerate user that interacted with everything: fall back to a
            # uniform item so training can proceed.
            return int(self.rng.integers(self.num_items))
        while True:
            candidate = int(self.rng.integers(self.num_items))
            if candidate not in positives:
                return candidate

    def sample(self, users: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Per-element rejection sampling over ``(len(users), num_negatives)``."""
        users = np.asarray(users, dtype=np.int64)
        negatives = self.rng.integers(self.num_items, size=(users.size, num_negatives))
        for row, user in enumerate(users):
            positives = self.positive_sets[user]
            if not positives:
                continue
            for col in range(num_negatives):
                while int(negatives[row, col]) in positives:
                    negatives[row, col] = self.rng.integers(self.num_items)
        if num_negatives == 1:
            return negatives[:, 0]
        return negatives


class ReferenceBprBatchIterator:
    """Shuffled ``(users, pos_items, neg_items)`` batches via the loop sampler."""

    def __init__(self, split: DataSplit, batch_size: int = 1024,
                 num_negatives: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.num_negatives = int(num_negatives)
        self.rng = rng or np.random.default_rng()
        self.sampler = ReferenceNegativeSampler.from_split(split, rng=self.rng)

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_train / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        order = self.rng.permutation(self.split.num_train)
        users = self.split.train_users[order]
        items = self.split.train_items[order]
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            batch_items = items[start:start + self.batch_size]
            batch_negatives = self.sampler.sample(batch_users, self.num_negatives)
            yield batch_users, batch_items, batch_negatives


class ReferenceUserBatchIterator:
    """User-id batches with dense rows built one user at a time."""

    def __init__(self, split: DataSplit, batch_size: int = 256,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.split = split
        self.batch_size = int(batch_size)
        self.rng = rng or np.random.default_rng()
        self.shuffle = shuffle
        self._interaction_rows = self._build_rows(split)

    @staticmethod
    def _build_rows(split: DataSplit) -> List[np.ndarray]:
        rows: List[List[int]] = [[] for _ in range(split.num_users)]
        for user, item in zip(split.train_users, split.train_items):
            rows[int(user)].append(int(item))
        return [np.asarray(sorted(set(items)), dtype=np.int64) for items in rows]

    def interaction_row(self, user: int) -> np.ndarray:
        """Dense binary vector of the user's training interactions."""
        row = np.zeros(self.split.num_items, dtype=np.float64)
        row[self._interaction_rows[user]] = 1.0
        return row

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_users / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        users = np.arange(self.split.num_users)
        if self.shuffle:
            users = self.rng.permutation(users)
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            matrix = np.zeros((batch_users.size, self.split.num_items), dtype=np.float64)
            for row_index, user in enumerate(batch_users):
                matrix[row_index, self._interaction_rows[int(user)]] = 1.0
            yield batch_users, matrix
