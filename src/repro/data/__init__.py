"""Data substrate: datasets, splits, samplers, loaders and synthetic generators."""

from .dataset import DataSplit, InteractionDataset
from .splits import chronological_split, k_core_filter, leave_last_out_split
from .sampling import BprBatchIterator, NegativeSampler, UserBatchIterator
from .synthetic import PRESETS, SyntheticConfig, dataset_preset, generate_dataset, list_presets
from .loaders import DATASET_CORE_SETTINGS, load_interactions_csv, prepare_split

__all__ = [
    "DataSplit",
    "InteractionDataset",
    "chronological_split",
    "k_core_filter",
    "leave_last_out_split",
    "BprBatchIterator",
    "NegativeSampler",
    "UserBatchIterator",
    "PRESETS",
    "SyntheticConfig",
    "dataset_preset",
    "generate_dataset",
    "list_presets",
    "DATASET_CORE_SETTINGS",
    "load_interactions_csv",
    "prepare_split",
]
