"""Data substrate: datasets, splits, samplers, loaders and synthetic generators."""

from .dataset import DataSplit, InteractionDataset
from .splits import chronological_split, k_core_filter, leave_last_out_split
from .pipeline import (
    BatchPipeline,
    BatchSpec,
    BprPipeline,
    MultiNegativePipeline,
    NegativeSampler,
    UserRowPipeline,
    build_pipeline,
)
from .reference_sampling import (
    ReferenceBprBatchIterator,
    ReferenceNegativeSampler,
    ReferenceUserBatchIterator,
)
from .sampling import BprBatchIterator, UserBatchIterator
from .synthetic import PRESETS, SyntheticConfig, dataset_preset, generate_dataset, list_presets
from .loaders import DATASET_CORE_SETTINGS, load_interactions_csv, prepare_split

__all__ = [
    "DataSplit",
    "InteractionDataset",
    "chronological_split",
    "k_core_filter",
    "leave_last_out_split",
    "BatchPipeline",
    "BatchSpec",
    "BprPipeline",
    "MultiNegativePipeline",
    "UserRowPipeline",
    "build_pipeline",
    "BprBatchIterator",
    "NegativeSampler",
    "UserBatchIterator",
    "ReferenceBprBatchIterator",
    "ReferenceNegativeSampler",
    "ReferenceUserBatchIterator",
    "PRESETS",
    "SyntheticConfig",
    "dataset_preset",
    "generate_dataset",
    "list_presets",
    "DATASET_CORE_SETTINGS",
    "load_interactions_csv",
    "prepare_split",
]
