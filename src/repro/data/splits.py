"""Dataset splitting and filtering utilities.

The paper's protocol (Section V-A):

1. Sort all interactions chronologically.
2. First 70% → train, next 10% → validation, last 20% → test.
3. Remove cold-start users/items from validation and test (i.e. users/items
   that never appear in the training partition).
4. Games/Food are 5-core filtered, Yelp is 10-core filtered before splitting.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .dataset import DataSplit, InteractionDataset

__all__ = ["k_core_filter", "chronological_split", "leave_last_out_split"]


def k_core_filter(dataset: InteractionDataset, k_user: int = 5, k_item: int = 5,
                  max_iterations: int = 50) -> InteractionDataset:
    """Iteratively remove users/items with fewer than ``k`` interactions.

    The filter alternates user- and item-side pruning until both constraints
    hold (or ``max_iterations`` is hit), matching the "5-core setting on both
    items and users" preprocessing used for the Amazon datasets.
    """
    users = dataset.users.copy()
    items = dataset.items.copy()
    timestamps = dataset.timestamps.copy()

    for _ in range(max_iterations):
        if users.size == 0:
            break
        user_counts = np.bincount(users)
        item_counts = np.bincount(items)
        keep = (user_counts[users] >= k_user) & (item_counts[items] >= k_item)
        if keep.all():
            break
        users, items, timestamps = users[keep], items[keep], timestamps[keep]

    return InteractionDataset(users, items, timestamps, name=dataset.name)


def chronological_split(
    dataset: InteractionDataset,
    train_ratio: float = 0.7,
    valid_ratio: float = 0.1,
) -> DataSplit:
    """Chronological 70/10/20 split with cold-start filtering.

    Users and items are re-indexed so the id space covers exactly the entities
    that appear in the *training* partition; validation/test interactions that
    reference unseen users or items are dropped, as in the paper.
    """
    if not 0.0 < train_ratio < 1.0 or not 0.0 <= valid_ratio < 1.0:
        raise ValueError("ratios must lie in (0, 1)")
    if train_ratio + valid_ratio >= 1.0:
        raise ValueError("train_ratio + valid_ratio must be < 1")

    order = dataset.chronological_order()
    users = dataset.users[order]
    items = dataset.items[order]

    total = users.size
    train_end = int(round(total * train_ratio))
    valid_end = int(round(total * (train_ratio + valid_ratio)))
    train_end = max(1, min(total, train_end))
    valid_end = max(train_end, min(total, valid_end))

    train_users_raw, train_items_raw = users[:train_end], items[:train_end]
    valid_users_raw, valid_items_raw = users[train_end:valid_end], items[train_end:valid_end]
    test_users_raw, test_items_raw = users[valid_end:], items[valid_end:]

    # Re-index over the entities present in training data.
    unique_train_users = np.unique(train_users_raw)
    unique_train_items = np.unique(train_items_raw)
    user_map = {int(raw): idx for idx, raw in enumerate(unique_train_users)}
    item_map = {int(raw): idx for idx, raw in enumerate(unique_train_items)}

    def remap(raw_users: np.ndarray, raw_items: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        kept_users = []
        kept_items = []
        for user, item in zip(raw_users, raw_items):
            mapped_user = user_map.get(int(user))
            mapped_item = item_map.get(int(item))
            if mapped_user is None or mapped_item is None:
                continue
            kept_users.append(mapped_user)
            kept_items.append(mapped_item)
        return (np.asarray(kept_users, dtype=np.int64), np.asarray(kept_items, dtype=np.int64))

    train_users = np.asarray([user_map[int(u)] for u in train_users_raw], dtype=np.int64)
    train_items = np.asarray([item_map[int(i)] for i in train_items_raw], dtype=np.int64)
    valid_users, valid_items = remap(valid_users_raw, valid_items_raw)
    test_users, test_items = remap(test_users_raw, test_items_raw)

    return DataSplit(
        name=dataset.name,
        num_users=len(user_map),
        num_items=len(item_map),
        train_users=train_users,
        train_items=train_items,
        valid_users=valid_users,
        valid_items=valid_items,
        test_users=test_users,
        test_items=test_items,
        extra={"train_ratio": train_ratio, "valid_ratio": valid_ratio},
    )


def leave_last_out_split(dataset: InteractionDataset) -> DataSplit:
    """Per-user leave-last-out split (kept as an alternative protocol).

    For every user the chronologically last interaction goes to the test set,
    the second-to-last to validation and the rest to training.  Users with
    fewer than three interactions contribute to training only.  This protocol
    is not used in the paper's main tables but is handy for quick sanity
    checks and is exercised by the unit tests.
    """
    order = dataset.chronological_order()
    users = dataset.users[order]
    items = dataset.items[order]

    per_user: Dict[int, list] = {}
    for position, (user, item) in enumerate(zip(users, items)):
        per_user.setdefault(int(user), []).append((position, int(item)))

    train_users, train_items = [], []
    valid_users, valid_items = [], []
    test_users, test_items = [], []
    for user, interactions in per_user.items():
        if len(interactions) < 3:
            for _, item in interactions:
                train_users.append(user)
                train_items.append(item)
            continue
        for _, item in interactions[:-2]:
            train_users.append(user)
            train_items.append(item)
        valid_users.append(user)
        valid_items.append(interactions[-2][1])
        test_users.append(user)
        test_items.append(interactions[-1][1])

    return DataSplit(
        name=dataset.name,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        train_users=np.asarray(train_users, dtype=np.int64),
        train_items=np.asarray(train_items, dtype=np.int64),
        valid_users=np.asarray(valid_users, dtype=np.int64),
        valid_items=np.asarray(valid_items, dtype=np.int64),
        test_users=np.asarray(test_users, dtype=np.int64),
        test_items=np.asarray(test_items, dtype=np.int64),
        extra={"protocol": "leave-last-out"},
    )
