"""Synthetic dataset generators standing in for the paper's public datasets.

The paper evaluates on MOOC, Amazon Video Games, Amazon Grocery & Gourmet Food
and Yelp (Table I).  Those dumps are not available offline, so this module
generates implicit-feedback datasets whose *shape* matches each original:

============  ===========================  =================================
Preset        Original characteristic      What the generator reproduces
============  ===========================  =================================
``mooc``      dense start-up platform,     user/item ratio of tens-to-one,
              82.5k users / 1.3k items,    low sparsity, items with very
              sparsity 99.57%              high degrees (hub courses)
``games``     sparse Amazon category,      balanced user/item ratio, long-tail
              sparsity 99.95%              item popularity, 5-core filtered
``food``      larger, sparser Amazon       more items than games, higher
              category, sparsity 99.98%    sparsity
``yelp``      largest and most skewed,     heavy power-law item degrees,
              sparsity 99.95%              10-core filtered
============  ===========================  =================================

The graph sizes are scaled down so CPU training is feasible, but sparsity and
degree-skew orderings between presets are preserved — these are what the
paper's DegreeDrop analysis (Fig. 4) and dense-vs-sparse comparisons rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .dataset import InteractionDataset

__all__ = ["SyntheticConfig", "generate_dataset", "dataset_preset", "PRESETS", "list_presets"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic implicit-feedback generator.

    Attributes
    ----------
    num_users, num_items:
        Partition sizes of the bipartite graph.
    num_interactions:
        Target number of (user, item) interactions before de-duplication.
    user_alpha, item_alpha:
        Power-law exponents of the user activity / item popularity
        distributions; larger values produce heavier skew.
    preference_dim:
        Dimensionality of the latent preference space used to correlate users
        and items (so that collaborative structure exists to be learned).
    preference_strength:
        How strongly the latent space shapes interaction probabilities.
        ``0`` yields popularity-only (structureless) data.
    noise_ratio:
        Fraction of interactions re-drawn uniformly at random, modelling the
        "natural noise" the paper's DegreeDrop targets.
    """

    num_users: int = 400
    num_items: int = 200
    num_interactions: int = 6000
    user_alpha: float = 1.0
    item_alpha: float = 1.0
    preference_dim: int = 8
    preference_strength: float = 3.0
    noise_ratio: float = 0.05
    name: str = "synthetic"


def _power_law_weights(size: int, alpha: float, rng: np.random.Generator) -> np.ndarray:
    """Normalised popularity weights following a Zipf-like power law."""
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_dataset(config: SyntheticConfig, seed: int = 0) -> InteractionDataset:
    """Generate a synthetic implicit-feedback dataset.

    The generative process:

    1. Draw user activity and item popularity weights from power laws.
    2. Draw latent preference vectors for users and items; the probability of
       user ``u`` interacting with item ``i`` mixes popularity with the
       softmax of their preference affinity.
    3. Sample interactions, then re-draw a ``noise_ratio`` fraction uniformly.
    4. Assign increasing timestamps with per-user jitter so a chronological
       split is meaningful.
    """
    rng = np.random.default_rng(seed)

    user_weights = _power_law_weights(config.num_users, config.user_alpha, rng)
    item_weights = _power_law_weights(config.num_items, config.item_alpha, rng)

    user_factors = rng.normal(size=(config.num_users, config.preference_dim))
    item_factors = rng.normal(size=(config.num_items, config.preference_dim))

    users = rng.choice(config.num_users, size=config.num_interactions, p=user_weights)

    # For each sampled user, pick an item from a mixture of global popularity
    # and the user's preference-driven distribution.
    items = np.empty(config.num_interactions, dtype=np.int64)
    log_popularity = np.log(item_weights + 1e-12)
    for index, user in enumerate(users):
        affinity = item_factors @ user_factors[user]
        logits = log_popularity + config.preference_strength * affinity / np.sqrt(config.preference_dim)
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        items[index] = rng.choice(config.num_items, p=probabilities)

    # Natural noise: re-draw a fraction of item choices uniformly.
    if config.noise_ratio > 0:
        noisy = rng.random(config.num_interactions) < config.noise_ratio
        items[noisy] = rng.integers(config.num_items, size=int(noisy.sum()))

    # Timestamps: globally increasing with jitter, so early interactions tend
    # to be "older" — this makes the 70/10/20 chronological split non-trivial.
    base = np.sort(rng.uniform(0.0, 1.0, size=config.num_interactions))
    jitter = rng.normal(scale=0.01, size=config.num_interactions)
    timestamps = base + jitter

    # Deduplicate exact (user, item) repeats while keeping first occurrence,
    # mirroring the binary implicit-feedback setting.
    seen = set()
    keep = np.zeros(config.num_interactions, dtype=bool)
    for index, (user, item) in enumerate(zip(users, items)):
        key = (int(user), int(item))
        if key not in seen:
            seen.add(key)
            keep[index] = True

    return InteractionDataset(users[keep], items[keep], timestamps[keep], name=config.name)


# --------------------------------------------------------------------------- #
# Presets mirroring Table I (scaled down for CPU training)
# --------------------------------------------------------------------------- #
PRESETS: Dict[str, SyntheticConfig] = {
    # Dense platform: few items relative to users, hub items with huge degree.
    "mooc": SyntheticConfig(
        num_users=800, num_items=120, num_interactions=12000,
        user_alpha=0.8, item_alpha=1.2, preference_dim=6,
        preference_strength=2.5, noise_ratio=0.06, name="mooc",
    ),
    # Amazon Video Games: balanced bipartite graph, long-tail items.
    "games": SyntheticConfig(
        num_users=500, num_items=300, num_interactions=7000,
        user_alpha=0.9, item_alpha=1.0, preference_dim=8,
        preference_strength=3.0, noise_ratio=0.05, name="games",
    ),
    # Amazon Grocery & Gourmet Food: larger and sparser than games.
    "food": SyntheticConfig(
        num_users=700, num_items=420, num_interactions=9000,
        user_alpha=0.9, item_alpha=1.0, preference_dim=8,
        preference_strength=3.0, noise_ratio=0.05, name="food",
    ),
    # Yelp: most items, heaviest skew.
    "yelp": SyntheticConfig(
        num_users=650, num_items=500, num_interactions=10000,
        user_alpha=1.0, item_alpha=1.4, preference_dim=8,
        preference_strength=3.0, noise_ratio=0.04, name="yelp",
    ),
    # Tiny preset used by unit tests and the quickstart example.
    "tiny": SyntheticConfig(
        num_users=60, num_items=40, num_interactions=900,
        user_alpha=0.8, item_alpha=1.0, preference_dim=4,
        preference_strength=2.0, noise_ratio=0.05, name="tiny",
    ),
}


def list_presets() -> list:
    """Names of the available synthetic dataset presets."""
    return sorted(PRESETS)


def dataset_preset(name: str, seed: int = 0, scale: float = 1.0) -> InteractionDataset:
    """Generate one of the named presets.

    Parameters
    ----------
    name:
        One of :func:`list_presets`.
    seed:
        RNG seed; distinct seeds give statistically equivalent datasets (used
        by the paper's 5-seed significance test, Table II footnote).
    scale:
        Multiplier applied to users/items/interactions for quick smoke runs
        (e.g. ``scale=0.25`` in the test-suite).
    """
    if name not in PRESETS:
        raise KeyError(f"unknown preset '{name}'; options: {list_presets()}")
    config = PRESETS[name]
    if scale != 1.0:
        config = SyntheticConfig(
            num_users=max(10, int(config.num_users * scale)),
            num_items=max(10, int(config.num_items * scale)),
            num_interactions=max(50, int(config.num_interactions * scale)),
            user_alpha=config.user_alpha,
            item_alpha=config.item_alpha,
            preference_dim=config.preference_dim,
            preference_strength=config.preference_strength,
            noise_ratio=config.noise_ratio,
            name=config.name,
        )
    return generate_dataset(config, seed=seed)
