"""Vectorized training-data pipeline — the training-side twin of ``repro.engine``.

PR 1 removed every per-user Python loop from the serving/eval path; this
module does the same for the path that *produces* training batches.  All
models route their epoch batching through one of three pipelines, each
described by a declarative :class:`BatchSpec`:

* :class:`BprPipeline` — shuffled ``(users, positives, negatives)`` triples
  for the pairwise BPR objective (Section III-B, "The Loss Function").
* :class:`MultiNegativePipeline` — the same pass but with a ``(B, n)``
  negative matrix per batch (UltraGCN-style multi-negative losses).
* :class:`UserRowPipeline` — ``(users, dense interaction rows)`` batches for
  the autoencoder baselines (MultiVAE, EHCF); rows are scattered from the
  engine's CSR index in one flat-index assignment per batch.

Negative sampling is fully vectorized: candidates are drawn for the whole
batch at once and checked against training positives through
:meth:`repro.engine.UserItemIndex.contains` (a binary search over the
sorted flat ``user * num_items + item`` keys), with bounded re-draw rounds
and an exact complement-sampling fallback so the marginal over non-positive
items stays exactly uniform and termination is guaranteed even for
degenerate users.  The historical pure-Python sampler is preserved verbatim
in :mod:`repro.data.reference_sampling` as the behavioural oracle;
``benchmarks/bench_training_throughput.py`` pins the speedup and the
distributional parity between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..engine.index import UserItemIndex
from .dataset import DataSplit

__all__ = [
    "BatchSpec",
    "NegativeSampler",
    "BatchPipeline",
    "BprPipeline",
    "MultiNegativePipeline",
    "UserRowPipeline",
    "build_pipeline",
    "PIPELINE_KINDS",
]

#: Re-draw rounds before the sampler falls back to exact complement sampling.
#: Each round redraws only the still-colliding entries, so the expected work
#: decays geometrically with the densest user's positive ratio.
DEFAULT_MAX_ROUNDS = 16


# --------------------------------------------------------------------------- #
# Negative sampling
# --------------------------------------------------------------------------- #
class NegativeSampler:
    """Samples items a user has *not* interacted with in the training data.

    The sampler operates on a :class:`~repro.engine.UserItemIndex` (CSR
    ``user -> sorted items``).  Batch sampling draws a whole candidate
    matrix, rejects collisions via one vectorised flat-key binary search per
    round, and finishes any stubborn entries with exact complement sampling,
    so the result is exactly uniform over each user's non-positive items.
    Users whose positives cover the entire catalogue fall back to a uniform
    item so training can proceed (mirroring :meth:`sample_one`).

    The legacy constructor signature ``NegativeSampler(positive_sets,
    num_items)`` is kept: per-user sets are converted into the CSR index.
    """

    def __init__(self, positive_sets: Optional[Sequence[set]] = None,
                 num_items: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None, *,
                 index: Optional[UserItemIndex] = None,
                 max_rounds: int = DEFAULT_MAX_ROUNDS) -> None:
        if index is None:
            if positive_sets is None or num_items is None:
                raise ValueError("need either an index or (positive_sets, num_items)")
            if num_items <= 0:
                raise ValueError("num_items must be positive")
            sets = [sorted(items) for items in positive_sets]
            users = np.repeat(np.arange(len(sets), dtype=np.int64),
                              [len(items) for items in sets])
            items = np.concatenate([np.asarray(s, dtype=np.int64) for s in sets]) \
                if users.size else np.empty(0, dtype=np.int64)
            index = UserItemIndex(len(sets), int(num_items), users, items)
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        self.index = index
        self.num_items = index.num_items
        self.rng = rng or np.random.default_rng()
        self.max_rounds = int(max_rounds)

    @classmethod
    def from_split(cls, split: DataSplit,
                   rng: Optional[np.random.Generator] = None) -> "NegativeSampler":
        """Sampler over the split's cached train index (shared with serving)."""
        return cls(index=UserItemIndex.from_split(split, "train"), rng=rng)

    @classmethod
    def from_index(cls, index: UserItemIndex,
                   rng: Optional[np.random.Generator] = None) -> "NegativeSampler":
        return cls(index=index, rng=rng)

    # ------------------------------------------------------------------ #
    def sample_one(self, user: int) -> int:
        """One negative item for ``user`` via rejection sampling."""
        positives = self.index.items_for(int(user))
        if positives.size >= self.num_items:
            # Degenerate user that interacted with everything: fall back to a
            # uniform item so training can proceed.
            return int(self.rng.integers(self.num_items))
        while True:
            candidate = int(self.rng.integers(self.num_items))
            position = np.searchsorted(positives, candidate)
            if position >= positives.size or positives[position] != candidate:
                return candidate

    def sample(self, users: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Vectorised sampling: ``(len(users), num_negatives)`` negatives.

        A whole candidate matrix is drawn up front; colliding entries are
        re-drawn for at most ``max_rounds`` rounds (each round touches only
        the entries that still collide), then the rare leftovers are resolved
        by exact complement sampling, which keeps the marginal exactly
        uniform over non-positives.  ``num_negatives == 1`` returns a 1-d
        array, matching the historical sampler.
        """
        users = np.asarray(users, dtype=np.int64)
        negatives = self.rng.integers(self.num_items,
                                      size=(users.size, num_negatives))
        if users.size:
            # Degenerate users (positives cover the catalogue) keep their
            # uniform draw; everyone else enters the rejection rounds.
            active = self.index.counts(users) < self.num_items
            colliding = self.index.contains(users[:, None], negatives)
            colliding &= active[:, None]
            rows, cols = np.nonzero(colliding)
            for _ in range(self.max_rounds):
                if rows.size == 0:
                    break
                draws = self.rng.integers(self.num_items, size=rows.size)
                negatives[rows, cols] = draws
                still = self.index.contains(users[rows], draws)
                rows, cols = rows[still], cols[still]
            for row, col in zip(rows, cols):
                negatives[row, col] = self._sample_complement(int(users[row]))
        if num_negatives == 1:
            return negatives[:, 0]
        return negatives

    def _sample_complement(self, user: int) -> int:
        """Exact uniform draw from the user's non-positive items.

        The k-th non-positive item of a sorted positive array ``P`` is
        ``k + searchsorted(P - arange(len(P)), k, side='right')`` — the
        standard order-statistics inversion, used only for entries that
        survive every rejection round.
        """
        positives = self.index.items_for(user)
        k = int(self.rng.integers(self.num_items - positives.size))
        shifted = positives - np.arange(positives.size, dtype=np.int64)
        return k + int(np.searchsorted(shifted, k, side="right"))


# --------------------------------------------------------------------------- #
# Batch specification
# --------------------------------------------------------------------------- #
PIPELINE_KINDS = ("bpr", "multi_negative", "user_rows")


@dataclass(frozen=True)
class BatchSpec:
    """Declarative description of one epoch of training batches.

    Attributes
    ----------
    kind:
        ``"bpr"`` (pairwise triples), ``"multi_negative"`` (``(B, n)``
        negative matrices) or ``"user_rows"`` (dense interaction rows).
    batch_size:
        Mini-batch size (interactions for the pairwise kinds, users for
        ``user_rows``).
    num_negatives:
        Negatives per positive; ignored by ``user_rows``.
    shuffle:
        Whether the epoch order is permuted (seeded by the pipeline RNG).
    row_dtype:
        Dtype of the dense rows produced by ``user_rows`` pipelines.
    """

    kind: str = "bpr"
    batch_size: int = 1024
    num_negatives: int = 1
    shuffle: bool = True
    row_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.kind not in PIPELINE_KINDS:
            raise ValueError(f"kind must be one of {PIPELINE_KINDS}, got {self.kind!r}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.num_negatives <= 0:
            raise ValueError("num_negatives must be positive")


# --------------------------------------------------------------------------- #
# Pipelines
# --------------------------------------------------------------------------- #
class BatchPipeline:
    """Base class: a reusable, seeded epoch-batch generator over one split.

    A pipeline binds a :class:`DataSplit`, a :class:`BatchSpec` and an RNG;
    iterating it yields one epoch.  The train-interaction CSR index is the
    engine's cached per-split build, so serving, evaluation and training all
    share a single index.
    """

    kind: str = ""

    def __init__(self, split: DataSplit, spec: Optional[BatchSpec] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        spec = spec or BatchSpec(kind=self.kind)
        if spec.kind != self.kind:
            raise ValueError(f"{type(self).__name__} requires kind={self.kind!r}, "
                             f"got {spec.kind!r}")
        self.split = split
        self.spec = spec
        self.rng = rng or np.random.default_rng()
        self.index = UserItemIndex.from_split(split, "train")

    @property
    def batch_size(self) -> int:
        return self.spec.batch_size

    def _epoch_order(self, size: int) -> np.ndarray:
        if self.spec.shuffle:
            return self.rng.permutation(size)
        return np.arange(size)

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(split={self.split.name!r}, spec={self.spec})"


class BprPipeline(BatchPipeline):
    """Shuffled ``(users, positives, negatives)`` batches, one epoch per pass.

    Every training interaction is visited exactly once per epoch and paired
    with freshly sampled negatives, mirroring the pairwise BPR loop of the
    paper with zero per-element Python work.  With ``num_negatives > 1``
    each positive expands into that many aligned 1-d triples (the standard
    multi-negative BPR scheme), so every pairwise ``train_step`` consumes
    the batches unchanged whatever the trainer's ``num_negatives`` override.
    """

    kind = "bpr"

    def __init__(self, split: DataSplit, spec: Optional[BatchSpec] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(split, spec, rng)
        self.sampler = NegativeSampler.from_index(self.index, rng=self.rng)

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_train / self.batch_size))

    def _sampled_batches(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Raw per-batch triples; negatives keep the sampler's shape."""
        order = self._epoch_order(self.split.num_train)
        users = self.split.train_users[order]
        items = self.split.train_items[order]
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            batch_items = items[start:start + self.batch_size]
            negatives = self.sampler.sample(batch_users, self.spec.num_negatives)
            yield batch_users, batch_items, negatives

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for users, items, negatives in self._sampled_batches():
            if negatives.ndim == 2:
                # (B, n) draws flatten into n aligned triples per positive.
                count = negatives.shape[1]
                users = np.repeat(users, count)
                items = np.repeat(items, count)
                negatives = negatives.reshape(-1)
            yield users, items, negatives


class MultiNegativePipeline(BprPipeline):
    """BPR pass that always yields a ``(B, num_negatives)`` negative matrix.

    UltraGCN-style objectives weigh several true negatives per positive; this
    pipeline guarantees the 2-d shape even for ``num_negatives == 1``.
    """

    kind = "multi_negative"

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        for users, items, negatives in self._sampled_batches():
            if negatives.ndim == 1:
                negatives = negatives[:, None]
            yield users, items, negatives


class UserRowPipeline(BatchPipeline):
    """Batches of user ids with their dense binary interaction rows.

    Used by the autoencoder-style baselines (MultiVAE, EHCF).  Each batch
    matrix is built by one CSR flat-index scatter (``matrix[rows, cols] = 1``)
    instead of a per-user Python loop.
    """

    kind = "user_rows"

    def interaction_rows(self, users: np.ndarray) -> np.ndarray:
        """Dense ``(len(users), num_items)`` binary rows for the given users."""
        return self.index.dense_rows(users, dtype=np.dtype(self.spec.row_dtype))

    def interaction_row(self, user: int) -> np.ndarray:
        """Dense binary vector of one user's training interactions."""
        return self.interaction_rows(np.asarray([int(user)]))[0]

    def __len__(self) -> int:
        return int(np.ceil(self.split.num_users / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        users = self._epoch_order(self.split.num_users)
        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            yield batch_users, self.interaction_rows(batch_users)


_PIPELINE_CLASSES = {
    BprPipeline.kind: BprPipeline,
    MultiNegativePipeline.kind: MultiNegativePipeline,
    UserRowPipeline.kind: UserRowPipeline,
}


def build_pipeline(split: DataSplit, spec: BatchSpec,
                   rng: Optional[np.random.Generator] = None) -> BatchPipeline:
    """Instantiate the pipeline class matching ``spec.kind``."""
    try:
        cls = _PIPELINE_CLASSES[spec.kind]
    except KeyError:
        raise ValueError(f"unknown pipeline kind {spec.kind!r}; "
                         f"options: {sorted(_PIPELINE_CLASSES)}") from None
    return cls(split, spec, rng=rng)
