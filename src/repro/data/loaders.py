"""Loading interaction data from files and preparing ready-to-train splits.

Real dataset dumps (MOOC, Amazon, Yelp) can be dropped in as CSV/TSV files of
``user, item, timestamp`` rows and loaded with :func:`load_interactions_csv`;
without files, :func:`prepare_split` falls back to the synthetic presets so
that every example, test and benchmark runs offline.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

import numpy as np

from .dataset import DataSplit, InteractionDataset
from .splits import chronological_split, k_core_filter
from .synthetic import dataset_preset

__all__ = ["load_interactions_csv", "prepare_split", "DATASET_CORE_SETTINGS"]


# k-core preprocessing used in the paper (Section V-A-1).
DATASET_CORE_SETTINGS = {
    "mooc": 0,   # used as-is
    "games": 5,  # 5-core on users and items
    "food": 5,   # 5-core on users and items
    "yelp": 10,  # 10-core on users and items
}


def load_interactions_csv(
    path: Union[str, Path],
    user_column: int = 0,
    item_column: int = 1,
    timestamp_column: Optional[int] = 2,
    delimiter: str = ",",
    has_header: bool = True,
    name: Optional[str] = None,
) -> InteractionDataset:
    """Read a delimited interaction file into an :class:`InteractionDataset`.

    Ids may be arbitrary strings or integers — they are hashed to a contiguous
    integer space in the order they first appear.
    """
    path = Path(path)
    users, items, timestamps = [], [], []
    user_ids, item_ids = {}, {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if has_header:
            next(reader, None)
        for row in reader:
            if not row:
                continue
            raw_user = row[user_column]
            raw_item = row[item_column]
            user = user_ids.setdefault(raw_user, len(user_ids))
            item = item_ids.setdefault(raw_item, len(item_ids))
            users.append(user)
            items.append(item)
            if timestamp_column is not None and timestamp_column < len(row):
                timestamps.append(float(row[timestamp_column]))
            else:
                timestamps.append(float(len(timestamps)))
    return InteractionDataset(
        np.asarray(users), np.asarray(items), np.asarray(timestamps),
        name=name or path.stem,
    )


def prepare_split(
    dataset_name: str,
    seed: int = 0,
    scale: float = 1.0,
    source_csv: Optional[Union[str, Path]] = None,
    train_ratio: float = 0.7,
    valid_ratio: float = 0.1,
) -> DataSplit:
    """Produce a train/valid/test split for a named dataset.

    If ``source_csv`` points at a real dataset dump it is loaded from disk;
    otherwise the synthetic preset of the same name is generated.  The k-core
    preprocessing from the paper is applied either way.
    """
    if source_csv is not None:
        dataset = load_interactions_csv(source_csv, name=dataset_name)
    else:
        dataset = dataset_preset(dataset_name, seed=seed, scale=scale)

    core = DATASET_CORE_SETTINGS.get(dataset_name, 0)
    if core > 0:
        # On the scaled-down synthetic presets a full k-core filter can remove
        # most of the graph; apply a proportionally softened threshold while
        # keeping the ordering (yelp filtered harder than games/food).
        softened = max(2, int(round(core * min(1.0, scale))))
        dataset = k_core_filter(dataset, k_user=softened, k_item=softened)

    return chronological_split(dataset, train_ratio=train_ratio, valid_ratio=valid_ratio)
