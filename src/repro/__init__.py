"""repro: reproduction of "Layer-refined Graph Convolutional Networks for Recommendation".

The package is organised as:

* :mod:`repro.autograd` — NumPy-based reverse-mode autodiff substrate.
* :mod:`repro.graph` — bipartite interaction graphs, normalisation, pruning.
* :mod:`repro.data` — datasets, chronological splits, samplers, synthetic generators.
* :mod:`repro.core` — the LayerGCN model (the paper's contribution).
* :mod:`repro.models` — every baseline from Table II.
* :mod:`repro.training` — losses, trainer with early stopping, callbacks.
* :mod:`repro.eval` — Recall@K / NDCG@K, full-ranking protocol, significance tests.
* :mod:`repro.engine` — serving-grade inference: propagation engine, frozen
  inference indexes and the batched recommendation service.
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from .core import LayerGCN
from .data import DataSplit, InteractionDataset, dataset_preset, prepare_split
from .engine import (
    InferenceIndex,
    PropagationEngine,
    RecommendationService,
    UserItemIndex,
)
from .eval import EvaluationResult, RankingEvaluator, evaluate_model
from .models import available_models, build_model
from .training import Trainer, TrainerConfig

__version__ = "1.0.0"

__all__ = [
    "LayerGCN",
    "DataSplit",
    "InteractionDataset",
    "dataset_preset",
    "prepare_split",
    "InferenceIndex",
    "PropagationEngine",
    "RecommendationService",
    "UserItemIndex",
    "EvaluationResult",
    "RankingEvaluator",
    "evaluate_model",
    "available_models",
    "build_model",
    "Trainer",
    "TrainerConfig",
    "__version__",
]
