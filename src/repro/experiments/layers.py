"""Experiments E3/E10 — Table III and Fig. 6: effect of the number of layers.

* Table III compares a 4-layer LayerGCN against LightGCN with 1–4 layers on
  the dense (MOOC-like) dataset.
* Fig. 6 sweeps both models from 1 to 8 layers and plots R@50 / N@50,
  showing LightGCN peaking at a shallow depth while LayerGCN keeps improving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import ExperimentScale, format_table, load_splits, train_and_evaluate

__all__ = ["run_table3", "format_table3", "run_layer_sweep", "format_layer_sweep"]


def run_table3(
    dataset: str = "mooc",
    lightgcn_layers: Sequence[int] = (1, 2, 3, 4),
    layergcn_layers: int = 4,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """LayerGCN (fixed depth) vs LightGCN at several depths on one dataset."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    rows: List[Dict[str, object]] = []
    _, _, result = train_and_evaluate(
        "layergcn", split, scale,
        model_kwargs={"num_layers": layergcn_layers, "dropout_ratio": 0.1,
                      "edge_dropout": "degreedrop"})
    rows.append({"model": f"LayerGCN - {layergcn_layers} Layers", "dataset": dataset,
                 **result.as_dict()})

    for depth in lightgcn_layers:
        _, _, result = train_and_evaluate("lightgcn", split, scale,
                                          model_kwargs={"num_layers": depth})
        rows.append({"model": f"LightGCN - {depth} Layers", "dataset": dataset,
                     **result.as_dict()})
    return rows


def format_table3(rows: List[Dict[str, object]], ks: Sequence[int] = (20, 50)) -> str:
    columns = ["model"] + [f"recall@{k}" for k in ks] + [f"ndcg@{k}" for k in ks]
    return format_table(rows, columns)


def run_layer_sweep(
    dataset: str = "mooc",
    layers: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    models: Sequence[str] = ("layergcn", "lightgcn"),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """The Fig. 6 sweep: both models evaluated at every depth in ``layers``."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    rows: List[Dict[str, object]] = []
    for model_name in models:
        for depth in layers:
            kwargs = {"num_layers": depth}
            if model_name == "layergcn":
                kwargs.update({"dropout_ratio": 0.1, "edge_dropout": "degreedrop"})
            _, _, result = train_and_evaluate(model_name, split, scale, model_kwargs=kwargs)
            rows.append({"model": model_name, "layers": depth, "dataset": dataset,
                         **result.as_dict()})
    return rows


def format_layer_sweep(rows: List[Dict[str, object]]) -> str:
    columns = ["model", "layers", "recall@50", "ndcg@50"]
    return format_table(rows, columns)
