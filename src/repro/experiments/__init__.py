"""Experiment harnesses reproducing every table and figure of the paper."""

from .common import (
    DATASET_NAMES,
    ExperimentScale,
    format_table,
    load_splits,
    metric_keys,
    train_and_evaluate,
)
from .datasets import PAPER_TABLE1, format_table1, run_table1
from .degree_distribution import degree_skew_summary, item_degree_cdf, run_degree_cdf
from .dropout_convergence import format_table4, run_convergence_sweep, run_loss_curves, run_table4
from .hyperparams import best_cell, format_grid, run_hyperparameter_grid
from .layers import format_layer_sweep, format_table3, run_layer_sweep, run_table3
from .mixed_dropout import format_table5, run_table5
from .overall import TABLE2_MODELS, format_table2, run_significance, run_table2
from .runner import EXPERIMENTS, list_experiments, resolve_scale, run_experiment
from .weights_visualization import run_layer_similarities, run_weight_collapse, summarize_trajectory

__all__ = [
    "DATASET_NAMES",
    "ExperimentScale",
    "format_table",
    "load_splits",
    "metric_keys",
    "train_and_evaluate",
    "PAPER_TABLE1",
    "format_table1",
    "run_table1",
    "degree_skew_summary",
    "item_degree_cdf",
    "run_degree_cdf",
    "format_table4",
    "run_convergence_sweep",
    "run_loss_curves",
    "run_table4",
    "best_cell",
    "format_grid",
    "run_hyperparameter_grid",
    "format_layer_sweep",
    "format_table3",
    "run_layer_sweep",
    "run_table3",
    "format_table5",
    "run_table5",
    "TABLE2_MODELS",
    "format_table2",
    "run_significance",
    "run_table2",
    "EXPERIMENTS",
    "list_experiments",
    "resolve_scale",
    "run_experiment",
    "run_layer_similarities",
    "run_weight_collapse",
    "summarize_trajectory",
]
