"""Experiment E8 — Fig. 4: cumulative distribution of item degrees.

The paper plots the CDF of the square root of item degree for MOOC and Yelp
to explain when DegreeDrop helps most: MOOC items have much larger degrees
(hub courses) while Yelp's distribution is concentrated near zero, making the
DegreeDrop probabilities hard to differentiate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data import dataset_preset
from ..graph import BipartiteGraph

__all__ = ["item_degree_cdf", "run_degree_cdf", "degree_skew_summary"]


def item_degree_cdf(graph: BipartiteGraph, num_points: int = 50,
                    use_square_root: bool = True) -> Dict[str, np.ndarray]:
    """CDF of (sqrt of) item degree evaluated on a uniform grid.

    Returns ``{"grid": x-values, "cdf": P(degree <= x)}``; the grid spans
    ``[0, max degree]`` so different datasets can be compared on one plot.
    """
    degrees = graph.item_degrees()
    values = np.sqrt(degrees) if use_square_root else degrees
    if values.size == 0:
        return {"grid": np.zeros(num_points), "cdf": np.zeros(num_points)}
    grid = np.linspace(0.0, float(values.max()), num_points)
    sorted_values = np.sort(values)
    cdf = np.searchsorted(sorted_values, grid, side="right") / values.size
    return {"grid": grid, "cdf": cdf}


def run_degree_cdf(
    datasets: Sequence[str] = ("mooc", "yelp"),
    seed: int = 0,
    scale: float = 1.0,
    num_points: int = 50,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 4: item-degree CDFs of the requested dataset presets."""
    results: Dict[str, Dict[str, np.ndarray]] = {}
    for name in datasets:
        dataset = dataset_preset(name, seed=seed, scale=scale)
        graph = dataset.to_graph()
        results[name] = item_degree_cdf(graph, num_points=num_points)
        results[name]["degrees"] = graph.item_degrees()
    return results


def degree_skew_summary(results: Dict[str, Dict[str, np.ndarray]]) -> List[Dict[str, object]]:
    """Summary statistics comparing degree skew across datasets.

    Reports the share of items whose *rooted* degree is below 10 (the paper's
    observation: ~90% for Yelp) and quantiles of the raw degree distribution.
    """
    rows: List[Dict[str, object]] = []
    for name, payload in results.items():
        degrees = np.asarray(payload["degrees"], dtype=np.float64)
        rooted = np.sqrt(degrees)
        rows.append({
            "dataset": name,
            "num_items": int(degrees.size),
            "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
            "median_degree": float(np.median(degrees)) if degrees.size else 0.0,
            "p90_degree": float(np.percentile(degrees, 90)) if degrees.size else 0.0,
            "max_degree": float(degrees.max()) if degrees.size else 0.0,
            "share_rooted_below_10": float(np.mean(rooted < 10.0)) if degrees.size else 0.0,
        })
    return rows
