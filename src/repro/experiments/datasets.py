"""Experiment E1 — Table I: statistics of the experimented datasets.

The paper reports users / items / interactions / sparsity for MOOC, Games,
Food and Yelp.  Here the same table is produced for the synthetic presets that
stand in for those datasets (see DESIGN.md for the substitution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..data import dataset_preset
from .common import DATASET_NAMES, format_table

__all__ = ["run_table1", "format_table1"]

# The statistics printed in the paper's Table I, for reference alongside the
# synthetic numbers (useful when judging whether relative shapes match).
PAPER_TABLE1 = {
    "mooc": {"num_users": 82_535, "num_items": 1_302, "num_interactions": 458_453, "sparsity": 0.995734},
    "games": {"num_users": 50_677, "num_items": 16_897, "num_interactions": 454_529, "sparsity": 0.999469},
    "food": {"num_users": 115_144, "num_items": 39_688, "num_interactions": 1_025_169, "sparsity": 0.999776},
    "yelp": {"num_users": 99_010, "num_items": 56_441, "num_interactions": 2_762_088, "sparsity": 0.999506},
}


def run_table1(names: Sequence[str] = DATASET_NAMES, seed: int = 0,
               scale: float = 1.0) -> List[Dict[str, object]]:
    """Generate each preset and collect its Table I row."""
    rows: List[Dict[str, object]] = []
    for name in names:
        dataset = dataset_preset(name, seed=seed, scale=scale)
        row = dataset.table_row()
        paper = PAPER_TABLE1.get(name)
        if paper:
            row["paper_sparsity"] = paper["sparsity"]
            row["paper_users_per_item"] = paper["num_users"] / paper["num_items"]
            row["users_per_item"] = row["num_users"] / max(row["num_items"], 1)
        rows.append(row)
    return rows


def format_table1(rows: Optional[List[Dict[str, object]]] = None, **kwargs) -> str:
    """Human-readable rendering of Table I."""
    rows = rows if rows is not None else run_table1(**kwargs)
    columns = ["dataset", "num_users", "num_items", "num_interactions", "sparsity",
               "users_per_item", "paper_sparsity", "paper_users_per_item"]
    return format_table(rows, columns)
