"""Experiment E11 — Fig. 7: regularisation coefficient vs. edge-dropout ratio.

The paper grids λ ∈ {1e-5 .. 1e-1} against the edge-dropout ratio
{0, 0.05, 0.1, 0.2} for LayerGCN on MOOC and Yelp and reports R@50 / N@50 in
a heat map.  This harness reproduces the grid as a list of cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import ExperimentScale, format_table, load_splits, train_and_evaluate

__all__ = ["run_hyperparameter_grid", "format_grid", "best_cell"]

DEFAULT_LAMBDAS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
DEFAULT_RATIOS = (0.0, 0.05, 0.1, 0.2)


def run_hyperparameter_grid(
    dataset: str = "mooc",
    lambdas: Sequence[float] = DEFAULT_LAMBDAS,
    dropout_ratios: Sequence[float] = DEFAULT_RATIOS,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Train LayerGCN for every (λ, dropout ratio) cell and record R@50 / N@50."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    cells: List[Dict[str, object]] = []
    for ratio in dropout_ratios:
        for lam in lambdas:
            _, history, result = train_and_evaluate(
                "layergcn", split, scale,
                model_kwargs={"num_layers": 4, "l2_reg": lam,
                              "edge_dropout": "degreedrop", "dropout_ratio": ratio})
            cells.append({
                "dataset": dataset,
                "lambda": lam,
                "dropout_ratio": ratio,
                "recall@50": result.values.get("recall@50", 0.0),
                "ndcg@50": result.values.get("ndcg@50", 0.0),
                "best_epoch": history.best_epoch,
            })
    return cells


def format_grid(cells: List[Dict[str, object]], metric: str = "recall@50") -> str:
    """Render the grid as a dropout-ratio (rows) x λ (columns) text heat map."""
    lambdas = sorted({cell["lambda"] for cell in cells})
    ratios = sorted({cell["dropout_ratio"] for cell in cells})
    lookup = {(cell["dropout_ratio"], cell["lambda"]): cell.get(metric, 0.0) for cell in cells}
    rows = []
    for ratio in ratios:
        row: Dict[str, object] = {"dropout_ratio": ratio}
        for lam in lambdas:
            row[f"λ={lam:g}"] = lookup.get((ratio, lam), float("nan"))
        rows.append(row)
    columns = ["dropout_ratio"] + [f"λ={lam:g}" for lam in lambdas]
    return f"{metric}\n" + format_table(rows, columns)


def best_cell(cells: List[Dict[str, object]], metric: str = "recall@50") -> Dict[str, object]:
    """Grid cell with the best value of ``metric``."""
    if not cells:
        raise ValueError("empty grid")
    return max(cells, key=lambda cell: cell.get(metric, float("-inf")))
