"""Experiment E5 — Table V: mixing DegreeDrop with DropEdge.

Compares LayerGCN trained with DropEdge, with the alternating "Mixed"
strategy, and with DegreeDrop on each dataset.  The paper finds Mixed usually
improves on DropEdge but stays below pure DegreeDrop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .common import DATASET_NAMES, ExperimentScale, format_table, load_splits, train_and_evaluate

__all__ = ["run_table5", "format_table5"]

_DROPOUT_VARIANTS = ("dropedge", "mixed", "degreedrop")


def run_table5(
    datasets: Sequence[str] = DATASET_NAMES,
    dropout_ratio: float = 0.1,
    variants: Sequence[str] = _DROPOUT_VARIANTS,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Train LayerGCN with each dropout variant on each dataset."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    splits = load_splits(datasets, scale=scale, seed=seed)

    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        split = splits[dataset]
        for variant in variants:
            _, history, result = _train_variant(split, scale, variant, dropout_ratio)
            rows.append({
                "dataset": dataset,
                "dropout_type": variant,
                "best_epoch": history.best_epoch,
                **result.as_dict(),
            })
    return rows


def _train_variant(split, scale: ExperimentScale, variant: str, dropout_ratio: float):
    return train_and_evaluate(
        "layergcn", split, scale,
        model_kwargs={"num_layers": 4, "edge_dropout": variant, "dropout_ratio": dropout_ratio})


def format_table5(rows: List[Dict[str, object]], ks: Sequence[int] = (20, 50)) -> str:
    columns = (["dataset", "dropout_type"]
               + [f"recall@{k}" for k in ks] + [f"ndcg@{k}" for k in ks])
    return format_table(rows, columns)
