"""Experiments E4/E7 — Table IV and Fig. 3: DegreeDrop vs DropEdge.

* Fig. 3(a): best validation epoch of LayerGCN under each edge-dropout ratio
  0.1–0.8 for both pruning strategies (DegreeDrop converges faster).
* Fig. 3(b): summed batch-loss curve per epoch at one dropout ratio.
* Table IV: recommendation accuracy at epoch 20, epoch 50 and the best epoch
  for both strategies on the four datasets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval import RankingEvaluator
from ..models import build_model
from ..training import Trainer
from .common import DATASET_NAMES, ExperimentScale, format_table, load_splits

__all__ = [
    "run_convergence_sweep",
    "run_loss_curves",
    "run_table4",
    "format_table4",
]


def _train_layergcn(split, scale: ExperimentScale, dropout_type: str, dropout_ratio: float,
                    epochs: Optional[int] = None, checkpoints: Sequence[int] = ()):
    """Train LayerGCN with the given pruning strategy, evaluating at checkpoints.

    Returns the training history, the final test evaluation and a dict of
    checkpoint-epoch -> test metrics (used for the epoch-20/50 rows of
    Table IV).
    """
    model = build_model(
        "layergcn", split,
        embedding_dim=scale.embedding_dim, batch_size=scale.batch_size, seed=scale.seed,
        num_layers=4, edge_dropout=dropout_type, dropout_ratio=dropout_ratio)
    config = scale.trainer_config()
    if epochs is not None:
        config.epochs = epochs

    evaluator = RankingEvaluator(split, ks=scale.eval_ks, metrics=("recall", "ndcg"))
    checkpoint_results: Dict[int, Dict[str, float]] = {}
    checkpoints = set(checkpoints)

    def record_checkpoint(epoch, trained_model, history):
        if epoch in checkpoints:
            trained_model.eval()
            checkpoint_results[epoch] = evaluator.evaluate(trained_model, which="test").as_dict()
            trained_model.train()

    trainer = Trainer(model, split, config, callbacks=[record_checkpoint])
    history = trainer.fit()
    model.eval()
    final = evaluator.evaluate(model, which="test")
    return history, final, checkpoint_results


def run_convergence_sweep(
    dataset: str = "mooc",
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    dropout_types: Sequence[str] = ("dropedge", "degreedrop"),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Fig. 3(a): best epoch per dropout ratio for each pruning strategy."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    rows: List[Dict[str, object]] = []
    for dropout_type in dropout_types:
        for ratio in ratios:
            history, final, _ = _train_layergcn(split, scale, dropout_type, ratio)
            rows.append({
                "dataset": dataset,
                "dropout_type": dropout_type,
                "dropout_ratio": ratio,
                "best_epoch": history.best_epoch,
                "best_valid_score": history.best_score,
                "recall@20": final.values.get("recall@20", 0.0),
            })
    return rows


def run_loss_curves(
    dataset: str = "mooc",
    dropout_ratio: float = 0.7,
    dropout_types: Sequence[str] = ("dropedge", "degreedrop"),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Fig. 3(b): summed batch loss per epoch for both pruning strategies."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    curves: Dict[str, List[float]] = {}
    for dropout_type in dropout_types:
        history, _, _ = _train_layergcn(split, scale, dropout_type, dropout_ratio)
        curves[dropout_type] = [float(np.sum(batch)) for batch in history.batch_losses]
    return curves


def run_table4(
    datasets: Sequence[str] = DATASET_NAMES,
    checkpoint_epochs: Sequence[int] = (20, 50),
    dropout_types: Sequence[str] = ("dropedge", "degreedrop"),
    dropout_ratio: float = 0.1,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Table IV: accuracy of both strategies at fixed epochs and at the best epoch."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    # Make sure training runs long enough to reach the last checkpoint.
    scale.epochs = max(scale.epochs, max(checkpoint_epochs, default=0))
    splits = load_splits(datasets, scale=scale, seed=seed)

    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        split = splits[dataset]
        for dropout_type in dropout_types:
            history, final, checkpoints = _train_layergcn(
                split, scale, dropout_type, dropout_ratio, checkpoints=checkpoint_epochs)
            for epoch in checkpoint_epochs:
                metrics = checkpoints.get(epoch, {})
                rows.append({"dataset": dataset, "variant": dropout_type, "epoch": epoch,
                             **metrics})
            rows.append({"dataset": dataset, "variant": dropout_type, "epoch": "best",
                         "best_epoch": history.best_epoch, **final.as_dict()})
    return rows


def format_table4(rows: List[Dict[str, object]], ks: Sequence[int] = (20, 50)) -> str:
    columns = (["dataset", "variant", "epoch"]
               + [f"recall@{k}" for k in ks] + [f"ndcg@{k}" for k in ks])
    return format_table(rows, columns)
