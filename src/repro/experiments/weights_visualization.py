"""Experiments E6/E9 — Fig. 1 and Fig. 5: layer weighting trajectories.

* Fig. 1 trains a 4-layer LightGCN with *learnable* softmax weights over
  layer embeddings on the dense dataset and records the weight of every layer
  per epoch; the paper shows the ego-layer weight grows to dominate.
* Fig. 5 trains LayerGCN on the same data and records the mean refinement
  similarity of every layer per epoch; no layer dominates and even-hop layers
  score higher than odd-hop layers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..models import build_model
from ..training import LayerSimilarityRecorder, LayerWeightRecorder, Trainer
from .common import ExperimentScale, load_splits

__all__ = ["run_weight_collapse", "run_layer_similarities", "summarize_trajectory"]


def run_weight_collapse(
    dataset: str = "mooc",
    num_layers: int = 4,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 1: per-epoch learnable layer weights of WeightedLightGCN.

    Returns a dict with the trajectory array of shape
    ``(epochs, num_layers + 1)`` (ego layer first) and convenience summaries.
    """
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    model = build_model("lightgcn-learnable", split,
                        embedding_dim=scale.embedding_dim, batch_size=scale.batch_size,
                        seed=seed, num_layers=num_layers)
    recorder = LayerWeightRecorder()
    trainer = Trainer(model, split, scale.trainer_config(), callbacks=[recorder])
    history = trainer.fit()

    trajectory = recorder.as_array()
    return {
        "dataset": dataset,
        "num_layers": num_layers,
        "trajectory": trajectory,
        "final_weights": trajectory[-1] if len(trajectory) else np.array([]),
        "ego_weight_final": float(trajectory[-1][0]) if len(trajectory) else float("nan"),
        "ego_weight_initial": float(trajectory[0][0]) if len(trajectory) else float("nan"),
        "epochs": history.num_epochs_run,
    }


def run_layer_similarities(
    dataset: str = "mooc",
    num_layers: int = 4,
    dropout_ratio: float = 0.1,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 5: per-epoch mean refinement similarity of each LayerGCN layer."""
    scale = scale or ExperimentScale()
    scale.seed = seed
    split = load_splits([dataset], scale=scale, seed=seed)[dataset]

    model = build_model("layergcn", split,
                        embedding_dim=scale.embedding_dim, batch_size=scale.batch_size,
                        seed=seed, num_layers=num_layers,
                        edge_dropout="degreedrop", dropout_ratio=dropout_ratio)
    recorder = LayerSimilarityRecorder()
    trainer = Trainer(model, split, scale.trainer_config(), callbacks=[recorder])
    history = trainer.fit()

    trajectory = recorder.as_array()
    return {
        "dataset": dataset,
        "num_layers": num_layers,
        "trajectory": trajectory,
        "final_similarities": trajectory[-1] if len(trajectory) else np.array([]),
        "max_final_share": _max_share(trajectory[-1]) if len(trajectory) else float("nan"),
        "epochs": history.num_epochs_run,
    }


def _max_share(weights: np.ndarray) -> float:
    """Largest single layer's share of the total weighting (dominance measure)."""
    total = float(np.sum(np.abs(weights)))
    if total == 0:
        return float("nan")
    return float(np.max(np.abs(weights)) / total)


def summarize_trajectory(trajectory: np.ndarray, labels: Optional[List[str]] = None) -> str:
    """Small text rendering of a weight trajectory (first/middle/last epoch)."""
    if trajectory.size == 0:
        return "(no epochs recorded)"
    labels = labels or [f"layer{i}" for i in range(trajectory.shape[1])]
    picks = sorted({0, len(trajectory) // 2, len(trajectory) - 1})
    lines = ["epoch  " + "  ".join(f"{label:>10s}" for label in labels)]
    for epoch_index in picks:
        values = "  ".join(f"{value:10.4f}" for value in trajectory[epoch_index])
        lines.append(f"{epoch_index + 1:5d}  {values}")
    return "\n".join(lines)
