"""Experiment E2 — Table II: overall performance comparison.

Trains every baseline plus the two LayerGCN variants (with and without edge
dropout) on each dataset and reports Recall@{10,20,50} and NDCG@{10,20,50}
under the all-ranking protocol, together with the relative improvement of
LayerGCN (Full) over the best baseline — the layout of Table II.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from ..eval import paired_t_test
from .common import DATASET_NAMES, ExperimentScale, format_table, load_splits, metric_keys, train_and_evaluate

__all__ = ["TABLE2_MODELS", "run_table2", "format_table2", "run_significance"]

# Model name -> (registry key, model-specific kwargs).  Order matches the
# column order of Table II.
TABLE2_MODELS: Dict[str, Dict] = {
    "BPR": {"name": "bpr", "kwargs": {}},
    "MultiVAE": {"name": "multivae", "kwargs": {}},
    "EHCF": {"name": "ehcf", "kwargs": {}},
    "BUIR": {"name": "buir", "kwargs": {}},
    "NGCF": {"name": "ngcf", "kwargs": {"num_layers": 2}},
    "LR-GCCF": {"name": "lr-gccf", "kwargs": {"num_layers": 2}},
    "LightGCN": {"name": "lightgcn", "kwargs": {"num_layers": 3}},
    "UltraGCN": {"name": "ultragcn", "kwargs": {}},
    "IMP-GCN": {"name": "imp-gcn", "kwargs": {"num_layers": 2}},
    "LayerGCN (w/o Dropout)": {"name": "layergcn", "kwargs": {"num_layers": 4, "dropout_ratio": 0.0}},
    "LayerGCN (Full)": {"name": "layergcn",
                        "kwargs": {"num_layers": 4, "dropout_ratio": 0.1,
                                   "edge_dropout": "degreedrop"}},
}

_PROPOSED = ("LayerGCN (w/o Dropout)", "LayerGCN (Full)")


def run_table2(
    datasets: Sequence[str] = DATASET_NAMES,
    models: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Run the overall comparison and return one row per (dataset, model).

    Each row carries all six metric columns; rows for ``LayerGCN (Full)`` also
    carry ``improvement_<metric>`` columns computed against the best baseline
    on the same dataset, exactly as the "improv." column of Table II.
    """
    scale = scale or ExperimentScale()
    scale.seed = seed
    models = list(models or TABLE2_MODELS)
    unknown = [m for m in models if m not in TABLE2_MODELS]
    if unknown:
        raise KeyError(f"unknown Table II models {unknown}")

    splits = load_splits(datasets, scale=scale, seed=seed)
    keys = metric_keys(scale.eval_ks)
    rows: List[Dict[str, object]] = []

    for dataset in datasets:
        split = splits[dataset]
        per_model: Dict[str, Dict[str, float]] = {}
        for display_name in models:
            spec = TABLE2_MODELS[display_name]
            _, _, result = train_and_evaluate(spec["name"], split, scale,
                                              model_kwargs=spec["kwargs"])
            per_model[display_name] = result.as_dict()
            row: Dict[str, object] = {"dataset": dataset, "model": display_name}
            row.update({key: result.values.get(key, 0.0) for key in keys})
            rows.append(row)

        # Improvement of LayerGCN (Full) over the best baseline per metric.
        baselines = [name for name in models if name not in _PROPOSED]
        if "LayerGCN (Full)" in per_model and baselines:
            full = per_model["LayerGCN (Full)"]
            for key in keys:
                best_baseline = max(per_model[name].get(key, 0.0) for name in baselines)
                improvement = ((full.get(key, 0.0) - best_baseline) / best_baseline * 100.0
                               if best_baseline > 0 else float("nan"))
                for row in rows:
                    if row["dataset"] == dataset and row["model"] == "LayerGCN (Full)":
                        row[f"improvement_{key}"] = improvement
    return rows


def format_table2(rows: List[Dict[str, object]], ks: Sequence[int] = (10, 20, 50)) -> str:
    """Render the Table II rows grouped by dataset."""
    keys = metric_keys(ks)
    blocks: List[str] = []
    datasets = sorted({row["dataset"] for row in rows}, key=str)
    for dataset in datasets:
        dataset_rows = [row for row in rows if row["dataset"] == dataset]
        blocks.append(f"== {dataset} ==")
        blocks.append(format_table(dataset_rows, ["model"] + keys))
        full_rows = [row for row in dataset_rows if row["model"] == "LayerGCN (Full)"]
        if full_rows and any(f"improvement_{key}" in full_rows[0] for key in keys):
            improvements = ", ".join(
                f"{key}: {full_rows[0].get(f'improvement_{key}', float('nan')):+.2f}%"
                for key in keys)
            blocks.append(f"LayerGCN (Full) vs best baseline: {improvements}")
        blocks.append("")
    return "\n".join(blocks)


def run_significance(
    dataset: str = "mooc",
    baseline: str = "LightGCN",
    metric: str = "recall@20",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, object]:
    """5-seed paired t-test of LayerGCN (Full) vs one baseline (Table II footnote)."""
    scale = scale or ExperimentScale.quick()
    layergcn_scores: List[float] = []
    baseline_scores: List[float] = []
    for seed in seeds:
        scale.seed = seed
        splits = load_splits([dataset], scale=scale, seed=seed)
        split = splits[dataset]
        spec_full = TABLE2_MODELS["LayerGCN (Full)"]
        spec_base = TABLE2_MODELS[baseline]
        _, _, result_full = train_and_evaluate(spec_full["name"], split, scale,
                                               model_kwargs=spec_full["kwargs"])
        _, _, result_base = train_and_evaluate(spec_base["name"], split, scale,
                                               model_kwargs=spec_base["kwargs"])
        layergcn_scores.append(result_full.values.get(metric, 0.0))
        baseline_scores.append(result_base.values.get(metric, 0.0))
    report = paired_t_test(layergcn_scores, baseline_scores)
    return {
        "dataset": dataset,
        "baseline": baseline,
        "metric": metric,
        "layergcn_scores": layergcn_scores,
        "baseline_scores": baseline_scores,
        "p_value": report.p_value,
        "significant": report.significant,
        "improvement_percent": report.improvement,
    }
