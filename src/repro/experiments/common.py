"""Shared helpers for the per-table/per-figure experiment harnesses.

Every experiment in this package is a pure function that builds its workload
(synthetic dataset presets), trains the relevant models and returns plain
dictionaries / lists that the benchmark scripts print as the paper's tables.

The defaults are deliberately small (small embedding dimension, few epochs)
so the full suite runs on a laptop CPU in minutes; the knobs are exposed so a
user with more time can turn them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from ..data import DataSplit, prepare_split
from ..eval import EvaluationResult, RankingEvaluator
from ..models import build_model
from ..training import Trainer, TrainerConfig, TrainingHistory

__all__ = [
    "ExperimentScale",
    "DATASET_NAMES",
    "load_splits",
    "train_and_evaluate",
    "format_table",
    "metric_keys",
]

# The four datasets of Table I, in the order the paper lists them.
DATASET_NAMES: Tuple[str, ...] = ("mooc", "games", "food", "yelp")


@dataclass
class ExperimentScale:
    """Controls how heavy an experiment run is.

    ``quick`` (the default for tests and pytest-benchmark runs) trains small
    models for a handful of epochs; ``full`` approximates the paper's setup
    more closely while remaining CPU-friendly.
    """

    embedding_dim: int = 32
    epochs: int = 12
    batch_size: int = 512
    learning_rate: float = 0.005
    early_stopping_patience: int = 0
    dataset_scale: float = 0.5
    eval_ks: Sequence[int] = (10, 20, 50)
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls(embedding_dim=16, epochs=5, batch_size=512, dataset_scale=0.3)

    @classmethod
    def full(cls) -> "ExperimentScale":
        return cls(embedding_dim=64, epochs=60, batch_size=1024, dataset_scale=1.0,
                   early_stopping_patience=10)

    def trainer_config(self, **overrides) -> TrainerConfig:
        config = TrainerConfig(
            learning_rate=self.learning_rate,
            epochs=self.epochs,
            eval_every=1,
            early_stopping_patience=self.early_stopping_patience,
            validation_ks=self.eval_ks,
            # Batching is pipeline-owned: route the scale's batch size through
            # the trainer so every model uses the same spec override.
            batch_size=self.batch_size,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


def load_splits(names: Sequence[str] = DATASET_NAMES, scale: Optional[ExperimentScale] = None,
                seed: int = 0) -> Dict[str, DataSplit]:
    """Prepare the train/valid/test splits of the requested dataset presets."""
    scale = scale or ExperimentScale()
    return {
        name: prepare_split(name, seed=seed, scale=scale.dataset_scale)
        for name in names
    }


def metric_keys(ks: Sequence[int] = (10, 20, 50),
                metrics: Sequence[str] = ("recall", "ndcg")) -> List[str]:
    """Metric column names in the paper's ordering (R@10.. then N@10..)."""
    return [f"{metric}@{k}" for metric in metrics for k in ks]


def train_and_evaluate(
    model_name: str,
    split: DataSplit,
    scale: ExperimentScale,
    model_kwargs: Optional[Dict] = None,
    trainer_overrides: Optional[Dict] = None,
    callbacks: Optional[list] = None,
) -> Tuple[object, TrainingHistory, EvaluationResult]:
    """Train one model on one split and evaluate it on the test partition."""
    kwargs = dict(embedding_dim=scale.embedding_dim, batch_size=scale.batch_size,
                  seed=scale.seed)
    kwargs.update(model_kwargs or {})
    model = build_model(model_name, split, **kwargs)
    # Precedence: an explicit model-level batch_size (model_kwargs) beats the
    # scale default that trainer_config bakes into the pipeline override;
    # trainer_overrides beats both.
    overrides = dict(trainer_overrides or {})
    if "batch_size" not in overrides:
        overrides["batch_size"] = kwargs["batch_size"]
    config = scale.trainer_config(**overrides)
    trainer = Trainer(model, split, config, callbacks=callbacks)
    history = trainer.fit()
    evaluator = RankingEvaluator(split, ks=scale.eval_ks, metrics=("recall", "ndcg"))
    result = evaluator.evaluate(model, which="test")
    return model, history, result


def format_table(rows: List[Dict[str, object]], columns: Sequence[str],
                 float_precision: int = 4) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    header = list(columns)
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for column in header:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.{float_precision}f}")
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [max(len(header[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)
