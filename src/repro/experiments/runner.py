"""Experiment registry: run any paper table/figure by its identifier.

>>> from repro.experiments import run_experiment, list_experiments
>>> rows = run_experiment("table3", scale="quick")

The registry maps the identifiers used in DESIGN.md / EXPERIMENTS.md to the
functions in this package, so benchmarks, examples and the documentation all
refer to experiments the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .common import ExperimentScale
from .datasets import run_table1
from .degree_distribution import run_degree_cdf
from .dropout_convergence import run_convergence_sweep, run_loss_curves, run_table4
from .hyperparams import run_hyperparameter_grid
from .layers import run_layer_sweep, run_table3
from .mixed_dropout import run_table5
from .overall import run_table2
from .weights_visualization import run_layer_similarities, run_weight_collapse

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment", "resolve_scale"]


def resolve_scale(scale) -> Optional[ExperimentScale]:
    """Accept an ExperimentScale, the strings 'quick'/'full', or None."""
    if scale is None or isinstance(scale, ExperimentScale):
        return scale
    if isinstance(scale, str):
        if scale == "quick":
            return ExperimentScale.quick()
        if scale == "full":
            return ExperimentScale.full()
        raise ValueError("scale string must be 'quick' or 'full'")
    raise TypeError("scale must be None, 'quick', 'full' or an ExperimentScale")


# Identifier -> (callable, short description).  All callables accept
# ``scale=`` except table1/fig4 which operate on raw datasets.
EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "table1": {"runner": run_table1, "takes_scale": False,
               "description": "Dataset statistics (users/items/interactions/sparsity)"},
    "table2": {"runner": run_table2, "takes_scale": True,
               "description": "Overall performance comparison of all models"},
    "table3": {"runner": run_table3, "takes_scale": True,
               "description": "LayerGCN vs LightGCN across layer counts (MOOC)"},
    "table4": {"runner": run_table4, "takes_scale": True,
               "description": "DegreeDrop vs DropEdge accuracy at fixed/best epochs"},
    "table5": {"runner": run_table5, "takes_scale": True,
               "description": "Mixed DegreeDrop/DropEdge comparison"},
    "fig1": {"runner": run_weight_collapse, "takes_scale": True,
             "description": "Learnable layer weights collapse onto the ego layer"},
    "fig3a": {"runner": run_convergence_sweep, "takes_scale": True,
              "description": "Best epoch per edge-dropout ratio (convergence)"},
    "fig3b": {"runner": run_loss_curves, "takes_scale": True,
              "description": "Batch-loss curves for DegreeDrop vs DropEdge"},
    "fig4": {"runner": run_degree_cdf, "takes_scale": False,
             "description": "CDF of rooted item degrees (MOOC vs Yelp)"},
    "fig5": {"runner": run_layer_similarities, "takes_scale": True,
             "description": "LayerGCN per-layer refinement similarities during training"},
    "fig6": {"runner": run_layer_sweep, "takes_scale": True,
             "description": "Effect of the number of layers (1-8) on both models"},
    "fig7": {"runner": run_hyperparameter_grid, "takes_scale": True,
             "description": "Regularisation vs dropout-ratio grid"},
}


def list_experiments() -> List[str]:
    """Identifiers of all reproducible tables and figures."""
    return sorted(EXPERIMENTS)


def run_experiment(identifier: str, scale=None, **kwargs):
    """Run one experiment by identifier, e.g. ``run_experiment('table3', scale='quick')``."""
    key = identifier.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment '{identifier}'; options: {list_experiments()}")
    spec = EXPERIMENTS[key]
    runner: Callable = spec["runner"]
    if spec["takes_scale"]:
        kwargs.setdefault("scale", resolve_scale(scale))
    return runner(**kwargs)
