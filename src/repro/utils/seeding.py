"""Reproducibility helpers."""

from __future__ import annotations

import random

import numpy as np

__all__ = ["seed_everything"]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and NumPy's global RNGs and return a seeded Generator.

    Models and samplers in this library take explicit ``seed`` / ``rng``
    arguments, so this helper is only needed for code paths that rely on the
    global NumPy state (e.g. ad-hoc notebook experimentation).
    """
    random.seed(seed)
    np.random.seed(seed)
    return np.random.default_rng(seed)
