"""Model persistence: save and restore trained recommenders.

Checkpoints are plain ``.npz`` archives containing every parameter array plus
a JSON metadata blob (model name, constructor arguments worth restoring,
library version).  They can be reloaded into a freshly constructed model of
the same architecture via :func:`load_checkpoint`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_metadata"]

_METADATA_KEY = "__repro_metadata__"


def save_checkpoint(model, path: Union[str, Path],
                    extra_metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write the model's parameters and metadata to ``path`` (.npz).

    Parameters
    ----------
    model:
        Any :class:`repro.autograd.Module` (all recommenders qualify).
    path:
        Destination file; the ``.npz`` suffix is added if missing.
    extra_metadata:
        Optional JSON-serialisable dict stored alongside the weights (e.g.
        training history summaries or dataset information).
    """
    from .. import __version__

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    state = model.state_dict()
    metadata = {
        "model_name": getattr(model, "name", type(model).__name__),
        "model_class": type(model).__name__,
        "num_parameters": int(model.num_parameters()),
        "library_version": __version__,
        "embedding_dim": getattr(model, "embedding_dim", None),
        "extra": extra_metadata or {},
    }
    arrays = {f"param/{name}": value for name, value in state.items()}
    arrays[_METADATA_KEY] = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def checkpoint_metadata(path: Union[str, Path]) -> Dict[str, object]:
    """Read only the metadata blob of a checkpoint."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if _METADATA_KEY not in archive:
            raise KeyError("not a repro checkpoint: metadata block missing")
        raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
    return json.loads(raw)


def load_checkpoint(model, path: Union[str, Path], strict_class: bool = True) -> Dict[str, object]:
    """Load a checkpoint's parameters into ``model`` and return its metadata.

    ``model`` must already be constructed with the same architecture (shapes
    are validated by ``load_state_dict``).  With ``strict_class=True`` the
    checkpoint must have been produced by the same model class.
    """
    path = Path(path)
    metadata = checkpoint_metadata(path)
    if strict_class and metadata.get("model_class") != type(model).__name__:
        raise ValueError(
            f"checkpoint was written by {metadata.get('model_class')}, "
            f"but a {type(model).__name__} instance was provided "
            "(pass strict_class=False to override)")
    with np.load(path, allow_pickle=False) as archive:
        state = {key[len("param/"):]: archive[key]
                 for key in archive.files if key.startswith("param/")}
    model.load_state_dict(state)
    return metadata
