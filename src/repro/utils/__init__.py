"""Utility helpers: checkpointing and experiment reproducibility."""

from .checkpoint import checkpoint_metadata, load_checkpoint, save_checkpoint
from .seeding import seed_everything

__all__ = ["checkpoint_metadata", "load_checkpoint", "save_checkpoint", "seed_everything"]
