"""Reverse-mode automatic differentiation on top of NumPy arrays.

The paper's models (LightGCN, LayerGCN and the baselines) are trained with
gradient descent in PyTorch.  PyTorch is not available in this environment,
so this module provides the minimal-but-complete autograd substrate the rest
of the library is built on: a :class:`Tensor` that records the operations
applied to it and can back-propagate exact gradients through them.

Design notes
------------
* A ``Tensor`` wraps a ``numpy.ndarray`` (always ``float64`` unless the caller
  asks otherwise) plus an optional gradient buffer and a closure that knows
  how to push gradients to its parents.
* The graph is a DAG of ``Tensor`` nodes; :meth:`Tensor.backward` runs a
  topological sort and calls each node's backward closure exactly once.
* Broadcasting is supported for the element-wise operators; gradients are
  summed back down to the original shape by :func:`_unbroadcast`.
* Sparse propagation (the :math:`\\hat{A} X` product at the heart of every
  GCN model here) lives in :mod:`repro.autograd.sparse_ops` and plugs into
  the same graph.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Process-wide switch that disables graph construction (inference mode)."""

    enabled: bool = True


class no_grad:
    """Context manager mirroring ``torch.no_grad()``.

    While active, newly created tensors do not record backward closures, which
    makes evaluation loops cheaper and prevents accidental graph growth.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GradMode.enabled


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array that supports reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=np.float64,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data, dtype=dtype)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            ``1`` and therefore requires this tensor to be a scalar, matching
            the usual ``loss.backward()`` idiom.
        """
        if not self.requires_grad:
            raise RuntimeError("Called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Element-wise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use exp/log instead")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # Comparison operators return plain boolean arrays (no gradient flows).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(self.data.T @ grad)

        return Tensor._make(data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis)
            self._accumulate(np.broadcast_to(grad_arr, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def norm(self, axis: Optional[int] = None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm along ``axis`` with a numerical floor to keep it differentiable at 0."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps) ** 0.5

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(data, (self,), backward)

    def softplus(self) -> "Tensor":
        """Numerically stable log(1 + exp(x))."""
        data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return Tensor._make(data, (self,), backward)

    def clip(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        data = np.clip(self.data, min_value, max_value)
        mask = np.ones_like(self.data)
        if min_value is not None:
            mask = mask * (self.data >= min_value)
        if max_value is not None:
            mask = mask * (self.data <= max_value)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Indexing / gathering
    # ------------------------------------------------------------------ #
    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding gather) with scatter-add gradient.

        Equivalent to ``self[indices]`` for a 1-D integer index array but kept
        as an explicit method because it is the hot path of every embedding
        model in the library.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward)


def _promote(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)
