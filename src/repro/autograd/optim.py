"""Gradient-descent optimisers.

The paper trains every model with Adam (Section V-A-4); SGD with optional
momentum is provided for completeness and for ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding a parameter list and the zero_grad/step protocol."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with decoupled-style weight decay option."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._first_moment.get(id(param))
            v = self._second_moment.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._first_moment[id(param)] = m
            self._second_moment[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
