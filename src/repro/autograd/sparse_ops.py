"""Sparse-dense operations for graph propagation.

Every GCN model in this library performs the propagation step
:math:`X^{(l+1)} = \\hat{A} X^{(l)}` where :math:`\\hat{A}` is a fixed
(sparse, non-learnable) normalised adjacency matrix and :math:`X^{(l)}` is a
dense, learnable embedding matrix.  Because the adjacency never receives a
gradient, the backward pass only needs the transpose product
:math:`\\hat{A}^\\top G`.

The machinery (CSR storage, cached transpose, dtype policy, buffer reuse)
lives in :class:`repro.engine.PropagationEngine`; this module keeps the
historical autograd-level names as thin aliases so existing code and tests
keep working.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..engine.propagation import PropagationEngine
from .tensor import Tensor

__all__ = ["sparse_matmul", "SparseTensor"]


class SparseTensor(PropagationEngine):
    """Historical name for the propagation operator (see ``repro.engine``).

    Retained as a subclass so ``isinstance`` checks and pickled references
    to the old class keep working; new code should construct
    :class:`repro.engine.PropagationEngine` directly.
    """


def sparse_matmul(adjacency: Union[PropagationEngine, sp.spmatrix, np.ndarray],
                  dense: Tensor) -> Tensor:
    """Differentiable product ``adjacency @ dense`` with a fixed sparse operand.

    Parameters
    ----------
    adjacency:
        The (non-learnable) sparse propagation matrix — a
        :class:`PropagationEngine`, scipy sparse matrix or dense array of
        shape ``(n, n)`` or ``(m, n)``.
    dense:
        Learnable dense matrix of shape ``(n, d)``.

    Returns
    -------
    Tensor of shape ``(m, d)`` whose backward pass propagates
    ``adjacency.T @ grad`` to ``dense``.
    """
    if not isinstance(adjacency, PropagationEngine):
        adjacency = PropagationEngine(adjacency)
    return adjacency.apply(dense)
