"""Sparse-dense operations for graph propagation.

Every GCN model in this library performs the propagation step
:math:`X^{(l+1)} = \\hat{A} X^{(l)}` where :math:`\\hat{A}` is a fixed
(sparse, non-learnable) normalised adjacency matrix and :math:`X^{(l)}` is a
dense, learnable embedding matrix.  Because the adjacency never receives a
gradient, the backward pass only needs the transpose product
:math:`\\hat{A}^\\top G`.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor

__all__ = ["sparse_matmul", "SparseTensor"]


class SparseTensor:
    """Thin wrapper around a ``scipy.sparse`` matrix used as a propagation operator.

    The wrapper stores the matrix in CSR format (fast row-slicing and fast
    matrix-vector products) and caches its transpose so that repeated backward
    passes do not re-transpose on every step.
    """

    def __init__(self, matrix: Union[sp.spmatrix, np.ndarray]) -> None:
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        self._matrix = matrix.tocsr().astype(np.float64)
        self._transpose: sp.csr_matrix = None

    @property
    def shape(self):
        return self._matrix.shape

    @property
    def nnz(self) -> int:
        return self._matrix.nnz

    @property
    def matrix(self) -> sp.csr_matrix:
        return self._matrix

    def transpose_matrix(self) -> sp.csr_matrix:
        if self._transpose is None:
            self._transpose = self._matrix.transpose().tocsr()
        return self._transpose

    def to_dense(self) -> np.ndarray:
        return self._matrix.toarray()

    def __repr__(self) -> str:
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"


def sparse_matmul(adjacency: Union[SparseTensor, sp.spmatrix], dense: Tensor) -> Tensor:
    """Differentiable product ``adjacency @ dense`` with a fixed sparse operand.

    Parameters
    ----------
    adjacency:
        The (non-learnable) sparse propagation matrix, shape ``(n, n)`` or
        ``(m, n)``.
    dense:
        Learnable dense matrix of shape ``(n, d)``.

    Returns
    -------
    Tensor of shape ``(m, d)`` whose backward pass propagates
    ``adjacency.T @ grad`` to ``dense``.
    """
    if not isinstance(adjacency, SparseTensor):
        adjacency = SparseTensor(adjacency)
    data = adjacency.matrix @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(adjacency.transpose_matrix() @ grad)

    return Tensor._make(data, (dense,), backward)
