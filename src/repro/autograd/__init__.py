"""NumPy-based reverse-mode autograd substrate.

This subpackage replaces PyTorch for the purposes of this reproduction: it
provides tensors with exact reverse-mode gradients, dense and sparse ops,
parameter containers, initialisers and optimisers.  See DESIGN.md for the
substitution rationale.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .sparse_ops import SparseTensor, sparse_matmul
from .module import Module, Parameter
from .optim import Adam, Optimizer, SGD
from . import functional
from . import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "SparseTensor",
    "sparse_matmul",
    "Module",
    "Parameter",
    "Adam",
    "SGD",
    "Optimizer",
    "functional",
    "init",
]
