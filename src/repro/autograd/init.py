"""Parameter initialisation schemes.

The paper (Section V-A-4) initialises all embeddings with the Xavier method,
so :func:`xavier_uniform` / :func:`xavier_normal` are the defaults across the
library.  Each function returns a plain ``numpy.ndarray`` that callers wrap in
a :class:`~repro.autograd.module.Parameter`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal", "zeros", "ones"]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires a non-scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation U(-a, a), a = gain * sqrt(6 / (fan_in + fan_out))."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(tuple(shape))
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation N(0, gain^2 * 2 / (fan_in + fan_out))."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], mean: float = 0.0, std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Plain Gaussian initialisation."""
    rng = rng or np.random.default_rng()
    return rng.normal(mean, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
