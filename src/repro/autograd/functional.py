"""Functional building blocks used by the recommendation models.

These are free functions that operate on :class:`~repro.autograd.tensor.Tensor`
objects and compose into the losses and propagation rules of the paper:

* :func:`row_cosine_similarity` — the layer-refinement SIM function (Eq. 8).
* :func:`logsigmoid` / :func:`bpr_loss_terms` — the BPR objective (Eq. 11).
* :func:`softmax`, :func:`log_softmax` — used by MultiVAE's multinomial
  likelihood and by the learnable layer-weight variant of LightGCN (Fig. 1).
* :func:`dropout` — standard inverted dropout for the MLP-style baselines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "concat",
    "stack",
    "dropout",
    "softmax",
    "log_softmax",
    "logsigmoid",
    "row_cosine_similarity",
    "l2_normalize",
    "scale_rows",
    "embedding_l2",
    "mse",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def dropout(tensor: Tensor, rate: float, rng: Optional[np.random.Generator] = None,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero a fraction ``rate`` of entries and rescale the rest."""
    if not training or rate <= 0.0 or not is_grad_enabled():
        return tensor
    if rate >= 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    rng = rng or np.random.default_rng()
    keep = 1.0 - rate
    mask = (rng.random(tensor.shape) < keep) / keep
    return tensor * Tensor(mask)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax built from autograd primitives."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = tensor - Tensor(tensor.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def logsigmoid(tensor: Tensor) -> Tensor:
    """log(sigmoid(x)) computed as -softplus(-x) for numerical stability."""
    return -((-tensor).softplus())


def l2_normalize(tensor: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise rows (or the given axis) to unit L2 norm."""
    return tensor / tensor.norm(axis=axis, keepdims=True, eps=eps)


def row_cosine_similarity(current: Tensor, ego: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity between two matrices (Eq. 8 of the paper).

    Both inputs have shape ``(n, d)``; the result has shape ``(n, 1)`` so that
    it broadcasts over the embedding dimension when used to rescale a layer.
    The denominator is floored at ``eps`` exactly as in Eq. 8
    (``max(||x_i|| * ||x_j||, eps)``).
    """
    dot = (current * ego).sum(axis=1, keepdims=True)
    norm_product = current.norm(axis=1, keepdims=True) * ego.norm(axis=1, keepdims=True)
    # Floor the denominator at ``eps`` exactly as Eq. 8 does; gradients flow
    # through both the dot product and the norms whenever the norms exceed eps.
    denom = norm_product.clip(min_value=eps)
    return dot / denom


def scale_rows(tensor: Tensor, weights: Tensor) -> Tensor:
    """Multiply every row of ``tensor`` by the corresponding scalar in ``weights``.

    ``weights`` may be shaped ``(n,)`` or ``(n, 1)``; broadcasting handles the
    rest.  Used by the layer-refinement step ``X^{l+1} = (a^{l+1} + eps) X^{l+1}``.
    """
    if weights.ndim == 1:
        weights = weights.reshape(-1, 1)
    return tensor * weights


def embedding_l2(*tensors: Tensor) -> Tensor:
    """0.5 * sum of squared entries of the given tensors (L2 regulariser)."""
    total: Optional[Tensor] = None
    for tensor in tensors:
        term = (tensor * tensor).sum() * 0.5
        total = term if total is None else total + term
    if total is None:
        raise ValueError("embedding_l2 requires at least one tensor")
    return total


def mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()
