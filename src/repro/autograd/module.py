"""Module/Parameter abstractions, mirroring the torch.nn.Module interface.

Models in :mod:`repro.models` and :mod:`repro.core` subclass :class:`Module`
so the :class:`~repro.autograd.optim.Optimizer` implementations can find their
parameters generically and so training/evaluation modes can be toggled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for everything with learnable parameters.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are picked up automatically by :meth:`parameters` and
    :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Attribute bookkeeping
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # State (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict name/shape match)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
