"""Top-K ranking metrics.

Implements Recall@K (Eq. 26) and NDCG@K (Eq. 27) exactly as defined in the
paper, plus Precision@K, HitRate@K and MAP@K which are useful for extended
analyses and appear in the wider GCN-recommendation literature.

All functions operate on a single user's ranked recommendation list plus the
set of ground-truth items; aggregate (averaged over users) versions live in
:mod:`repro.eval.ranking`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

import numpy as np

__all__ = [
    "recall_at_k",
    "precision_at_k",
    "hit_rate_at_k",
    "dcg_at_k",
    "idcg_at_k",
    "ndcg_at_k",
    "average_precision_at_k",
    "METRIC_FUNCTIONS",
]


def _hits(ranked_items: Sequence[int], relevant: Set[int], k: int) -> np.ndarray:
    """Binary relevance vector of the top-``k`` ranked items."""
    top_k = list(ranked_items[:k])
    return np.asarray([1.0 if item in relevant else 0.0 for item in top_k], dtype=np.float64)


def recall_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Recall@K = (# relevant items in top-K) / (# relevant items) (Eq. 26)."""
    relevant = set(relevant)
    if not relevant:
        return 0.0
    return float(_hits(ranked_items, relevant, k).sum() / len(relevant))


def precision_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Precision@K = (# relevant items in top-K) / K."""
    relevant = set(relevant)
    if k <= 0:
        return 0.0
    return float(_hits(ranked_items, relevant, k).sum() / k)


def hit_rate_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """1 if at least one relevant item appears in the top-K else 0."""
    relevant = set(relevant)
    return float(_hits(ranked_items, relevant, k).sum() > 0)


def dcg_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Discounted cumulative gain with binary relevance (Eq. 27).

    The paper uses the ``(2^rel - 1) / log(i + 1)`` formulation with natural
    ranks starting at 1, which for binary relevance reduces to
    ``1 / log2(i + 1)``.
    """
    relevant = set(relevant)
    hits = _hits(ranked_items, relevant, k)
    if hits.size == 0:
        return 0.0
    positions = np.arange(1, hits.size + 1, dtype=np.float64)
    return float(np.sum((np.power(2.0, hits) - 1.0) / np.log2(positions + 1.0)))


def idcg_at_k(num_relevant: int, k: int) -> float:
    """Ideal DCG: all relevant items ranked at the top (capped at K)."""
    best = min(num_relevant, k)
    if best <= 0:
        return 0.0
    positions = np.arange(1, best + 1, dtype=np.float64)
    return float(np.sum(1.0 / np.log2(positions + 1.0)))


def ndcg_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """NDCG@K = DCG@K / IDCG@K, in [0, 1]."""
    relevant = set(relevant)
    ideal = idcg_at_k(len(relevant), k)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(ranked_items, relevant, k) / ideal


def average_precision_at_k(ranked_items: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """MAP@K component for a single user."""
    relevant = set(relevant)
    if not relevant:
        return 0.0
    hits = _hits(ranked_items, relevant, k)
    if hits.sum() == 0:
        return 0.0
    precisions = np.cumsum(hits) / np.arange(1, hits.size + 1)
    return float(np.sum(precisions * hits) / min(len(relevant), k))


METRIC_FUNCTIONS: Dict[str, callable] = {
    "recall": recall_at_k,
    "ndcg": ndcg_at_k,
    "precision": precision_at_k,
    "hit_rate": hit_rate_at_k,
    "map": average_precision_at_k,
}
