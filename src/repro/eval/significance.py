"""Statistical significance testing for model comparisons.

The paper reports (Table II footnote) that LayerGCN's improvements over the
best baseline are significant at p < 0.05 under a paired t-test across 5
random seeds.  This module provides that test both across seeds (paired lists
of per-seed metric values) and across users (paired per-user metric arrays
from :class:`repro.eval.ranking.EvaluationResult`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["SignificanceReport", "paired_t_test", "compare_per_user"]


@dataclass(frozen=True)
class SignificanceReport:
    """Outcome of a paired significance test."""

    mean_a: float
    mean_b: float
    t_statistic: float
    p_value: float
    num_pairs: int
    alpha: float = 0.05

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at the configured alpha."""
        return bool(self.p_value < self.alpha)

    @property
    def improvement(self) -> float:
        """Relative improvement of A over B in percent ((a - b) / b * 100)."""
        if self.mean_b == 0:
            return float("inf") if self.mean_a > 0 else 0.0
        return (self.mean_a - self.mean_b) / abs(self.mean_b) * 100.0

    def __repr__(self) -> str:
        marker = "*" if self.significant else ""
        return (
            f"SignificanceReport(a={self.mean_a:.4f}, b={self.mean_b:.4f}, "
            f"improv={self.improvement:+.2f}%{marker}, p={self.p_value:.4g}, n={self.num_pairs})"
        )


def paired_t_test(values_a: Sequence[float], values_b: Sequence[float],
                  alpha: float = 0.05) -> SignificanceReport:
    """Two-sided paired t-test between two matched samples.

    Typically ``values_a``/``values_b`` are the per-seed metric values of the
    proposed model and the best baseline (5 entries each in the paper).
    """
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired test requires equal-length samples")
    if a.size < 2:
        raise ValueError("paired test requires at least two pairs")
    if np.allclose(a - b, 0.0):
        # Identical samples: scipy returns NaN; report p=1 explicitly.
        t_stat, p_value = 0.0, 1.0
    else:
        t_stat, p_value = stats.ttest_rel(a, b)
    return SignificanceReport(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        t_statistic=float(t_stat),
        p_value=float(p_value),
        num_pairs=int(a.size),
        alpha=alpha,
    )


def compare_per_user(result_a, result_b, metric: str, alpha: float = 0.05) -> SignificanceReport:
    """Paired t-test over per-user metric values of two evaluation results."""
    if metric not in result_a.per_user or metric not in result_b.per_user:
        raise KeyError(f"metric '{metric}' missing from one of the evaluation results")
    return paired_t_test(result_a.per_user[metric], result_b.per_user[metric], alpha=alpha)
