"""Reference (per-user loop) implementation of the ranking protocol.

This is the historical implementation of :class:`RankingEvaluator`, kept
verbatim as the behavioural oracle: it masks training positives one user at
a time and accumulates every metric through the scalar functions in
:mod:`repro.eval.metrics`.  The vectorised evaluator in
:mod:`repro.eval.ranking` must match it within 1e-9 — the parity tests and
``benchmarks/bench_engine_throughput.py`` assert exactly that.

Do not optimise this module; its value is being slow and obviously correct.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..data import DataSplit
from .metrics import METRIC_FUNCTIONS

__all__ = ["ReferenceRankingEvaluator"]

DEFAULT_KS = (10, 20, 50)
DEFAULT_METRICS = ("recall", "ndcg")


class ReferenceRankingEvaluator:
    """Per-user-loop evaluator (see module docstring).

    Mirrors the constructor and ``evaluate`` signature of
    :class:`repro.eval.RankingEvaluator` and returns the same
    :class:`repro.eval.EvaluationResult` type.
    """

    def __init__(
        self,
        split: DataSplit,
        ks: Sequence[int] = DEFAULT_KS,
        metrics: Sequence[str] = DEFAULT_METRICS,
        batch_size: int = 256,
    ) -> None:
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise KeyError(f"unknown metrics {unknown}; options: {sorted(METRIC_FUNCTIONS)}")
        if any(k <= 0 for k in ks):
            raise ValueError("all cut-offs must be positive")
        self.split = split
        self.ks = tuple(int(k) for k in ks)
        self.metrics = tuple(metrics)
        self.batch_size = int(batch_size)
        self._train_positives = split.train_positive_sets()

    # ------------------------------------------------------------------ #
    def evaluate(self, model, which: str = "test"):
        """Evaluate ``model`` (anything with ``score_users(users) -> ndarray``)."""
        from .ranking import EvaluationResult  # local import to avoid a cycle

        ground_truth = self.split.ground_truth(which)
        users = np.asarray(sorted(ground_truth), dtype=np.int64)
        result = EvaluationResult()
        if users.size == 0:
            return result

        max_k = max(self.ks)
        per_user: Dict[str, List[float]] = {
            f"{metric}@{k}": [] for metric in self.metrics for k in self.ks
        }

        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            scores = np.asarray(model.score_users(batch_users), dtype=np.float64)
            if scores.shape != (batch_users.size, self.split.num_items):
                raise ValueError(
                    "score_users must return an array of shape (num_users_in_batch, num_items); "
                    f"got {scores.shape}"
                )
            # Mask training positives so they cannot be recommended again.
            for row, user in enumerate(batch_users):
                positives = self._train_positives[int(user)]
                if positives:
                    scores[row, list(positives)] = -np.inf

            ranked = self._top_k_indices(scores, max_k)
            for row, user in enumerate(batch_users):
                relevant = ground_truth[int(user)]
                ranked_items = ranked[row]
                for metric in self.metrics:
                    func = METRIC_FUNCTIONS[metric]
                    for k in self.ks:
                        per_user[f"{metric}@{k}"].append(func(ranked_items, relevant, k))

        for key, values in per_user.items():
            array = np.asarray(values, dtype=np.float64)
            result.per_user[key] = array
            result.values[key] = float(array.mean()) if array.size else 0.0
        result.num_users_evaluated = int(users.size)
        return result

    @staticmethod
    def _top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
        """Indices of the top-``k`` scores per row, ordered by decreasing score."""
        k = min(k, scores.shape[1])
        partition = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        row_scores = np.take_along_axis(scores, partition, axis=1)
        order = np.argsort(-row_scores, axis=1, kind="stable")
        return np.take_along_axis(partition, order, axis=1)
