"""Full-ranking (all-ranking) evaluation protocol, fully vectorised.

Following Section V-A-3 of the paper: for every user with held-out
interactions, *all* items the user has not interacted with in the training
data are candidates; the model scores them, the top-K list is formed and
Recall@K / NDCG@K are averaged over users.

The evaluator routes through :mod:`repro.engine`: training positives are
masked with ONE flat-index assignment per batch (the split's cached
:class:`~repro.engine.UserItemIndex`), and every metric is computed over the
whole batch at once from a hit matrix plus cumulative discount tables — no
per-user Python loop anywhere on the hot path.  The historical loop
implementation survives as :class:`repro.eval.reference.ReferenceRankingEvaluator`
and the two agree within 1e-9 (asserted by the parity tests and
``benchmarks/bench_engine_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..data import DataSplit
from ..engine import InferenceIndex, UserItemIndex, train_exclusion_index
from ..engine.index import top_k_indices
from .metrics import METRIC_FUNCTIONS

__all__ = ["EvaluationResult", "RankingEvaluator", "evaluate_model"]

DEFAULT_KS = (10, 20, 50)
DEFAULT_METRICS = ("recall", "ndcg")

#: Metrics with a batch-vectorised kernel in :meth:`RankingEvaluator._metric_batch`.
VECTORIZED_METRICS = ("recall", "ndcg", "precision", "hit_rate", "map")


@dataclass
class EvaluationResult:
    """Aggregated metrics plus the per-user values behind them.

    ``values`` maps metric keys (e.g. ``"recall@20"``) to the mean over users;
    ``per_user`` holds the raw per-user arrays so significance tests (paired
    t-test across seeds or across models) can be run afterwards.
    """

    values: Dict[str, float] = field(default_factory=dict)
    per_user: Dict[str, np.ndarray] = field(default_factory=dict)
    num_users_evaluated: int = 0

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def keys(self) -> Iterable[str]:
        return self.values.keys()

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def format_row(self, metrics: Optional[Sequence[str]] = None, precision: int = 4) -> str:
        """Render metrics in a compact, table-friendly string."""
        keys = metrics if metrics is not None else sorted(self.values)
        parts = [f"{key}={self.values[key]:.{precision}f}" for key in keys]
        return "  ".join(parts)

    def __repr__(self) -> str:
        return f"EvaluationResult({self.format_row()})"


class RankingEvaluator:
    """Evaluates a recommender against a data split with the all-ranking protocol.

    Parameters
    ----------
    split:
        The train/valid/test split; the train interactions are used as the
        candidate mask (items already interacted with are excluded).  The
        exclusion index and per-partition ground-truth indexes are built once
        and cached on the split, so repeated evaluations (e.g. per-epoch
        validation inside ``Trainer.fit``) pay nothing to set up.
    ks:
        Cut-offs to report (the paper uses 10, 20, 50).
    metrics:
        Names from :data:`repro.eval.ranking.VECTORIZED_METRICS`.
    batch_size:
        Users scored per dense batch; bounds peak memory at
        ``batch_size * num_items`` doubles.
    """

    def __init__(
        self,
        split: DataSplit,
        ks: Sequence[int] = DEFAULT_KS,
        metrics: Sequence[str] = DEFAULT_METRICS,
        batch_size: int = 256,
    ) -> None:
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise KeyError(f"unknown metrics {unknown}; options: {sorted(METRIC_FUNCTIONS)}")
        not_vectorized = [m for m in metrics if m not in VECTORIZED_METRICS]
        if not_vectorized:
            raise KeyError(
                f"metrics {not_vectorized} have no vectorised kernel; "
                f"options: {sorted(VECTORIZED_METRICS)}"
            )
        if any(k <= 0 for k in ks):
            raise ValueError("all cut-offs must be positive")
        self.split = split
        self.ks = tuple(int(k) for k in ks)
        self.metrics = tuple(metrics)
        self.batch_size = int(batch_size)
        self._exclusion = train_exclusion_index(split)

    # ------------------------------------------------------------------ #
    def evaluate(self, model, which: str = "test") -> EvaluationResult:
        """Evaluate ``model`` (anything with ``score_users(users) -> ndarray``).

        Models exposing ``user_item_embeddings`` are frozen into an
        :class:`~repro.engine.InferenceIndex` once per call, so scoring is a
        dense matmul per batch; anything else is scored through its
        ``score_users``.
        """
        truth = UserItemIndex.from_split(self.split, which)
        users = truth.users_with_items()
        result = EvaluationResult()
        if users.size == 0:
            return result

        index = InferenceIndex.from_model(
            model, self.split, dtype=np.float64, exclusion=self._exclusion)

        max_k = max(self.ks)
        per_user: Dict[str, np.ndarray] = {
            f"{metric}@{k}": np.empty(users.size, dtype=np.float64)
            for metric in self.metrics for k in self.ks
        }
        # discounts[i] = 1 / log2(i + 2) is the gain of a hit at rank i + 1;
        # its running sum doubles as the IDCG table (best case: all hits at
        # the top), so NDCG needs no per-user ideal-ranking computation.
        discounts = 1.0 / np.log2(np.arange(2, max_k + 2, dtype=np.float64))
        cum_discounts = np.cumsum(discounts)

        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            scores = index.scores(batch_users, mask_train=True)
            ranked = top_k_indices(scores, max_k)

            # (batch, width) hit matrix: was the item at each rank relevant?
            relevant = truth.membership(batch_users)
            hits = relevant[np.arange(batch_users.size)[:, None], ranked]
            hits = hits.astype(np.float64)
            num_relevant = truth.counts(batch_users)

            width = ranked.shape[1]
            cum_hits = np.cumsum(hits, axis=1)
            cum_dcg = np.cumsum(hits * discounts[:width], axis=1)

            stop = start + batch_users.size
            for metric in self.metrics:
                for k in self.ks:
                    per_user[f"{metric}@{k}"][start:stop] = self._metric_batch(
                        metric, k, cum_hits, cum_dcg, hits, num_relevant,
                        cum_discounts)

        for key, values in per_user.items():
            result.per_user[key] = values
            result.values[key] = float(values.mean()) if values.size else 0.0
        result.num_users_evaluated = int(users.size)
        return result

    # ------------------------------------------------------------------ #
    @staticmethod
    def _metric_batch(metric: str, k: int, cum_hits: np.ndarray,
                      cum_dcg: np.ndarray, hits: np.ndarray,
                      num_relevant: np.ndarray,
                      cum_discounts: np.ndarray) -> np.ndarray:
        """One metric at one cut-off for a whole batch, no user loop.

        Every evaluated user has ``num_relevant >= 1`` (users without
        held-out items are never scored), so the divisions are safe.
        """
        width = cum_hits.shape[1]
        column = min(k, width) - 1
        if metric == "recall":
            return cum_hits[:, column] / num_relevant
        if metric == "ndcg":
            ideal = cum_discounts[np.minimum(num_relevant, k) - 1]
            return cum_dcg[:, column] / ideal
        if metric == "precision":
            return cum_hits[:, column] / float(k)
        if metric == "hit_rate":
            return (cum_hits[:, column] > 0).astype(np.float64)
        if metric == "map":
            ranks = np.arange(1, width + 1, dtype=np.float64)
            precisions = cum_hits / ranks
            average = np.cumsum(precisions * hits, axis=1)[:, column]
            return average / np.minimum(num_relevant, k)
        raise KeyError(f"no vectorised kernel for metric '{metric}'")

    @staticmethod
    def _top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
        """Indices of the top-``k`` scores per row, ordered by decreasing score."""
        return top_k_indices(scores, k)


def evaluate_model(model, split: DataSplit, ks: Sequence[int] = DEFAULT_KS,
                   metrics: Sequence[str] = DEFAULT_METRICS,
                   which: str = "test") -> EvaluationResult:
    """One-shot convenience wrapper around :class:`RankingEvaluator`."""
    return RankingEvaluator(split, ks=ks, metrics=metrics).evaluate(model, which=which)
