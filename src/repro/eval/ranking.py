"""Full-ranking (all-ranking) evaluation protocol.

Following Section V-A-3 of the paper: for every user with held-out
interactions, *all* items the user has not interacted with in the training
data are candidates; the model scores them, the top-K list is formed and
Recall@K / NDCG@K are averaged over users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data import DataSplit
from .metrics import METRIC_FUNCTIONS

__all__ = ["EvaluationResult", "RankingEvaluator", "evaluate_model"]

DEFAULT_KS = (10, 20, 50)
DEFAULT_METRICS = ("recall", "ndcg")


@dataclass
class EvaluationResult:
    """Aggregated metrics plus the per-user values behind them.

    ``values`` maps metric keys (e.g. ``"recall@20"``) to the mean over users;
    ``per_user`` holds the raw per-user arrays so significance tests (paired
    t-test across seeds or across models) can be run afterwards.
    """

    values: Dict[str, float] = field(default_factory=dict)
    per_user: Dict[str, np.ndarray] = field(default_factory=dict)
    num_users_evaluated: int = 0

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def keys(self) -> Iterable[str]:
        return self.values.keys()

    def as_dict(self) -> Dict[str, float]:
        return dict(self.values)

    def format_row(self, metrics: Optional[Sequence[str]] = None, precision: int = 4) -> str:
        """Render metrics in a compact, table-friendly string."""
        keys = metrics if metrics is not None else sorted(self.values)
        parts = [f"{key}={self.values[key]:.{precision}f}" for key in keys]
        return "  ".join(parts)

    def __repr__(self) -> str:
        return f"EvaluationResult({self.format_row()})"


class RankingEvaluator:
    """Evaluates a recommender against a data split with the all-ranking protocol.

    Parameters
    ----------
    split:
        The train/valid/test split; the train interactions are used as the
        candidate mask (items already interacted with are excluded).
    ks:
        Cut-offs to report (the paper uses 10, 20, 50).
    metrics:
        Names from :data:`repro.eval.metrics.METRIC_FUNCTIONS`.
    """

    def __init__(
        self,
        split: DataSplit,
        ks: Sequence[int] = DEFAULT_KS,
        metrics: Sequence[str] = DEFAULT_METRICS,
        batch_size: int = 256,
    ) -> None:
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise KeyError(f"unknown metrics {unknown}; options: {sorted(METRIC_FUNCTIONS)}")
        if any(k <= 0 for k in ks):
            raise ValueError("all cut-offs must be positive")
        self.split = split
        self.ks = tuple(int(k) for k in ks)
        self.metrics = tuple(metrics)
        self.batch_size = int(batch_size)
        self._train_positives = split.train_positive_sets()

    # ------------------------------------------------------------------ #
    def evaluate(self, model, which: str = "test") -> EvaluationResult:
        """Evaluate ``model`` (anything with ``score_users(users) -> ndarray``)."""
        ground_truth = self.split.ground_truth(which)
        users = np.asarray(sorted(ground_truth), dtype=np.int64)
        result = EvaluationResult()
        if users.size == 0:
            return result

        max_k = max(self.ks)
        per_user: Dict[str, List[float]] = {
            f"{metric}@{k}": [] for metric in self.metrics for k in self.ks
        }

        for start in range(0, users.size, self.batch_size):
            batch_users = users[start:start + self.batch_size]
            scores = np.asarray(model.score_users(batch_users), dtype=np.float64)
            if scores.shape != (batch_users.size, self.split.num_items):
                raise ValueError(
                    "score_users must return an array of shape (num_users_in_batch, num_items); "
                    f"got {scores.shape}"
                )
            # Mask training positives so they cannot be recommended again.
            for row, user in enumerate(batch_users):
                positives = self._train_positives[int(user)]
                if positives:
                    scores[row, list(positives)] = -np.inf

            ranked = self._top_k_indices(scores, max_k)
            for row, user in enumerate(batch_users):
                relevant = ground_truth[int(user)]
                ranked_items = ranked[row]
                for metric in self.metrics:
                    func = METRIC_FUNCTIONS[metric]
                    for k in self.ks:
                        per_user[f"{metric}@{k}"].append(func(ranked_items, relevant, k))

        for key, values in per_user.items():
            array = np.asarray(values, dtype=np.float64)
            result.per_user[key] = array
            result.values[key] = float(array.mean()) if array.size else 0.0
        result.num_users_evaluated = int(users.size)
        return result

    @staticmethod
    def _top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
        """Indices of the top-``k`` scores per row, ordered by decreasing score."""
        k = min(k, scores.shape[1])
        partition = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        row_scores = np.take_along_axis(scores, partition, axis=1)
        order = np.argsort(-row_scores, axis=1, kind="stable")
        return np.take_along_axis(partition, order, axis=1)


def evaluate_model(model, split: DataSplit, ks: Sequence[int] = DEFAULT_KS,
                   metrics: Sequence[str] = DEFAULT_METRICS,
                   which: str = "test") -> EvaluationResult:
    """One-shot convenience wrapper around :class:`RankingEvaluator`."""
    return RankingEvaluator(split, ks=ks, metrics=metrics).evaluate(model, which=which)
