"""Evaluation: ranking metrics, all-ranking protocol and significance tests."""

from .metrics import (
    METRIC_FUNCTIONS,
    average_precision_at_k,
    dcg_at_k,
    hit_rate_at_k,
    idcg_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from .ranking import (
    DEFAULT_KS,
    DEFAULT_METRICS,
    VECTORIZED_METRICS,
    EvaluationResult,
    RankingEvaluator,
    evaluate_model,
)
from .reference import ReferenceRankingEvaluator
from .significance import SignificanceReport, compare_per_user, paired_t_test

__all__ = [
    "METRIC_FUNCTIONS",
    "average_precision_at_k",
    "dcg_at_k",
    "hit_rate_at_k",
    "idcg_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "DEFAULT_KS",
    "DEFAULT_METRICS",
    "VECTORIZED_METRICS",
    "EvaluationResult",
    "RankingEvaluator",
    "ReferenceRankingEvaluator",
    "evaluate_model",
    "SignificanceReport",
    "compare_per_user",
    "paired_t_test",
]
