"""Smoke tests for every paper table/figure harness (quick scale)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentScale,
    best_cell,
    degree_skew_summary,
    format_grid,
    format_layer_sweep,
    format_table,
    format_table1,
    format_table3,
    format_table4,
    format_table5,
    list_experiments,
    metric_keys,
    resolve_scale,
    run_degree_cdf,
    run_experiment,
    run_table1,
)
from repro.experiments.common import train_and_evaluate
from repro.experiments.overall import TABLE2_MODELS, format_table2, run_table2


class TestTrainAndEvaluateBatchingPrecedence:
    def test_model_kwargs_batch_size_wins_over_scale(self, tiny_split, quick_scale):
        quick_scale.epochs = 1
        model, _, _ = train_and_evaluate("bpr", tiny_split, quick_scale,
                                         model_kwargs={"batch_size": 64})
        assert model.batch_size == 64

    def test_trainer_overrides_batch_size_wins_over_model_kwargs(self, tiny_split, quick_scale):
        quick_scale.epochs = 1
        model, _, _ = train_and_evaluate("bpr", tiny_split, quick_scale,
                                         model_kwargs={"batch_size": 64},
                                         trainer_overrides={"batch_size": 32})
        assert model.batch_size == 32


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        identifiers = set(list_experiments())
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "fig1", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7"}
        assert expected <= identifiers

    def test_every_entry_has_description(self):
        assert all(spec["description"] for spec in EXPERIMENTS.values())

    def test_unknown_identifier_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_resolve_scale(self):
        assert resolve_scale(None) is None
        assert isinstance(resolve_scale("quick"), ExperimentScale)
        assert resolve_scale("full").embedding_dim == 64
        with pytest.raises(ValueError):
            resolve_scale("huge")
        with pytest.raises(TypeError):
            resolve_scale(42)


class TestTable1:
    def test_rows_cover_all_datasets(self):
        rows = run_table1(scale=0.3)
        assert {row["dataset"] for row in rows} == {"mooc", "games", "food", "yelp"}

    def test_mooc_preserves_dense_shape(self):
        rows = {row["dataset"]: row for row in run_table1(scale=0.5)}
        assert rows["mooc"]["sparsity"] < rows["yelp"]["sparsity"]
        assert rows["mooc"]["users_per_item"] > rows["games"]["users_per_item"]

    def test_formatting(self):
        text = format_table1(run_table1(scale=0.3))
        assert "mooc" in text and "sparsity" in text


class TestTable2:
    def test_subset_run_produces_all_metrics(self, quick_scale):
        rows = run_table2(datasets=("mooc",),
                          models=("BPR", "LightGCN", "LayerGCN (Full)"),
                          scale=quick_scale)
        assert len(rows) == 3
        for key in metric_keys(quick_scale.eval_ks):
            assert all(key in row for row in rows)

    def test_improvement_columns_on_layergcn_full(self, quick_scale):
        rows = run_table2(datasets=("mooc",), models=("LightGCN", "LayerGCN (Full)"),
                          scale=quick_scale)
        full_row = next(row for row in rows if row["model"] == "LayerGCN (Full)")
        assert any(key.startswith("improvement_") for key in full_row)

    def test_unknown_model_rejected(self, quick_scale):
        with pytest.raises(KeyError):
            run_table2(datasets=("mooc",), models=("GPT-Rec",), scale=quick_scale)

    def test_model_table_matches_paper_columns(self):
        assert list(TABLE2_MODELS) == [
            "BPR", "MultiVAE", "EHCF", "BUIR", "NGCF", "LR-GCCF", "LightGCN",
            "UltraGCN", "IMP-GCN", "LayerGCN (w/o Dropout)", "LayerGCN (Full)"]

    def test_formatting(self, quick_scale):
        rows = run_table2(datasets=("mooc",), models=("BPR", "LayerGCN (Full)"),
                          scale=quick_scale)
        text = format_table2(rows, ks=quick_scale.eval_ks)
        assert "mooc" in text and "LayerGCN (Full)" in text


class TestTable3AndFig6:
    def test_table3_rows(self, quick_scale):
        rows = run_experiment("table3", scale=quick_scale, lightgcn_layers=(1, 2))
        assert len(rows) == 3  # LayerGCN + two LightGCN depths
        assert "recall@20" in rows[0]
        assert "LayerGCN" in format_table3(rows)

    def test_fig6_sweep(self, quick_scale):
        rows = run_experiment("fig6", scale=quick_scale, layers=(1, 2))
        assert len(rows) == 4  # two models x two depths
        assert "recall@50" in format_layer_sweep(rows)


class TestTable4AndFig3:
    def test_table4_rows(self, quick_scale):
        rows = run_experiment("table4", scale=quick_scale, datasets=("mooc",),
                              checkpoint_epochs=(1,))
        variants = {row["variant"] for row in rows}
        assert variants == {"dropedge", "degreedrop"}
        epochs = {row["epoch"] for row in rows}
        assert epochs == {1, "best"}
        assert "degreedrop" in format_table4(rows)

    def test_fig3a_convergence_sweep(self, quick_scale):
        rows = run_experiment("fig3a", scale=quick_scale, ratios=(0.2, 0.5))
        assert len(rows) == 4
        assert all(row["best_epoch"] >= 1 for row in rows)

    def test_fig3b_loss_curves(self, quick_scale):
        curves = run_experiment("fig3b", scale=quick_scale, dropout_ratio=0.5)
        assert set(curves) == {"dropedge", "degreedrop"}
        assert all(len(values) == quick_scale.epochs for values in curves.values())


class TestTable5:
    def test_rows_and_formatting(self, quick_scale):
        rows = run_experiment("table5", scale=quick_scale, datasets=("mooc",))
        assert {row["dropout_type"] for row in rows} == {"dropedge", "mixed", "degreedrop"}
        assert "mixed" in format_table5(rows)


class TestFigures1And5:
    def test_fig1_weight_trajectory_shape(self, quick_scale):
        result = run_experiment("fig1", scale=quick_scale, num_layers=3)
        assert result["trajectory"].shape == (quick_scale.epochs, 4)
        np.testing.assert_allclose(result["trajectory"].sum(axis=1),
                                   np.ones(quick_scale.epochs), atol=1e-8)

    def test_fig5_similarity_trajectory_shape(self, quick_scale):
        result = run_experiment("fig5", scale=quick_scale, num_layers=3)
        assert result["trajectory"].shape == (quick_scale.epochs, 3)
        assert np.all(np.abs(result["trajectory"]) <= 1.0 + 1e-6)
        assert result["max_final_share"] <= 1.0


class TestFig4:
    def test_cdf_monotone_and_normalised(self):
        results = run_degree_cdf(datasets=("mooc", "yelp"), scale=0.4)
        for payload in results.values():
            cdf = payload["cdf"]
            assert np.all(np.diff(cdf) >= -1e-12)
            assert cdf[-1] == pytest.approx(1.0)

    def test_mooc_items_more_popular_than_yelp(self):
        results = run_degree_cdf(datasets=("mooc", "yelp"), scale=0.6)
        summary = {row["dataset"]: row for row in degree_skew_summary(results)}
        assert summary["mooc"]["mean_degree"] > summary["yelp"]["mean_degree"]


class TestFig7:
    def test_grid_covers_all_cells(self, quick_scale):
        cells = run_experiment("fig7", scale=quick_scale, lambdas=(1e-4, 1e-2),
                               dropout_ratios=(0.0, 0.1))
        assert len(cells) == 4
        best = best_cell(cells)
        assert best in cells
        assert "λ=" in format_grid(cells)

    def test_best_cell_requires_data(self):
        with pytest.raises(ValueError):
            best_cell([])


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 20, "b": 7.0}]
        text = format_table(rows, ["a", "b"])
        assert "0.1235" in text
        assert text.count("\n") == 3
