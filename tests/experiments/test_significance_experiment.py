"""Tests for the multi-seed significance protocol of Table II's footnote."""

import pytest

from repro.experiments import ExperimentScale, run_significance


class TestRunSignificance:
    @pytest.fixture(scope="class")
    def report(self):
        scale = ExperimentScale.quick()
        scale.epochs = 2
        scale.embedding_dim = 8
        scale.dataset_scale = 0.2
        return run_significance(dataset="games", baseline="LightGCN",
                                metric="recall@20", seeds=(0, 1, 2), scale=scale)

    def test_report_structure(self, report):
        assert report["dataset"] == "games"
        assert report["baseline"] == "LightGCN"
        assert len(report["layergcn_scores"]) == 3
        assert len(report["baseline_scores"]) == 3

    def test_p_value_in_unit_interval(self, report):
        assert 0.0 <= report["p_value"] <= 1.0

    def test_scores_are_valid_recalls(self, report):
        for value in report["layergcn_scores"] + report["baseline_scores"]:
            assert 0.0 <= value <= 1.0

    def test_significance_flag_consistent_with_p_value(self, report):
        assert report["significant"] == (report["p_value"] < 0.05)
