"""Tests for the recommendation-list diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    catalog_coverage,
    gini_coefficient,
    novelty,
    popularity_bias,
    recommendation_diagnostics,
)
from repro.models import BprMF
from repro.training import Trainer, TrainerConfig


class TestCoverage:
    def test_full_coverage(self):
        recs = [[0, 1], [2, 3]]
        assert catalog_coverage(recs, num_items=4) == 1.0

    def test_partial_coverage(self):
        assert catalog_coverage([[0, 0], [0, 1]], num_items=4) == 0.5

    def test_invalid_num_items(self):
        with pytest.raises(ValueError):
            catalog_coverage([[0]], num_items=0)


class TestGini:
    def test_uniform_exposure_gives_zero(self):
        recs = [[0], [1], [2], [3]]
        assert gini_coefficient(recs, num_items=4) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_exposure_near_one(self):
        recs = [[0]] * 50
        value = gini_coefficient(recs, num_items=100)
        assert value > 0.9

    def test_empty_recommendations(self):
        assert gini_coefficient([], num_items=5) == 0.0

    def test_more_concentration_higher_gini(self):
        spread = [[i % 10] for i in range(50)]
        concentrated = [[i % 2] for i in range(50)]
        assert gini_coefficient(concentrated, 10) > gini_coefficient(spread, 10)


class TestPopularityAndNovelty:
    def test_popularity_bias_value(self):
        degrees = np.array([10.0, 1.0, 1.0])
        assert popularity_bias([[0], [1]], degrees) == pytest.approx((10 + 1) / 2)

    def test_popularity_bias_empty(self):
        assert popularity_bias([], np.array([1.0])) == 0.0

    def test_novelty_higher_for_rare_items(self):
        degrees = np.array([90.0, 1.0])
        popular = novelty([[0]], degrees, num_users=100)
        rare = novelty([[1]], degrees, num_users=100)
        assert rare > popular

    def test_novelty_empty(self):
        assert novelty([], np.array([1.0]), num_users=10) == 0.0


class TestModelDiagnostics:
    def test_diagnostics_on_trained_model(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        Trainer(model, tiny_split, TrainerConfig(epochs=2, early_stopping_patience=0)).fit()
        diagnostics = recommendation_diagnostics(model, tiny_split, k=5,
                                                 users=range(min(10, tiny_split.num_users)))
        assert set(diagnostics) == {"coverage", "gini", "popularity_bias", "novelty"}
        assert 0.0 < diagnostics["coverage"] <= 1.0
        assert 0.0 <= diagnostics["gini"] <= 1.0
        assert diagnostics["novelty"] >= 0.0
