"""Tests for the over-smoothing diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    SmoothingReport,
    ego_drift,
    embedding_variance,
    mean_average_distance,
    neighbor_divergence,
    smoothing_report,
)
from repro.core import LayerGCN
from repro.graph import BipartiteGraph
from repro.models import LightGCN


@pytest.fixture()
def line_graph() -> BipartiteGraph:
    # users 0,1 and items 0,1 connected as a path.
    return BipartiteGraph(2, 2, [0, 0, 1], [0, 1, 1])


class TestMeanAverageDistance:
    def test_identical_embeddings_give_zero(self, line_graph):
        embeddings = np.tile(np.array([1.0, 2.0, 3.0]), (4, 1))
        assert mean_average_distance(embeddings, line_graph) == pytest.approx(0.0, abs=1e-9)

    def test_orthogonal_neighbours_raise_distance(self, line_graph):
        # Edges: (u0,i0) orthogonal (dist 1), (u0,i1) aligned (dist 0),
        # (u1,i1) orthogonal (dist 1) -> mean cosine distance 2/3.
        embeddings = np.array([[1.0, 0.0],   # user 0
                               [0.0, 1.0],   # user 1
                               [0.0, 1.0],   # item 0 (orthogonal to user 0)
                               [1.0, 0.0]])  # item 1 (aligned with user 0, orthogonal to user 1)
        value = mean_average_distance(embeddings, line_graph)
        assert value == pytest.approx(2.0 / 3.0)

    def test_empty_graph(self):
        graph = BipartiteGraph.from_pairs([], num_users=2, num_items=2)
        assert mean_average_distance(np.ones((4, 3)), graph) == 0.0


class TestVarianceAndDivergence:
    def test_variance_zero_for_identical_rows(self):
        assert embedding_variance(np.tile([1.0, 1.0], (5, 1))) == pytest.approx(0.0)

    def test_variance_positive_for_spread_rows(self, rng):
        assert embedding_variance(rng.normal(size=(20, 4))) > 0.0

    def test_variance_without_normalisation(self):
        matrix = np.array([[1.0, 0.0], [3.0, 0.0]])
        # Same direction, different scale: normalised variance is 0 but raw is not.
        assert embedding_variance(matrix, normalize=True) == pytest.approx(0.0)
        assert embedding_variance(matrix, normalize=False) > 0.0

    def test_neighbor_divergence_zero_when_identical(self, line_graph):
        assert neighbor_divergence(np.ones((4, 3)), line_graph) == pytest.approx(0.0)

    def test_neighbor_divergence_matches_manual(self, line_graph):
        embeddings = np.zeros((4, 1))
        embeddings[2, 0] = 1.0  # item 0 at distance 1 from user 0
        # edges: (u0,i0) dist 1, (u0,i1) dist 0, (u1,i1) dist 0
        assert neighbor_divergence(embeddings, line_graph) == pytest.approx(1.0 / 3.0)

    def test_ego_drift_zero_for_same_direction(self, rng):
        ego = rng.normal(size=(6, 4))
        assert ego_drift(ego * 3.0, ego) == pytest.approx(0.0, abs=1e-9)

    def test_ego_drift_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ego_drift(rng.normal(size=(3, 4)), rng.normal(size=(4, 4)))


class TestSmoothingReport:
    def test_report_fields(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        report = smoothing_report(model)
        assert isinstance(report, SmoothingReport)
        assert report.model == "lightgcn"
        assert report.mad >= 0.0
        assert report.variance >= 0.0
        data = report.as_dict()
        assert set(data) == {"model", "mad", "variance", "neighbor_distance", "ego_distance"}

    def test_deeper_lightgcn_is_smoother(self, mooc_split):
        """Stacking more LightGCN layers must reduce neighbour distance (Eq. 15)."""
        shallow = LightGCN(mooc_split, embedding_dim=16, num_layers=1, seed=0)
        deep = LightGCN(mooc_split, embedding_dim=16, num_layers=6, seed=0)
        deep.embeddings.data = shallow.embeddings.data.copy()
        shallow.eval()
        deep.eval()
        assert smoothing_report(deep).mad < smoothing_report(shallow).mad

    def test_layergcn_less_smooth_than_lightgcn_at_depth(self, mooc_split):
        """Proposition 2 in practice: at equal depth LayerGCN keeps neighbours more distinct."""
        depth = 6
        layergcn = LayerGCN(mooc_split, embedding_dim=16, num_layers=depth,
                            dropout_ratio=0.0, seed=0)
        lightgcn = LightGCN(mooc_split, embedding_dim=16, num_layers=depth, seed=0)
        lightgcn.embeddings.data = layergcn.embeddings.data.copy()
        layergcn.eval()
        lightgcn.eval()
        assert smoothing_report(layergcn).variance >= smoothing_report(lightgcn).variance * 0.5
