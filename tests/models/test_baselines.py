"""Tests for the remaining baseline models (Table II columns).

Each baseline gets the same behavioural contract checks (finite losses,
gradients reaching parameters, correct score shapes, loss decreasing under
training) plus model-specific checks of its defining mechanism.
"""

import numpy as np
import pytest

from repro.eval import evaluate_model
from repro.models import BUIR, BprMF, EHCF, IMPGCN, LRGCCF, MultiVAE, NGCF, UltraGCN, build_model
from repro.training import Trainer, TrainerConfig

ALL_BASELINES = ["bpr", "multivae", "ehcf", "buir", "ngcf", "lr-gccf", "ultragcn", "imp-gcn"]


@pytest.mark.parametrize("name", ALL_BASELINES)
class TestBaselineContract:
    def test_train_step_finite(self, name, tiny_split):
        model = build_model(name, tiny_split, embedding_dim=8, seed=0)
        model.begin_epoch(1)
        batch = next(iter(model.make_batches()))
        loss = model.train_step(batch)
        assert np.isfinite(loss.item())

    def test_gradients_flow_to_some_parameter(self, name, tiny_split):
        model = build_model(name, tiny_split, embedding_dim=8, seed=0)
        model.begin_epoch(1)
        batch = next(iter(model.make_batches()))
        model.train_step(batch).backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, f"{name} produced no gradients"
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_score_users_shape_and_finiteness(self, name, tiny_split):
        model = build_model(name, tiny_split, embedding_dim=8, seed=0)
        model.eval()
        scores = model.score_users([0, 1, 2])
        assert scores.shape == (3, tiny_split.num_items)
        assert np.isfinite(scores).all()

    def test_short_training_runs_end_to_end(self, name, tiny_split):
        model = build_model(name, tiny_split, embedding_dim=8, seed=0)
        config = TrainerConfig(epochs=2, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.num_epochs_run == 2
        result = evaluate_model(model, tiny_split, ks=(10,))
        assert 0.0 <= result["recall@10"] <= 1.0


class TestBprMF:
    def test_loss_decreases(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=16, seed=0)
        history = Trainer(model, tiny_split,
                          TrainerConfig(epochs=10, learning_rate=0.02,
                                        early_stopping_patience=0)).fit()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_scores_are_dot_products(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=0)
        scores = model.score_users([0])
        expected = model.user_factors.data[0] @ model.item_factors.data.T
        np.testing.assert_allclose(scores[0], expected)


class TestMultiVAE:
    def test_uses_user_batches(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, batch_size=16, seed=0)
        users, rows = next(iter(model.make_batches()))
        assert rows.shape == (users.size, tiny_split.num_items)

    def test_kl_annealing_increases(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, anneal_steps=10, seed=0)
        batch = next(iter(model.make_batches()))
        model.train_step(batch)
        first = model._train_steps
        model.train_step(batch)
        assert model._train_steps == first + 1

    def test_scoring_is_deterministic(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        np.testing.assert_allclose(model.score_users([0, 1]), model.score_users([0, 1]))


class TestEHCF:
    def test_negative_weight_validation(self, tiny_split):
        with pytest.raises(ValueError):
            EHCF(tiny_split, negative_weight=0.0)
        with pytest.raises(ValueError):
            EHCF(tiny_split, negative_weight=2.0)

    def test_whole_row_loss_penalises_unobserved_scores(self, tiny_split):
        model = EHCF(tiny_split, embedding_dim=8, negative_weight=0.1, seed=0)
        users, rows = next(iter(model.make_batches()))
        loss = model.train_step((users, rows))
        assert loss.item() > 0


class TestBUIR:
    def test_momentum_update_moves_target(self, tiny_split):
        model = BUIR(tiny_split, embedding_dim=8, momentum=0.9, seed=0)
        target_before = model._target_embeddings.copy()
        model.online_embeddings.data = model.online_embeddings.data + 1.0
        model.after_step()
        assert not np.allclose(model._target_embeddings, target_before)
        # EMA: new target = 0.9 * old + 0.1 * online
        expected = 0.9 * target_before + 0.1 * model.online_embeddings.data
        np.testing.assert_allclose(model._target_embeddings, expected)

    def test_momentum_validation(self, tiny_split):
        with pytest.raises(ValueError):
            BUIR(tiny_split, momentum=1.5)

    def test_trains_without_negative_samples(self, tiny_split):
        model = BUIR(tiny_split, embedding_dim=8, seed=0)
        batch = next(iter(model.make_batches()))
        loss = model.train_step(batch)
        # Each of the two symmetric BYOL-style terms is bounded in [0, 4].
        assert 0.0 <= loss.item() <= 8.0 + 1e-6


class TestNGCF:
    def test_has_transformation_weights(self, tiny_split):
        model = NGCF(tiny_split, embedding_dim=8, num_layers=2)
        names = dict(model.named_parameters())
        assert "w_graph_0" in names and "w_interaction_1" in names

    def test_concatenated_output_dimension(self, tiny_split):
        model = NGCF(tiny_split, embedding_dim=8, num_layers=2, message_dropout=0.0)
        model.eval()
        final = model.propagate()
        assert final.shape == (tiny_split.num_users + tiny_split.num_items, 8 * 3)

    def test_message_dropout_validation(self, tiny_split):
        with pytest.raises(ValueError):
            NGCF(tiny_split, message_dropout=1.0)


class TestLRGCCF:
    def test_concatenated_output_dimension(self, tiny_split):
        model = LRGCCF(tiny_split, embedding_dim=8, num_layers=2)
        model.eval()
        final = model.propagate()
        assert final.shape == (tiny_split.num_users + tiny_split.num_items, 8 * 3)

    def test_uses_self_loop_adjacency(self, tiny_split):
        model = LRGCCF(tiny_split, embedding_dim=8, num_layers=1)
        diagonal = model.adjacency.matrix.diagonal()
        assert np.all(diagonal > 0)


class TestUltraGCN:
    def test_item_graph_built(self, tiny_split):
        model = UltraGCN(tiny_split, embedding_dim=8, item_graph_neighbors=5, seed=0)
        assert model._item_neighbors.shape == (tiny_split.num_items, 5)
        assert model._item_neighbor_weights.max() <= 1.0 + 1e-12

    def test_beta_weights_positive(self, tiny_split):
        model = UltraGCN(tiny_split, embedding_dim=8, seed=0)
        assert np.all(model._beta_user > 0)
        assert np.all(model._beta_item > 0)

    def test_no_propagation_parameters(self, tiny_split):
        model = UltraGCN(tiny_split, embedding_dim=8)
        names = set(dict(model.named_parameters()))
        assert names == {"user_factors", "item_factors"}


class TestIMPGCN:
    def test_group_assignment_shape(self, tiny_split):
        model = IMPGCN(tiny_split, embedding_dim=8, num_groups=3, seed=0)
        assignment = model._assign_groups()
        assert assignment.shape == (tiny_split.num_users,)
        assert assignment.max() < 3

    def test_single_group_equivalent_setup(self, tiny_split):
        model = IMPGCN(tiny_split, embedding_dim=8, num_groups=1, seed=0)
        assignment = model._assign_groups()
        assert np.all(assignment == 0)

    def test_group_operator_count(self, tiny_split):
        model = IMPGCN(tiny_split, embedding_dim=8, num_groups=2, seed=0)
        model.begin_epoch(1)
        assert len(model._group_operators) == 2

    def test_invalid_groups_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            IMPGCN(tiny_split, num_groups=0)
