"""Tests for the model registry."""

import pytest

from repro.core import LayerGCN
from repro.models import MODEL_REGISTRY, Recommender, available_models, build_model, register_model


class TestRegistry:
    def test_all_table2_models_available(self):
        names = available_models()
        for expected in ("bpr", "multivae", "ehcf", "buir", "ngcf", "lr-gccf",
                         "lightgcn", "ultragcn", "imp-gcn", "layergcn"):
            assert expected in names

    def test_build_model_passes_kwargs(self, tiny_split):
        model = build_model("layergcn", tiny_split, embedding_dim=8, num_layers=2,
                            dropout_ratio=0.2)
        assert isinstance(model, LayerGCN)
        assert model.num_layers == 2
        assert model.dropout_ratio == 0.2

    def test_build_model_case_insensitive(self, tiny_split):
        model = build_model("LightGCN", tiny_split, embedding_dim=8)
        assert model.name == "lightgcn"

    def test_unknown_model_rejected(self, tiny_split):
        with pytest.raises(KeyError):
            build_model("deepfm", tiny_split)

    def test_register_custom_model(self, tiny_split):
        class Dummy(Recommender):
            name = "dummy"

        register_model("dummy-test-model", Dummy)
        try:
            assert "dummy-test-model" in available_models()
            assert isinstance(build_model("dummy-test-model", tiny_split, embedding_dim=4), Dummy)
        finally:
            MODEL_REGISTRY.pop("dummy-test-model", None)

    def test_register_duplicate_rejected(self):
        with pytest.raises(KeyError):
            register_model("lightgcn", LayerGCN)

    def test_register_with_overwrite(self, tiny_split):
        original = MODEL_REGISTRY["bpr"]
        try:
            register_model("bpr", original, overwrite=True)
        finally:
            MODEL_REGISTRY["bpr"] = original
