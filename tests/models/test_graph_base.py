"""Tests for the shared GraphRecommender machinery (BPR batch loss, caching, scoring)."""

import numpy as np
import pytest

from repro.models import LightGCN
from repro.models.graph_base import GraphRecommender


class _IdentityPropagation(GraphRecommender):
    """Minimal concrete subclass: final embeddings are the ego embeddings."""

    name = "identity-graph"

    def propagate(self):
        return self.embeddings


class TestGraphRecommenderContract:
    def test_item_nodes_are_offset_by_num_users(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8)
        items = np.array([0, 3, 5])
        np.testing.assert_array_equal(model._item_nodes(items), items + tiny_split.num_users)

    def test_train_step_without_regularisation(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8, l2_reg=0.0, seed=0)
        batch = next(iter(model.make_batches()))
        loss_no_reg = model.train_step(batch).item()

        regularised = _IdentityPropagation(tiny_split, embedding_dim=8, l2_reg=1.0, seed=0)
        regularised.embeddings.data = model.embeddings.data.copy()
        loss_with_reg = regularised.train_step(batch).item()
        assert loss_with_reg > loss_no_reg

    def test_invalid_num_layers_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            _IdentityPropagation(tiny_split, num_layers=-2)

    def test_scores_match_embedding_dot_products(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        users = np.array([0, 2])
        scores = model.score_users(users)
        user_matrix, item_matrix = model.user_item_embeddings()
        np.testing.assert_allclose(scores, user_matrix[users] @ item_matrix.T)

    def test_eval_cache_invalidated_by_training_mode(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        cached = model.final_embeddings()
        assert model._cached_final is not None
        model.train()
        assert model._cached_final is None
        # Changing parameters while training then re-entering eval refreshes the cache.
        model.embeddings.data = model.embeddings.data + 1.0
        model.eval()
        refreshed = model.final_embeddings()
        assert not np.allclose(cached, refreshed)

    def test_begin_epoch_clears_cache(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8)
        model.eval()
        model.final_embeddings()
        model.begin_epoch(2)
        assert model._cached_final is None

    def test_default_propagation_operator_is_full_adjacency(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8)
        assert model.propagation_operator() is model.adjacency

    def test_adjacency_matches_training_graph_size(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=1)
        n = tiny_split.num_users + tiny_split.num_items
        assert model.adjacency.shape == (n, n)
        assert model.graph.num_edges == tiny_split.num_train

    def test_num_parameters_counts_embedding_table(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8)
        expected = (tiny_split.num_users + tiny_split.num_items) * 8
        assert model.num_parameters() == expected

    def test_repr_mentions_dimensions(self, tiny_split):
        model = _IdentityPropagation(tiny_split, embedding_dim=8)
        text = repr(model)
        assert str(tiny_split.num_users) in text and "dim=8" in text
