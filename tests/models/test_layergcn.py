"""Tests for the core LayerGCN model and its layer-refinement mechanism."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import LayerGCN, refine_layer, refinement_similarity
from repro.models import LightGCN
from repro.training import Trainer, TrainerConfig


class TestRefinementOperator:
    def test_identical_layers_scaled_by_one_plus_eps(self, rng):
        values = rng.normal(size=(5, 4))
        refined, similarity = refine_layer(Tensor(values), Tensor(values), eps=1e-8)
        np.testing.assert_allclose(similarity.data.ravel(), np.ones(5), atol=1e-7)
        np.testing.assert_allclose(refined.data, values * (1.0 + 1e-8), atol=1e-6)

    def test_orthogonal_layer_scaled_to_epsilon(self):
        hidden = Tensor([[1.0, 0.0]])
        ego = Tensor([[0.0, 1.0]])
        refined, similarity = refine_layer(hidden, ego, eps=0.01)
        assert similarity.data.ravel()[0] == pytest.approx(0.0, abs=1e-8)
        np.testing.assert_allclose(refined.data, [[0.01, 0.0]], atol=1e-8)

    def test_opposite_layer_flipped(self, rng):
        values = rng.normal(size=(3, 4))
        refined, similarity = refine_layer(Tensor(values), Tensor(-values), eps=0.0)
        np.testing.assert_allclose(similarity.data.ravel(), -np.ones(3), atol=1e-7)
        np.testing.assert_allclose(refined.data, -values, atol=1e-6)

    def test_refinement_reduces_distance_to_ego(self, rng):
        """Proposition 2: refined layers stay closer to the ego layer when cos < 0."""
        ego = rng.normal(size=(50, 8))
        hidden = -ego + 0.3 * rng.normal(size=(50, 8))  # mostly anti-aligned
        refined, similarity = refine_layer(Tensor(hidden), Tensor(ego), eps=0.0)
        mask = similarity.data.ravel() < 0
        assert mask.any()
        d_before = np.linalg.norm(hidden[mask] - ego[mask], axis=1)
        d_after = np.linalg.norm(refined.data[mask] - ego[mask], axis=1)
        assert np.all(d_after <= d_before + 1e-9)

    def test_similarity_helper_matches_refine_output(self, rng):
        hidden = Tensor(rng.normal(size=(4, 3)))
        ego = Tensor(rng.normal(size=(4, 3)))
        _, from_refine = refine_layer(hidden, ego)
        direct = refinement_similarity(hidden, ego)
        np.testing.assert_allclose(from_refine.data, direct.data)


class TestLayerGCNModel:
    def test_constructor_validation(self, tiny_split):
        with pytest.raises(ValueError):
            LayerGCN(tiny_split, num_layers=0)

    def test_zero_dropout_disables_pruning(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, dropout_ratio=0.0)
        assert model.edge_dropout is None
        model.begin_epoch(1)
        assert model.propagation_operator() is model.adjacency

    def test_begin_epoch_builds_pruned_operator(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, dropout_ratio=0.3,
                         edge_dropout="degreedrop", seed=0)
        model.train()
        model.begin_epoch(1)
        pruned = model.propagation_operator()
        assert pruned is not model.adjacency
        assert pruned.nnz < model.adjacency.nnz

    def test_inference_uses_full_graph(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, dropout_ratio=0.3, seed=0)
        model.train()
        model.begin_epoch(1)
        model.eval()
        assert model.propagation_operator() is model.adjacency

    def test_readout_excludes_ego_layer(self, tiny_split):
        """Final embeddings are the sum of refined layers only (Eq. 9)."""
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, dropout_ratio=0.0, seed=1)
        model.eval()
        layers, _ = model.refined_layers()
        expected = layers[0].data + layers[1].data
        np.testing.assert_allclose(model.propagate().data, expected, atol=1e-10)

    def test_layer_similarities_recorded(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=3, dropout_ratio=0.0)
        assert model.layer_similarity_values() is None
        model.propagate()
        values = model.layer_similarity_values()
        assert values.shape == (3,)
        assert np.all(np.abs(values) <= 1.0 + 1e-6)

    def test_train_step_returns_finite_scalar(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.begin_epoch(1)
        batch = next(iter(model.make_batches()))
        loss = model.train_step(batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_gradients_reach_embeddings(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.begin_epoch(1)
        batch = next(iter(model.make_batches()))
        loss = model.train_step(batch)
        loss.backward()
        assert model.embeddings.grad is not None
        assert np.abs(model.embeddings.grad).sum() > 0

    def test_score_users_shape(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2)
        model.eval()
        scores = model.score_users([0, 1, 2])
        assert scores.shape == (3, tiny_split.num_items)

    def test_score_pairs_consistent_with_score_users(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2)
        model.eval()
        users = np.array([0, 1])
        items = np.array([3, 5])
        pair_scores = model.score_pairs(users, items)
        full = model.score_users(users)
        np.testing.assert_allclose(pair_scores, full[np.arange(2), items])

    def test_recommend_excludes_train_items(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2)
        model.eval()
        user = int(tiny_split.train_users[0])
        seen = {int(i) for u, i in zip(tiny_split.train_users, tiny_split.train_items)
                if int(u) == user}
        recommendations = model.recommend(user, k=10)
        assert not (set(recommendations) & seen)

    def test_training_improves_over_initialisation(self, tiny_split):
        from repro.eval import evaluate_model

        model = LayerGCN(tiny_split, embedding_dim=16, num_layers=2, dropout_ratio=0.1,
                         edge_dropout="degreedrop", seed=0)
        model.eval()
        before = evaluate_model(model, tiny_split, ks=(20,))["recall@20"]
        config = TrainerConfig(epochs=15, learning_rate=0.02, early_stopping_patience=0)
        Trainer(model, tiny_split, config).fit()
        after = evaluate_model(model, tiny_split, ks=(20,))["recall@20"]
        assert after > before

    def test_cached_eval_embeddings_reused(self, tiny_split):
        model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2)
        model.eval()
        first = model.final_embeddings()
        second = model.final_embeddings()
        assert first is second
        model.train()
        assert model._cached_final is None


class TestLayerGCNVersusLightGCN:
    def test_final_embeddings_differ_from_lightgcn(self, tiny_split):
        layer = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, dropout_ratio=0.0, seed=0)
        light = LightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        # Force identical initial embeddings for an apples-to-apples check.
        light.embeddings.data = layer.embeddings.data.copy()
        layer.eval()
        light.eval()
        assert not np.allclose(layer.propagate().data, light.propagate().data)

    def test_layergcn_preserves_more_node_distinctiveness(self, mooc_split):
        """Over-smoothing proxy: with many layers, LayerGCN's final user
        embeddings stay more spread out (higher pairwise variance) than
        LightGCN's mean-readout embeddings."""
        layers = 6
        layergcn = LayerGCN(mooc_split, embedding_dim=16, num_layers=layers,
                            dropout_ratio=0.0, seed=0)
        lightgcn = LightGCN(mooc_split, embedding_dim=16, num_layers=layers, seed=0)
        lightgcn.embeddings.data = layergcn.embeddings.data.copy()
        layergcn.eval()
        lightgcn.eval()

        def normalized_spread(model):
            users, _ = model.user_item_embeddings()
            normalized = users / (np.linalg.norm(users, axis=1, keepdims=True) + 1e-12)
            return float(np.var(normalized, axis=0).sum())

        assert normalized_spread(layergcn) > normalized_spread(lightgcn) * 0.5
