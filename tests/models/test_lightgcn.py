"""Tests for LightGCN and its learnable-layer-weight variant."""

import numpy as np
import pytest

from repro.autograd import sparse_matmul
from repro.models import LightGCN, WeightedLightGCN
from repro.training import Trainer, TrainerConfig


class TestLightGCN:
    def test_propagation_matches_manual_mean(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        x0 = model.embeddings
        x1 = sparse_matmul(model.adjacency, x0)
        x2 = sparse_matmul(model.adjacency, x1)
        expected = (x0.data + x1.data + x2.data) / 3.0
        np.testing.assert_allclose(model.propagate().data, expected, atol=1e-10)

    def test_zero_layers_reduces_to_mf(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=0, seed=0)
        model.eval()
        np.testing.assert_allclose(model.propagate().data, model.embeddings.data)

    def test_layer_embeddings_count(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=3)
        assert len(model.layer_embeddings()) == 4

    def test_training_reduces_loss(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=16, num_layers=2, seed=0)
        config = TrainerConfig(epochs=8, learning_rate=0.02, early_stopping_patience=0)
        history = Trainer(model, tiny_split, config).fit()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_negative_layers_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            LightGCN(tiny_split, num_layers=-1)

    def test_invalid_embedding_dim_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            LightGCN(tiny_split, embedding_dim=0)

    def test_score_users_uses_cached_embeddings_in_eval(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=1)
        model.eval()
        scores_a = model.score_users([0, 1])
        scores_b = model.score_users([0, 1])
        np.testing.assert_allclose(scores_a, scores_b)


class TestWeightedLightGCN:
    def test_initial_weights_uniform(self, tiny_split):
        model = WeightedLightGCN(tiny_split, embedding_dim=8, num_layers=3)
        weights = model.layer_weight_values()
        np.testing.assert_allclose(weights, np.full(4, 0.25), atol=1e-12)

    def test_weights_sum_to_one_after_training(self, tiny_split):
        model = WeightedLightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        config = TrainerConfig(epochs=3, learning_rate=0.05, early_stopping_patience=0)
        Trainer(model, tiny_split, config).fit()
        assert model.layer_weight_values().sum() == pytest.approx(1.0)

    def test_layer_logits_receive_gradients(self, tiny_split):
        model = WeightedLightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        batch = next(iter(model.make_batches()))
        loss = model.train_step(batch)
        loss.backward()
        assert model.layer_logits.grad is not None
        assert np.abs(model.layer_logits.grad).sum() > 0

    def test_propagation_is_weighted_sum(self, tiny_split):
        model = WeightedLightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        # With uniform weights the readout equals the LightGCN mean readout.
        light = LightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        light.embeddings.data = model.embeddings.data.copy()
        light.eval()
        np.testing.assert_allclose(model.propagate().data, light.propagate().data, atol=1e-10)
