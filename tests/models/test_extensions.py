"""Tests for the paper's discussed extensions: content-aware and self-supervised LayerGCN."""

import numpy as np
import pytest

from repro.core import ContentLayerGCN, LayerGCN
from repro.core.content import _FUSION_OPERATORS
from repro.models import build_model
from repro.models.selfcf import SelfSupervisedLayerGCN
from repro.training import Trainer, TrainerConfig


@pytest.fixture()
def item_features(tiny_split, rng):
    return rng.normal(size=(tiny_split.num_items, 6))


@pytest.fixture()
def user_features(tiny_split, rng):
    return rng.normal(size=(tiny_split.num_users, 4))


class TestContentLayerGCN:
    def test_invalid_mode_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            ContentLayerGCN(tiny_split, mode="bogus")

    def test_invalid_fusion_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            ContentLayerGCN(tiny_split, fusion="multiply")

    def test_feature_shape_validation(self, tiny_split, rng):
        with pytest.raises(ValueError):
            ContentLayerGCN(tiny_split, item_features=rng.normal(size=(3, 4)))
        with pytest.raises(ValueError):
            ContentLayerGCN(tiny_split, user_features=rng.normal(size=(3, 4)))

    def test_fuse_add_keeps_embedding_dim(self, tiny_split, item_features):
        model = ContentLayerGCN(tiny_split, item_features=item_features,
                                mode="fuse", fusion="add", embedding_dim=8,
                                num_layers=2, dropout_ratio=0.0)
        model.eval()
        final = model.propagate()
        assert final.shape == (tiny_split.num_users + tiny_split.num_items, 8)

    def test_fuse_concat_doubles_dimension(self, tiny_split, item_features):
        model = ContentLayerGCN(tiny_split, item_features=item_features,
                                mode="fuse", fusion="concat", embedding_dim=8,
                                num_layers=2, dropout_ratio=0.0)
        model.eval()
        final = model.propagate()
        assert final.shape[1] == 16

    def test_init_mode_incorporates_content(self, tiny_split, item_features):
        content_model = ContentLayerGCN(tiny_split, item_features=item_features,
                                        mode="init", embedding_dim=8, num_layers=2,
                                        dropout_ratio=0.0, seed=0)
        plain_model = LayerGCN(tiny_split, embedding_dim=8, num_layers=2,
                               dropout_ratio=0.0, seed=0)
        assert not np.allclose(content_model.embeddings.data, plain_model.embeddings.data)

    def test_content_projection_receives_gradients(self, tiny_split, item_features, user_features):
        model = ContentLayerGCN(tiny_split, item_features=item_features,
                                user_features=user_features, mode="fuse",
                                embedding_dim=8, num_layers=2, seed=0)
        model.begin_epoch(1)
        batch = next(iter(model.make_batches()))
        model.train_step(batch).backward()
        assert model.content_projection.grad is not None
        assert np.abs(model.content_projection.grad).sum() > 0

    def test_trains_end_to_end(self, tiny_split, item_features):
        model = ContentLayerGCN(tiny_split, item_features=item_features,
                                embedding_dim=8, num_layers=2, seed=0)
        history = Trainer(model, tiny_split,
                          TrainerConfig(epochs=2, early_stopping_patience=0)).fit()
        assert history.num_epochs_run == 2

    def test_registered_in_model_registry(self, tiny_split):
        model = build_model("content-layergcn", tiny_split, embedding_dim=8, num_layers=2)
        assert isinstance(model, ContentLayerGCN)

    def test_missing_features_default_to_zero_content(self, tiny_split):
        model = ContentLayerGCN(tiny_split, embedding_dim=8, num_layers=2)
        assert model._content.shape[0] == tiny_split.num_users + tiny_split.num_items

    def test_fusion_operator_list(self):
        assert set(_FUSION_OPERATORS) == {"add", "concat"}


class TestSelfSupervisedLayerGCN:
    def test_parameter_validation(self, tiny_split):
        with pytest.raises(ValueError):
            SelfSupervisedLayerGCN(tiny_split, ssl_weight=-0.1)
        with pytest.raises(ValueError):
            SelfSupervisedLayerGCN(tiny_split, ssl_temperature=0.0)

    def test_ssl_loss_added_to_bpr(self, tiny_split):
        base = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, dropout_ratio=0.0, seed=0)
        ssl = SelfSupervisedLayerGCN(tiny_split, embedding_dim=8, num_layers=2,
                                     dropout_ratio=0.0, ssl_weight=1.0, seed=0)
        ssl.embeddings.data = base.embeddings.data.copy()
        batch = next(iter(base.make_batches(np.random.default_rng(0))))
        base_loss = base.train_step(batch).item()
        ssl_loss = ssl.train_step(batch).item()
        assert ssl_loss > base_loss

    def test_zero_weight_matches_base_loss(self, tiny_split):
        base = LayerGCN(tiny_split, embedding_dim=8, num_layers=2, dropout_ratio=0.0, seed=0)
        ssl = SelfSupervisedLayerGCN(tiny_split, embedding_dim=8, num_layers=2,
                                     dropout_ratio=0.0, ssl_weight=0.0, seed=0)
        ssl.embeddings.data = base.embeddings.data.copy()
        batch = next(iter(base.make_batches(np.random.default_rng(0))))
        assert ssl.train_step(batch).item() == pytest.approx(base.train_step(batch).item())

    def test_perturbed_views_differ(self, tiny_split, rng):
        model = SelfSupervisedLayerGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        from repro.autograd import Tensor

        anchor = Tensor(rng.normal(size=(10, 8)))
        view_a = model._perturbed_view(anchor)
        view_b = model._perturbed_view(anchor)
        assert not np.allclose(view_a.data, view_b.data)
        # Perturbation norm stays bounded by the configured scale.
        assert np.linalg.norm(view_a.data - anchor.data, axis=1).max() <= model.perturbation_scale + 1e-9

    def test_info_nce_lower_for_aligned_views(self, tiny_split, rng):
        from repro.autograd import Tensor

        model = SelfSupervisedLayerGCN(tiny_split, embedding_dim=8, seed=0)
        values = rng.normal(size=(12, 8))
        aligned = model._info_nce(Tensor(values), Tensor(values)).item()
        shuffled = model._info_nce(Tensor(values), Tensor(values[::-1].copy())).item()
        assert aligned < shuffled

    def test_trains_end_to_end(self, tiny_split):
        model = SelfSupervisedLayerGCN(tiny_split, embedding_dim=8, num_layers=2,
                                       ssl_weight=0.2, seed=0)
        history = Trainer(model, tiny_split,
                          TrainerConfig(epochs=2, early_stopping_patience=0)).fit()
        assert history.num_epochs_run == 2
        assert np.isfinite(history.epoch_losses).all()

    def test_registered_in_model_registry(self, tiny_split):
        model = build_model("ssl-layergcn", tiny_split, embedding_dim=8, num_layers=2)
        assert isinstance(model, SelfSupervisedLayerGCN)
