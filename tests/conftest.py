"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataSplit, dataset_preset, chronological_split, prepare_split
from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic dataset reused across tests (session-scoped: read-only)."""
    return dataset_preset("tiny", seed=7)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset) -> DataSplit:
    """Chronological split of the tiny dataset."""
    return chronological_split(tiny_dataset)


@pytest.fixture(scope="session")
def mooc_split() -> DataSplit:
    """A scaled-down dense (MOOC-like) split for graph-model tests."""
    return prepare_split("mooc", seed=3, scale=0.25)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def quick_scale() -> ExperimentScale:
    """Very small experiment scale so experiment smoke-tests stay fast."""
    scale = ExperimentScale.quick()
    scale.epochs = 2
    scale.embedding_dim = 8
    scale.dataset_scale = 0.2
    return scale
