"""Unit tests for the shared benchmark helpers (percentile math, summaries)."""

import numpy as np
import pytest

from benchmarks.artifacts import latency_summary, percentile


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(42)
        for size in (1, 2, 3, 10, 101, 997):
            samples = rng.exponential(scale=0.01, size=size)
            for q in (0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0):
                np.testing.assert_allclose(
                    percentile(samples, q), np.percentile(samples, q),
                    rtol=1e-12, atol=0.0)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0
        assert percentile([3.0, 1.0, 2.0], 50.0) == percentile([1, 2, 3], 50)

    def test_interpolates_between_neighbours(self):
        # rank = (4 - 1) * 0.5 = 1.5 -> halfway between the 2nd and 3rd value
        assert percentile([0.0, 10.0, 20.0, 30.0], 50.0) == 15.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_endpoints_are_min_and_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 9.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)


class TestLatencySummary:
    def test_summary_fields_in_milliseconds(self):
        # 1..100 ms as seconds; percentiles of the 100-sample ladder.
        samples = [i / 1000.0 for i in range(1, 101)]
        summary = latency_summary(samples)
        assert summary["count"] == 100
        np.testing.assert_allclose(summary["mean_ms"], 50.5)
        np.testing.assert_allclose(summary["p50_ms"], 50.5)
        np.testing.assert_allclose(
            summary["p99_ms"], np.percentile(samples, 99.0) * 1e3)
        np.testing.assert_allclose(summary["max_ms"], 100.0)

    def test_summary_matches_percentile_helper(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=0.02, size=333)
        summary = latency_summary(samples)
        for name, q in (("p50_ms", 50.0), ("p90_ms", 90.0), ("p99_ms", 99.0)):
            np.testing.assert_allclose(summary[name],
                                       percentile(samples, q) * 1e3)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            latency_summary([])
