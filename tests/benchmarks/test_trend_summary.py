"""Unit tests for the CI job-summary trend table (``trend_summary.py``)."""

import json

from benchmarks.trend_summary import (
    KEY_METRICS,
    _aggregate,
    build_table,
    load_documents,
    main,
)


def _doc(benchmark, results, **extra):
    document = {"benchmark": benchmark, "preset": "tiny",
                "git_sha": "abcdef0123456789", "results": results}
    document.update(extra)
    return document


class TestAggregate:
    def test_numeric_aggregations(self):
        assert _aggregate([1, 3.0, 2], "max") == 3.0
        assert _aggregate([1, 3.0, 2], "min") == 1.0
        assert _aggregate([1, 3.0, 2], "mean") == 2.0

    def test_all_is_boolean_and(self):
        assert _aggregate([True, 1, "yes"], "all") is True
        assert _aggregate([True, False], "all") is False


class TestBuildTable:
    def test_known_benchmark_rows(self):
        table = build_table([_doc("bench_remote_serving", [
            {"users_per_s": 1500.0, "killed_shard_typed_error": True,
             "stale_snapshot_rejected": True},
            {"users_per_s": 900.0, "killed_shard_typed_error": True,
             "stale_snapshot_rejected": True},
        ])])
        assert "| benchmark | key metric | value | floor / gate |" in table
        assert "remote users/s (max) | 1,500" in table
        assert "killed shard fails closed (all) | yes" in table
        assert "stale snapshot rejected (all) | yes" in table
        assert "preset: `tiny`" in table
        assert "commit `abcdef012345`" in table

    def test_failed_boolean_renders_loudly(self):
        table = build_table([_doc("bench_remote_serving", [
            {"killed_shard_typed_error": False}])])
        assert "killed shard fails closed (all) | NO" in table

    def test_fault_tolerance_rows(self):
        table = build_table([_doc("bench_fault_tolerance", [
            {"availability": 1.0, "failovers": 2, "recovery_s": 0.004,
             "wal_parity": True, "killed_shard_typed_error": True},
        ])])
        assert "availability under kills (min) | 1 " in table
        assert "failovers survived (max) | 2 " in table
        assert "WAL recovery s (max) | 4.00e-03" in table
        assert "WAL recovery parity (all) | yes" in table
        assert "dead shard fails closed (all) | yes" in table

    def test_fault_tolerance_lost_availability_renders_loudly(self):
        table = build_table([_doc("bench_fault_tolerance", [
            {"availability": 1.0, "wal_parity": True},
            {"availability": 0.8, "wal_parity": False},
        ])])
        assert "availability under kills (min) | 8.00e-01" in table
        assert "WAL recovery parity (all) | NO" in table

    def test_unknown_benchmark_falls_back_to_row_count(self):
        table = build_table([_doc("bench_future_thing", [{"x": 1}, {"x": 2}])])
        assert "| future_thing | result rows | 2 | — |" in table

    def test_missing_keys_skip_metric_not_benchmark(self):
        # Schema drift: none of the known keys present -> fallback row.
        table = build_table([_doc("bench_sharded_serving", [{"novel": 1}])])
        assert "| sharded_serving | result rows | 1 | — |" in table

    def test_single_dict_results_payload(self):
        table = build_table([_doc("bench_sharded_serving",
                                  {"users_per_s": 10.0})])
        assert "best users/s (max) | 10 " in table

    def test_empty_directory_message(self):
        assert "No benchmark artifacts found" in build_table([])

    def test_every_metric_spec_is_well_formed(self):
        for benchmark, metrics in KEY_METRICS.items():
            assert benchmark.startswith("bench_")
            for label, key, how, floor in metrics:
                assert how in ("max", "min", "mean", "all"), (benchmark, key)
                assert label and key and floor


class TestLoadAndMain:
    def test_loads_only_artifact_documents(self, tmp_path):
        (tmp_path / "good.json").write_text(json.dumps(
            _doc("bench_async_frontend", [{"speedup": 2.5, "p99_ms": 3.0}])))
        (tmp_path / "not-artifact.json").write_text(json.dumps({"rows": []}))
        (tmp_path / "broken.json").write_text("{nope")
        documents = load_documents(tmp_path)
        assert [doc["benchmark"] for doc in documents] == \
            ["bench_async_frontend"]

    def test_main_prints_table(self, tmp_path, capsys):
        (tmp_path / "a.json").write_text(json.dumps(
            _doc("bench_engine_throughput",
                 [{"speedup": 6.0, "max_metric_diff": 0.0}])))
        assert main(["trend_summary.py", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "### Benchmark trend" in out
        assert "speedup vs reference (max) | 6 " in out
        assert "metric drift (max) | 0 " in out

    def test_main_tolerates_missing_directory(self, tmp_path, capsys):
        assert main(["trend_summary.py", str(tmp_path / "absent")]) == 0
        assert "No benchmark artifacts found" in capsys.readouterr().out

    def test_main_usage_error(self, capsys):
        assert main(["trend_summary.py"]) == 2
