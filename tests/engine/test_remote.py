"""Tests for multi-host shard serving (repro.engine.remote).

The invariant under test is the remote tier's contract: serving through
socket-connected shard servers is *bit-identical* to the serial in-memory
oracle, and every failure — unreachable shard, stale snapshot, protocol
skew — *fails closed* with a typed :class:`RemoteShardError` rather than a
partial merge.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    FaultPlan,
    InferenceIndex,
    OnlineRecommendationService,
    PROTOCOL_VERSION,
    RecommendationService,
    RemoteExecutor,
    RemoteProtocolError,
    RemoteShardError,
    ReplicaRejectedError,
    SerialExecutor,
    ShardServer,
    ShardedInferenceIndex,
    SnapshotFormatError,
    save_snapshot,
    snapshot_fingerprint,
    spawn_shard_server,
)
from repro.engine.remote import (
    _recv_message,
    decode_message,
    encode_message,
    parse_address,
    parse_replica_set,
)
from repro.models import BprMF

K = 6


@pytest.fixture(scope="module")
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


@pytest.fixture(scope="module")
def index(model, tiny_split):
    return InferenceIndex.from_model(model, tiny_split)


@pytest.fixture(scope="module")
def snap_path(index, tmp_path_factory):
    return save_snapshot(tmp_path_factory.mktemp("remote") / "serve.snap",
                         index, candidate_modes=("int8",))


@pytest.fixture(scope="module")
def other_snap_path(tiny_split, tmp_path_factory):
    """A second snapshot with different content (different model seed)."""
    model = BprMF(tiny_split, embedding_dim=8, seed=7)
    model.eval()
    index = InferenceIndex.from_model(model, tiny_split)
    return save_snapshot(tmp_path_factory.mktemp("remote2") / "other.snap",
                         index, candidate_modes=("int8",))


@pytest.fixture(scope="module")
def servers(snap_path):
    """Two in-process shard servers over the module snapshot (S=2)."""
    started = [ShardServer(snap_path, shard, 2).start() for shard in range(2)]
    yield started
    for server in started:
        server.close()


@pytest.fixture(scope="module")
def addresses(servers):
    return [f"{host}:{port}" for host, port in
            (server.address for server in servers)]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #

class TestProtocol:
    def test_roundtrip_preserves_fields_and_arrays(self):
        arrays = {"users": np.arange(5, dtype=np.int64),
                  "scores": np.linspace(0, 1, 12).reshape(3, 4),
                  "codes": np.array([[1, -2], [3, 4]], dtype=np.int8)}
        frame = encode_message("top_k", {"k": 3, "exclude_train": True},
                               arrays)
        kind, fields, decoded = decode_message(frame[12:])
        assert kind == "top_k"
        assert fields == {"k": 3, "exclude_train": True}
        for name, want in arrays.items():
            assert decoded[name].dtype == want.dtype
            assert np.array_equal(decoded[name], want)

    def test_none_arrays_are_dropped_and_empty_arrays_survive(self):
        frame = encode_message("x", {}, {"absent": None,
                                         "empty": np.empty((3, 0))})
        _, _, arrays = decode_message(frame[12:])
        assert "absent" not in arrays
        assert arrays["empty"].shape == (3, 0)

    def test_truncated_body_is_a_protocol_error(self):
        frame = encode_message("x", {"a": 1}, {"b": np.arange(4)})
        with pytest.raises(RemoteProtocolError):
            decode_message(frame[12:-8])

    def test_garbage_is_a_protocol_error(self):
        with pytest.raises(RemoteProtocolError):
            decode_message(b"\x00" * 32)

    def test_protocol_error_is_a_shard_error(self):
        # Callers can catch the one typed error for every remote failure.
        assert issubclass(RemoteProtocolError, RemoteShardError)

    def test_parse_address(self):
        assert parse_address("localhost:901") == ("localhost", 901)
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
        for bad in ("no-port", ":80", "host:notaport", "host:0", "host:70000"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_parse_replica_set(self):
        assert parse_replica_set("h:1") == [("h", 1)]
        assert parse_replica_set("h1:1, h2:2") == [("h1", 1), ("h2", 2)]
        assert parse_replica_set(("h", 8080)) == [("h", 8080)]
        assert parse_replica_set(["h1:1", ("h2", 2)]) == [("h1", 1),
                                                          ("h2", 2)]
        with pytest.raises(ValueError, match="empty"):
            parse_replica_set([])
        with pytest.raises(ValueError, match="empty"):
            parse_replica_set(" , ")
        with pytest.raises(ValueError, match="duplicate"):
            parse_replica_set("h:1,h:1")


class TestFingerprint:
    def test_stable_across_reads(self, snap_path):
        assert snapshot_fingerprint(snap_path) == \
            snapshot_fingerprint(snap_path)

    def test_differs_for_different_content(self, snap_path, other_snap_path):
        # Same geometry, same metadata shape — only the embedding bytes
        # differ, and the fingerprint must still split them.
        assert snapshot_fingerprint(snap_path) != \
            snapshot_fingerprint(other_snap_path)

    def test_rejects_non_snapshots(self, tmp_path):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"not a snapshot at all, but long enough to read")
        with pytest.raises(SnapshotFormatError):
            snapshot_fingerprint(junk)
        with pytest.raises(SnapshotFormatError):
            snapshot_fingerprint(tmp_path / "missing.snap")


# --------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------- #

class TestHandshake:
    def _raw_exchange(self, server, message: bytes):
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(message)
            return _recv_message(sock)

    def test_version_skew_is_rejected(self, servers):
        kind, fields, _ = self._raw_exchange(
            servers[0],
            encode_message("handshake", {
                "protocol": PROTOCOL_VERSION + 1, "shard_id": 0,
                "num_shards": 2, "policy": "contiguous"}))
        assert kind == "error"
        assert "protocol version" in fields["message"]

    def test_request_before_handshake_is_rejected(self, servers):
        kind, fields, _ = self._raw_exchange(
            servers[0],
            encode_message("top_k", {"k": 1, "exclude_train": False},
                           {"users": np.zeros(1, dtype=np.int64)}))
        assert kind == "error"
        assert "handshake" in fields["message"]

    def test_geometry_mismatch_is_rejected(self, snap_path, addresses):
        # Policy drift: the servers hold contiguous shards.
        with RemoteExecutor(addresses, policy="strided") as executor:
            with pytest.raises(RemoteShardError, match="geometry"):
                executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                                 False, None, None)
        # Shard-order drift: address i must serve shard i.
        with RemoteExecutor(addresses[::-1]) as executor:
            with pytest.raises(RemoteShardError, match="geometry"):
                executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                                 False, None, None)

    def test_snapshot_identity_mismatch_is_rejected(self, addresses,
                                                    other_snap_path):
        # The router saved other_snap_path; the servers hold snap_path.
        executor = RemoteExecutor(addresses, snapshot_path=other_snap_path)
        with executor:
            with pytest.raises(RemoteShardError,
                               match="snapshot identity mismatch"):
                executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                                 False, None, None)

    def test_unpinned_client_is_accepted(self, addresses):
        # No snapshot_path/fingerprint = trust the servers' file.
        with RemoteExecutor(addresses) as executor:
            results = executor.fan_out("top_k", np.zeros(1, dtype=np.int64),
                                       2, False, None, None)
        assert len(results) == 2

    def test_handshake_rejection_is_not_retried(self, addresses,
                                                other_snap_path):
        executor = RemoteExecutor(addresses, snapshot_path=other_snap_path,
                                  max_retries=5, retry_backoff=0.2)
        start = time.perf_counter()
        with executor, pytest.raises(RemoteShardError):
            executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                             False, None, None)
        # 5 retries at 0.2s+ backoff would take > 6s; a deterministic
        # rejection must surface immediately instead.
        assert time.perf_counter() - start < 2.0


# --------------------------------------------------------------------- #
# Executor semantics
# --------------------------------------------------------------------- #

class TestRemoteExecutor:
    def test_run_refuses_closures(self, addresses):
        with RemoteExecutor(addresses) as executor:
            with pytest.raises(TypeError):
                executor.run([lambda: None])

    def test_bind_check_rejects_other_geometry(self, addresses):
        with RemoteExecutor(addresses) as executor:
            executor.bind_check(2, "contiguous")
            with pytest.raises(ValueError):
                executor.bind_check(3, "contiguous")
            with pytest.raises(ValueError):
                executor.bind_check(2, "strided")

    def test_close_is_idempotent_and_terminal(self, addresses):
        executor = RemoteExecutor(addresses)
        executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1, False,
                         None, None)
        executor.close()
        executor.close()
        with pytest.raises(RemoteShardError, match="closed"):
            executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                             False, None, None)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RemoteExecutor([])
        with pytest.raises(ValueError):
            RemoteExecutor(["h:1"], policy="diagonal")
        with pytest.raises(ValueError):
            RemoteExecutor(["h:1"], timeout=0)
        with pytest.raises(ValueError):
            RemoteExecutor(["h:1"], max_retries=-1)
        with pytest.raises(ValueError):
            RemoteExecutor(["not-an-address"])

    def test_sharded_index_parity_through_sockets(self, index, addresses):
        users = np.arange(index.num_users, dtype=np.int64)
        with RemoteExecutor(addresses) as executor:
            sharded = ShardedInferenceIndex.from_index(index, 2,
                                                       executor=executor)
            for exclude in (True, False):
                want = index.top_k(users, K, exclude_train=exclude)
                got = sharded.top_k(users, K, exclude_train=exclude)
                assert np.array_equal(want, got)


# --------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------- #

class TestRemoteService:
    def test_bit_exact_parity_both_modes(self, snap_path, addresses):
        users = np.arange(30, dtype=np.int64)
        for mode in (None, "int8"):
            with RecommendationService(snapshot=snap_path,
                                       candidate_mode=mode) as oracle:
                want = oracle.top_k(users, K)
            with RecommendationService(snapshot=snap_path, executor="remote",
                                       shard_addresses=addresses,
                                       candidate_mode=mode) as service:
                assert service.num_shards == 2  # inferred from the addresses
                got = service.top_k(users, K)
            assert np.array_equal(want, got)

    def test_recommend_and_score_pairs(self, snap_path, addresses):
        with RecommendationService(snapshot=snap_path) as oracle, \
                RecommendationService(snapshot=snap_path, executor="remote",
                                      shard_addresses=addresses) as service:
            assert service.recommend(3, k=K) == oracle.recommend(3, k=K)
            users = np.array([0, 1, 2], dtype=np.int64)
            items = np.array([5, 1, 9], dtype=np.int64)
            assert np.array_equal(oracle.score_pairs(users, items),
                                  service.score_pairs(users, items))

    def test_single_address_still_serves_over_the_socket(self, snap_path):
        with ShardServer(snap_path, 0, 1).start() as server:
            address = "{}:{}".format(*server.address)
            before = server.requests_served
            with RecommendationService(snapshot=snap_path,
                                       shard_addresses=[address]) as service:
                assert service.sharded is not None
                service.top_k(np.arange(4, dtype=np.int64), K)
            assert server.requests_served > before

    def test_remote_requires_snapshot_and_addresses(self, model, tiny_split,
                                                    snap_path):
        with pytest.raises(ValueError, match="snapshot"):
            RecommendationService(model, tiny_split, executor="remote",
                                  shard_addresses=["h:1"])
        with pytest.raises(ValueError, match="shard_addresses"):
            RecommendationService(snapshot=snap_path, executor="remote")
        with pytest.raises(ValueError, match="at least one"):
            RecommendationService(snapshot=snap_path, shard_addresses=[])
        with pytest.raises(ValueError, match="executor='remote'"):
            RecommendationService(snapshot=snap_path, executor="threads",
                                  shard_addresses=["h:1"], num_shards=2)

    def test_shard_count_mismatch_is_rejected(self, snap_path, addresses):
        with pytest.raises(ValueError):
            RecommendationService(snapshot=snap_path, executor="remote",
                                  shard_addresses=addresses, num_shards=3)

    def test_refresh_is_rejected_over_remote(self, tiny_split, snap_path,
                                             addresses):
        # A model whose embeddings differ from the snapshot, so the
        # ships_payloads guard actually triggers (an unchanged snapshot is
        # a legal no-op refresh).
        other = BprMF(tiny_split, embedding_dim=8, seed=11)
        other.eval()
        with RecommendationService(snapshot=snap_path, executor="remote",
                                   shard_addresses=addresses) as service:
            with pytest.raises(ValueError, match="payload-shipping"):
                service.refresh(other)


class TestOnlineRemoteParity:
    def test_ingest_then_serve_matches_serial_online(self, snap_path,
                                                     addresses):
        events_users = np.array([0, 1, 1, 2, 5], dtype=np.int64)
        events_items = np.array([3, 7, 11, 2, 18], dtype=np.int64)
        users = np.arange(30, dtype=np.int64)
        with OnlineRecommendationService(snapshot=snap_path) as oracle:
            oracle.ingest(events_users, events_items)
            want = oracle.top_k(users, K)
        with OnlineRecommendationService(
                snapshot=snap_path, executor="remote",
                shard_addresses=addresses) as service:
            service.ingest(events_users, events_items)
            got = service.top_k(users, K)
        assert np.array_equal(want, got)

    def test_new_user_growth_ships_user_block(self, snap_path, addresses,
                                              index):
        new_user = index.num_users + 1  # beyond the snapshot's id space
        events_users = np.array([new_user, new_user, 0], dtype=np.int64)
        events_items = np.array([2, 9, 4], dtype=np.int64)
        probe = np.array([0, new_user], dtype=np.int64)
        with OnlineRecommendationService(snapshot=snap_path) as oracle:
            oracle.ingest(events_users, events_items)
            want = oracle.top_k(probe, K)
        with OnlineRecommendationService(
                snapshot=snap_path, executor="remote",
                shard_addresses=addresses) as service:
            service.ingest(events_users, events_items)
            got = service.top_k(probe, K)
        assert np.array_equal(want, got)


# --------------------------------------------------------------------- #
# Fault paths
# --------------------------------------------------------------------- #

class TestFaults:
    def test_killed_shard_raises_typed_error_not_partial_merge(self,
                                                               snap_path):
        procs, addrs = [], []
        try:
            for shard in range(2):
                process, (host, port) = spawn_shard_server(snap_path, shard, 2)
                procs.append(process)
                addrs.append(f"{host}:{port}")
            users = np.arange(8, dtype=np.int64)
            with RecommendationService(snapshot=snap_path, executor="remote",
                                       shard_addresses=addrs) as service:
                executor = service.sharded.executor
                executor.max_retries = 1
                executor.retry_backoff = 0.01
                baseline = service.top_k(users, K)
                assert baseline.shape == (users.size, K)
                # Kill shard 1 mid-session: the established connection dies
                # and the reconnect attempts hit a dead port.
                procs[1].kill()
                procs[1].join()
                with pytest.raises(RemoteShardError):
                    service.top_k(users, K)
        finally:
            for process in procs:
                process.kill()
                process.join()

    def test_slow_start_retries_with_backoff_until_success(self, snap_path):
        port = _free_port()
        holder = {}

        def launch_later():
            time.sleep(0.4)
            holder["server"] = ShardServer(snap_path, 0, 1,
                                           port=port).start()

        thread = threading.Thread(target=launch_later, daemon=True)
        # jitter_seed pins the backoff sleep sequence (full jitter would
        # otherwise make the elapsed-time assertion flaky).
        executor = RemoteExecutor([f"127.0.0.1:{port}"],
                                  snapshot_path=snap_path,
                                  timeout=2.0, max_retries=6,
                                  retry_backoff=0.1, jitter_seed=0)
        try:
            thread.start()
            start = time.perf_counter()
            results = executor.fan_out(
                "top_k", np.arange(3, dtype=np.int64), K, True, None, None)
            elapsed = time.perf_counter() - start
            # It must have waited through the dead window (connect refused →
            # backoff → retry), not succeeded instantly or given up.
            assert elapsed >= 0.3
            assert len(results) == 1
            ids, scores = results[0]
            assert ids.shape[0] == 3
        finally:
            executor.close()
            thread.join()
            holder["server"].close()

    def test_request_timeout_is_a_typed_error(self, snap_path):
        # FaultPlan delay beyond the client timeout on every request: the
        # one fault-injection seam, replacing the old request_delay_s knob.
        plan = FaultPlan(seed=1).inject("server.request", "delay",
                                        seconds=1.0)
        with ShardServer(snap_path, 0, 1, fault_plan=plan).start() \
                as server:
            executor = RemoteExecutor(["{}:{}".format(*server.address)],
                                      timeout=0.1, max_retries=1,
                                      retry_backoff=0.01, jitter_seed=0)
            with executor:
                start = time.perf_counter()
                with pytest.raises(RemoteShardError, match="exhausted"):
                    executor.fan_out("top_k", np.zeros(1, dtype=np.int64),
                                     1, False, None, None)
                # Bounded: 2 attempts x 0.1s timeout + backoff, not hanging.
                assert time.perf_counter() - start < 3.0
        assert plan.requests_seen("server.request") >= 1

    def test_unreachable_address_exhausts_retries(self):
        executor = RemoteExecutor([f"127.0.0.1:{_free_port()}"],
                                  timeout=0.2, max_retries=2,
                                  retry_backoff=0.01, jitter_seed=0)
        with executor:
            with pytest.raises(RemoteShardError, match="3 sweep"):
                executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                                 False, None, None)

    def test_server_side_failure_is_reported_not_retried(self, addresses):
        # A user id far outside the snapshot's matrix blows up server-side
        # (IndexError in the payload executor); the message must surface as
        # a typed error immediately — re-running it would re-fail.
        bad_users = np.array([10 ** 6], dtype=np.int64)
        with RemoteExecutor(addresses, max_retries=3,
                            retry_backoff=0.2) as executor:
            start = time.perf_counter()
            with pytest.raises(RemoteShardError, match="failed"):
                executor.fan_out("top_k", bad_users, 1, False, None, None)
            assert time.perf_counter() - start < 2.0

    def test_garbled_frame_is_retried_as_transport_fault(self, snap_path,
                                                         index):
        # One garbled reply (unparseable frame), then clean service: the
        # client must treat the desync as a transport fault and recover.
        plan = FaultPlan(seed=5).inject("server.request", "garble", at=0)
        with ShardServer(snap_path, 0, 1, fault_plan=plan).start() as server:
            executor = RemoteExecutor(["{}:{}".format(*server.address)],
                                      snapshot_path=snap_path, timeout=2.0,
                                      max_retries=3, retry_backoff=0.01,
                                      jitter_seed=0)
            users = np.arange(5, dtype=np.int64)
            with executor:
                results = executor.fan_out("top_k", users, K, True,
                                           None, None)
            assert np.array_equal(results[0][0],
                                  index.top_k(users, K, exclude_train=True))
        assert ("server.request", 0, "garble") in plan.fired


class TestReplicaFailover:
    """Tentpole: replica faults fail over without ever changing results."""

    def _pair(self, snap_path, plan=None):
        """Two same-shard replicas; the first carries the fault plan."""
        first = ShardServer(snap_path, 0, 1, fault_plan=plan).start()
        second = ShardServer(snap_path, 0, 1).start()
        replica_set = [["{}:{}".format(*first.address),
                        "{}:{}".format(*second.address)]]
        return first, second, replica_set

    def test_failover_to_sibling_is_transparent_and_bit_identical(
            self, snap_path, index):
        plan = FaultPlan(seed=2).inject("server.request", "reset", after=1)
        first, second, replica_set = self._pair(snap_path, plan)
        users = np.arange(index.num_users, dtype=np.int64)
        want = index.top_k(users, K, exclude_train=True)
        try:
            with RemoteExecutor(replica_set, snapshot_path=snap_path,
                                timeout=2.0, max_retries=3,
                                retry_backoff=0.01, jitter_seed=0) as executor:
                for _ in range(5):
                    results = executor.fan_out("top_k", users, K, True,
                                               None, None)
                    assert np.array_equal(results[0][0], want)
                health = executor.health_stats()
                assert health["failovers"] >= 1
                replicas = health["shards"][0]["replicas"]
                # The sticky preference moved to the healthy sibling.
                assert replicas[1]["requests"] >= 4
                assert replicas[0]["failures"] >= 1
        finally:
            first.close()
            second.close()

    def test_exhausted_replica_set_fails_closed(self, snap_path):
        # Both replicas reset every request: the typed error must name the
        # whole replica set, and no partial result may escape.
        plan_a = FaultPlan(seed=3).inject("server.request", "reset")
        plan_b = FaultPlan(seed=4).inject("server.request", "reset")
        first = ShardServer(snap_path, 0, 1, fault_plan=plan_a).start()
        second = ShardServer(snap_path, 0, 1, fault_plan=plan_b).start()
        replica_set = [["{}:{}".format(*first.address),
                        "{}:{}".format(*second.address)]]
        try:
            with RemoteExecutor(replica_set, snapshot_path=snap_path,
                                timeout=1.0, max_retries=1,
                                retry_backoff=0.01, jitter_seed=0) as executor:
                with pytest.raises(RemoteShardError,
                                   match="exhausted all 2 replica"):
                    executor.fan_out("top_k", np.zeros(1, dtype=np.int64),
                                     1, False, None, None)
        finally:
            first.close()
            second.close()

    def test_stale_replica_is_skipped_never_served(self, snap_path,
                                                   other_snap_path, index):
        # Replica 0 serves a different snapshot: its handshake rejection
        # must disqualify it (circuit "rejected"), with the fresh sibling
        # serving the exact results — a stale replica is never merged.
        stale = ShardServer(other_snap_path, 0, 1).start()
        fresh = ShardServer(snap_path, 0, 1).start()
        replica_set = [["{}:{}".format(*stale.address),
                        "{}:{}".format(*fresh.address)]]
        users = np.arange(10, dtype=np.int64)
        try:
            with RemoteExecutor(replica_set, snapshot_path=snap_path,
                                timeout=2.0, jitter_seed=0) as executor:
                results = executor.fan_out("top_k", users, K, True,
                                           None, None)
                assert np.array_equal(
                    results[0][0], index.top_k(users, K, exclude_train=True))
                replicas = executor.health_stats()["shards"][0]["replicas"]
                assert replicas[0]["circuit"] == "rejected"
                assert "snapshot identity mismatch" in replicas[0]["last_error"]
        finally:
            stale.close()
            fresh.close()

    def test_all_replicas_stale_raises_without_burning_retries(
            self, snap_path, other_snap_path):
        stale_a = ShardServer(other_snap_path, 0, 1).start()
        stale_b = ShardServer(other_snap_path, 0, 1).start()
        replica_set = [["{}:{}".format(*stale_a.address),
                        "{}:{}".format(*stale_b.address)]]
        try:
            executor = RemoteExecutor(replica_set, snapshot_path=snap_path,
                                      timeout=2.0, max_retries=6,
                                      retry_backoff=0.3, jitter_seed=0)
            start = time.perf_counter()
            with executor, pytest.raises(RemoteShardError,
                                         match="rejected the handshake"):
                executor.fan_out("top_k", np.zeros(1, dtype=np.int64), 1,
                                 False, None, None)
            # Deterministic rejections must short-circuit the retry budget
            # (6 sweeps x 0.3s+ backoff would take seconds).
            assert time.perf_counter() - start < 2.0
        finally:
            stale_a.close()
            stale_b.close()

    def test_rejected_error_is_typed(self):
        assert issubclass(ReplicaRejectedError, RemoteShardError)

    def test_circuit_breaker_opens_then_halfopen_probe_recovers(self,
                                                                snap_path,
                                                                index):
        # Phase 1: the only replica is down → consecutive transport faults
        # trip the breaker open.  Phase 2: the replica comes back on the
        # same port; after the cooldown a half-open probe closes the
        # circuit and serving resumes.
        port = _free_port()
        executor = RemoteExecutor([f"127.0.0.1:{port}"],
                                  snapshot_path=snap_path, timeout=0.5,
                                  max_retries=2, retry_backoff=0.01,
                                  breaker_threshold=2,
                                  breaker_cooldown=0.05, jitter_seed=0)
        users = np.arange(4, dtype=np.int64)
        try:
            with pytest.raises(RemoteShardError):
                executor.fan_out("top_k", users, K, True, None, None)
            replica = executor.health_stats()["shards"][0]["replicas"][0]
            assert replica["circuit"] == "open"
            assert replica["consecutive_failures"] >= 2
            server = ShardServer(snap_path, 0, 1, port=port).start()
            try:
                time.sleep(0.06)  # past the cooldown: next attempt probes
                results = executor.fan_out("top_k", users, K, True,
                                           None, None)
                assert np.array_equal(
                    results[0][0], index.top_k(users, K, exclude_train=True))
                replica = executor.health_stats()["shards"][0]["replicas"][0]
                assert replica["circuit"] == "closed"
                assert replica["probes"] >= 1
                assert replica["probe_successes"] >= 1
            finally:
                server.close()
        finally:
            executor.close()

    def test_client_fault_plan_reset_forces_failover(self, snap_path, index):
        # Client-side injection: the request never reaches replica 0's
        # socket, the executor records the fault and serves from replica 1.
        first, second, replica_set = self._pair(snap_path)
        client_plan = FaultPlan(seed=9).inject("client.request", "reset",
                                               at=0)
        users = np.arange(6, dtype=np.int64)
        try:
            with RemoteExecutor(replica_set, snapshot_path=snap_path,
                                timeout=2.0, max_retries=2,
                                retry_backoff=0.01, jitter_seed=0,
                                fault_plan=client_plan) as executor:
                results = executor.fan_out("top_k", users, K, True,
                                           None, None)
                assert np.array_equal(
                    results[0][0], index.top_k(users, K, exclude_train=True))
                assert executor.health_stats()["failovers"] >= 1
        finally:
            first.close()
            second.close()
        assert ("client.request", 0, "reset") in client_plan.fired

    def test_backoff_is_jittered_capped_and_deterministic(self):
        executor_a = RemoteExecutor(["h:1"], retry_backoff=0.1,
                                    max_backoff=0.4, jitter_seed=123)
        executor_b = RemoteExecutor(["h:1"], retry_backoff=0.1,
                                    max_backoff=0.4, jitter_seed=123)
        delays_a = [executor_a._backoff_delay(attempt)
                    for attempt in range(1, 12)]
        delays_b = [executor_b._backoff_delay(attempt)
                    for attempt in range(1, 12)]
        assert delays_a == delays_b  # seeded: reproducible
        for attempt, delay in enumerate(delays_a, start=1):
            assert 0.0 <= delay <= min(0.4, 0.1 * 2 ** (attempt - 1))
        # Late attempts stay capped instead of growing without bound.
        assert max(delays_a[6:]) <= 0.4
        # Different seeds decorrelate the sequences (thundering herd).
        executor_c = RemoteExecutor(["h:1"], retry_backoff=0.1,
                                    max_backoff=0.4, jitter_seed=124)
        assert [executor_c._backoff_delay(a) for a in range(1, 12)] \
            != delays_a
        for executor in (executor_a, executor_b, executor_c):
            executor.close()

    def test_service_accepts_replica_lists_and_surfaces_health(
            self, snap_path):
        first, second, _ = self._pair(snap_path)
        try:
            replica_set = ["{}:{},{}:{}".format(*first.address,
                                                *second.address)]
            users = np.arange(8, dtype=np.int64)
            with RecommendationService(snapshot=snap_path) as oracle:
                want = oracle.top_k(users, K)
            with RecommendationService(snapshot=snap_path, executor="remote",
                                       shard_addresses=replica_set) as service:
                assert np.array_equal(service.top_k(users, K), want)
                health = service.health_stats()
                assert health["num_shards"] == 1
                assert health["replicas_per_shard"] == [2]
            # Local serving has no replicas to monitor.
            with RecommendationService(snapshot=snap_path) as local:
                assert local.health_stats() is None
        finally:
            first.close()
            second.close()


# --------------------------------------------------------------------- #
# Server lifecycle + CLI validation
# --------------------------------------------------------------------- #

class TestShardServer:
    def test_constructor_validation(self, snap_path, tmp_path):
        with pytest.raises(ValueError):
            ShardServer(snap_path, 2, 2)
        with pytest.raises(ValueError):
            ShardServer(snap_path, 0, 0)
        with pytest.raises(ValueError):
            ShardServer(snap_path, 0, 1, policy="diagonal")
        with pytest.raises(SnapshotFormatError):
            ShardServer(tmp_path / "missing.snap", 0, 1)

    def test_close_is_idempotent(self, snap_path):
        server = ShardServer(snap_path, 0, 1).start()
        server.close()
        server.close()

    def test_cli_shard_server_validation(self, snap_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="shard-id"):
            main(["shard-server", str(snap_path), "--shard-id", "3",
                  "--num-shards", "2"])
        with pytest.raises(SystemExit, match="num-shards"):
            main(["shard-server", str(snap_path), "--shard-id", "0",
                  "--num-shards", "0"])
        with pytest.raises(SystemExit, match="error"):
            main(["shard-server", "/nonexistent/serve.snap",
                  "--shard-id", "0", "--num-shards", "1"])

    def test_cli_recommend_remote_validation(self, snap_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--snapshot"):
            main(["recommend", "--executor", "remote",
                  "--shard-addr", "h:1"])
        with pytest.raises(SystemExit, match="--shard-addr"):
            main(["recommend", "--snapshot", str(snap_path),
                  "--executor", "remote"])
        with pytest.raises(SystemExit, match="--executor remote"):
            main(["recommend", "--snapshot", str(snap_path),
                  "--shard-addr", "h:1", "--executor", "serial"])
        with pytest.raises(SystemExit, match="does not match"):
            main(["recommend", "--snapshot", str(snap_path),
                  "--executor", "remote", "--shard-addr", "h:1",
                  "--shards", "3"])

    def test_cli_recommend_replica_set_reports_health(self, snap_path,
                                                      capsys):
        import json
        from repro.cli import main
        first = ShardServer(snap_path, 0, 1).start()
        second = ShardServer(snap_path, 0, 1).start()
        try:
            addr = "{}:{},{}:{}".format(*first.address, *second.address)
            assert main(["recommend", "--snapshot", str(snap_path),
                         "--executor", "remote", "--shard-addr", addr,
                         "--users", "0,2", "-k", str(K), "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["health"]["num_shards"] == 1
            assert payload["health"]["replicas_per_shard"] == [2]
            assert payload["health"]["requests"] >= 1
        finally:
            first.close()
            second.close()


class TestSingleShardShortCircuit:
    """Satellite: num_shards == 1 must never cross the fan-out seam."""

    class _SentinelExecutor(SerialExecutor):
        def __init__(self):
            self.calls = 0

        def run(self, tasks):
            self.calls += 1
            raise AssertionError("single-shard serving used the executor")

        def fan_out(self, kind, *request):
            self.calls += 1
            raise AssertionError("single-shard serving used the executor")

    def test_object_executor_is_never_called(self, index):
        sentinel = self._SentinelExecutor()
        with RecommendationService(index=index, num_shards=1,
                                   executor=sentinel) as service:
            users = np.arange(10, dtype=np.int64)
            service.top_k(users, K)
            service.recommend(0, k=K)
            service.score_pairs(users[:3], np.array([1, 2, 3]))
        assert sentinel.calls == 0

    def test_string_executors_are_not_constructed(self, index, snap_path):
        for name in ("serial", "threads"):
            with RecommendationService(index=index, num_shards=1,
                                       executor=name) as service:
                assert isinstance(service._executor, SerialExecutor)
        # Even "process" (which would build a worker pool) short-circuits —
        # but still demands its snapshot precondition up front.
        with RecommendationService(snapshot=snap_path, num_shards=1,
                                   executor="process") as service:
            assert isinstance(service._executor, SerialExecutor)
        with pytest.raises(ValueError, match="snapshot"):
            RecommendationService(index=index, num_shards=1,
                                  executor="process")

    def test_unknown_executor_name_still_rejected(self, index):
        with pytest.raises(ValueError, match="unknown executor"):
            RecommendationService(index=index, num_shards=1,
                                  executor="carrier-pigeon")
