"""Tests for the durable ingest write-ahead log (repro.engine.wal).

The durability contract under test: anything ``ingest()`` acknowledged is
recoverable — a service constructed over the snapshot base plus the WAL
serves bit-identically to the service that never crashed — and anything not
acknowledged (a torn final write) is detected by checksum and dropped, never
half-applied.
"""

import numpy as np
import pytest

from repro.engine import (
    FaultPlan,
    InferenceIndex,
    OnlineRecommendationService,
    WalError,
    WalTornWrite,
    WriteAheadLog,
    read_wal_records,
    save_snapshot,
)
from repro.engine.wal import _HEADER, _MAGIC, _VERSION, _encode_record
from repro.models import BprMF

K = 6


@pytest.fixture(scope="module")
def snap_path(tiny_split, tmp_path_factory):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    index = InferenceIndex.from_model(model, tiny_split)
    return save_snapshot(tmp_path_factory.mktemp("wal") / "serve.snap",
                         index, candidate_modes=("int8",))


def _batch(*pairs):
    users, items = zip(*pairs)
    return (np.asarray(users, dtype=np.int64),
            np.asarray(items, dtype=np.int64))


class TestWriteAheadLog:
    def test_append_then_reopen_recovers_every_record(self, tmp_path):
        path = tmp_path / "ingest.wal"
        batches = [_batch((0, 3), (1, 4)), _batch((2, 5)),
                   _batch((0, 1), (0, 2), (3, 3))]
        with WriteAheadLog(path) as wal:
            for users, items in batches:
                wal.append(users, items)
            assert wal.stats()["records"] == 3
        recovered = WriteAheadLog(path).recovered
        assert len(recovered) == 3
        for (users, items), (got_users, got_items) in zip(batches, recovered):
            np.testing.assert_array_equal(users, got_users)
            np.testing.assert_array_equal(items, got_items)

    def test_read_wal_records_is_read_only(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(*_batch((1, 2)))
        size = path.stat().st_size
        records = read_wal_records(path)
        assert len(records) == 1
        assert path.stat().st_size == size
        assert read_wal_records(tmp_path / "missing.wal") == []

    def test_empty_batches_round_trip(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(np.empty(0, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        recovered = WriteAheadLog(path).recovered
        assert len(recovered) == 1
        assert recovered[0][0].size == 0

    def test_not_a_wal_file_is_refused(self, tmp_path):
        path = tmp_path / "bogus.wal"
        path.write_bytes(b"definitely not a WAL header")
        with pytest.raises(WalError, match="bad magic"):
            WriteAheadLog(path)
        with pytest.raises(WalError, match="bad magic"):
            read_wal_records(path)

    def test_wrong_version_is_refused(self, tmp_path):
        path = tmp_path / "future.wal"
        path.write_bytes(_HEADER.pack(_MAGIC, _VERSION + 1))
        with pytest.raises(WalError, match="version"):
            WriteAheadLog(path)

    def test_torn_tail_is_truncated_and_appends_resume(self, tmp_path):
        path = tmp_path / "ingest.wal"
        with WriteAheadLog(path) as wal:
            wal.append(*_batch((0, 1)))
            wal.append(*_batch((2, 3)))
        # A crash mid-append: half of a third record hits the disk.
        torn = _encode_record(*_batch((4, 5)))
        with open(path, "ab") as handle:
            handle.write(torn[:len(torn) // 2])
        wal = WriteAheadLog(path)
        assert len(wal.recovered) == 2
        stats = wal.stats()
        assert stats["truncated_bytes"] == len(torn) // 2
        assert path.stat().st_size == stats["bytes"]  # physically truncated
        wal.append(*_batch((6, 7)))  # the log is healthy again
        wal.close()
        assert len(read_wal_records(path)) == 3

    def test_fsync_policies(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "x.wal", fsync="sometimes")
        with WriteAheadLog(tmp_path / "always.wal", fsync="always") as wal:
            for index in range(3):
                wal.append(*_batch((index, 0)))
            assert wal.stats()["syncs"] == 3
            assert wal.stats()["last_fsync_record"] == 3
        with WriteAheadLog(tmp_path / "batch.wal", fsync="batch",
                           batch_interval=2) as wal:
            for index in range(5):
                wal.append(*_batch((index, 0)))
            assert wal.stats()["syncs"] == 2  # after records 2 and 4
            assert wal.stats()["last_fsync_record"] == 4
        with WriteAheadLog(tmp_path / "off.wal", fsync="off") as wal:
            wal.append(*_batch((0, 0)))
            assert wal.stats()["syncs"] == 0

    def test_rotate_drops_exactly_the_marked_prefix(self, tmp_path):
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        wal.append(*_batch((0, 1)))
        mark = wal.append(*_batch((2, 3)))
        assert mark == wal.mark() == 2  # marks are record sequence numbers
        wal.append(*_batch((4, 5)))
        dropped = wal.rotate(mark)
        assert dropped == (len(_encode_record(*_batch((0, 1))))
                           + len(_encode_record(*_batch((2, 3)))))
        assert wal.stats()["records"] == 1
        assert wal.stats()["rotations"] == 1
        wal.append(*_batch((6, 7)))
        wal.close()
        records = read_wal_records(path)
        assert len(records) == 2
        np.testing.assert_array_equal(records[0][0], [4])
        np.testing.assert_array_equal(records[1][0], [6])

    def test_rotate_rejects_out_of_range_marks(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        end = wal.append(*_batch((0, 1)))
        with pytest.raises(ValueError, match="outside log bounds"):
            wal.rotate(end + 1)
        with pytest.raises(ValueError, match="outside log bounds"):
            wal.rotate(-1)
        assert wal.rotate(0) == 0  # nothing at or below mark 0: a no-op
        # Rotating the full log empties it but keeps it writable.
        wal.rotate(end)
        assert wal.stats()["records"] == 0
        wal.append(*_batch((2, 3)))
        wal.close()

    def test_rotate_marks_survive_an_interleaved_rotation(self, tmp_path):
        """Regression: a mark captured before another rotate stays valid.

        Overlapping snapshot publishes each capture a mark, then rotate on
        their own schedule.  Byte-offset marks would be rebased by the
        first rotation (raising, or silently dropping the wrong records);
        sequence marks are immune — and a stale mark is just a no-op.
        """
        path = tmp_path / "ingest.wal"
        wal = WriteAheadLog(path)
        wal.append(*_batch((0, 1)))
        mark_a = wal.mark()  # publish A captures after record 1
        wal.append(*_batch((2, 3)))
        wal.append(*_batch((4, 5)))
        mark_b = wal.mark()  # publish B captures after record 3
        # Publish A (started earlier, still in flight) rotates first …
        assert wal.rotate(mark_a) > 0
        assert wal.stats()["records"] == 2
        # … and B's later mark still drops exactly records 2 and 3.
        assert wal.rotate(mark_b) > 0
        assert wal.stats()["records"] == 0
        # The reverse interleaving: a stale mark after a newer rotation.
        wal.append(*_batch((6, 7)))
        assert wal.rotate(mark_a) == 0  # already covered, not an error
        assert wal.stats()["records"] == 1
        wal.close()
        records = read_wal_records(path)
        assert len(records) == 1
        np.testing.assert_array_equal(records[0][0], [6])

    def test_injected_torn_write_breaks_the_log_until_reopen(self, tmp_path):
        path = tmp_path / "ingest.wal"
        plan = FaultPlan(seed=1).inject("wal.append", "torn_write", at=1,
                                        keep_bytes=5)
        wal = WriteAheadLog(path, fault_plan=plan)
        wal.append(*_batch((0, 1)))
        with pytest.raises(WalTornWrite, match="5/"):
            wal.append(*_batch((2, 3)))
        # The "crashed" log refuses to keep going — exactly like the dead
        # process it simulates.
        with pytest.raises(WalError, match="torn write"):
            wal.append(*_batch((4, 5)))
        wal.close()
        # Reopen IS recovery: the acknowledged record survives, the torn
        # bytes are gone.
        recovered = WriteAheadLog(path)
        assert len(recovered.recovered) == 1
        assert recovered.stats()["truncated_bytes"] == 5
        np.testing.assert_array_equal(recovered.recovered[0][0], [0])

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "ingest.wal")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            wal.append(*_batch((0, 1)))


class TestDurableIngest:
    """Service-level durability: acked == recoverable, bit-identically."""

    def test_recovery_serves_bit_identically_to_the_uncrashed_service(
            self, snap_path, tmp_path):
        wal_path = tmp_path / "ingest.wal"
        batches = [_batch((0, 3), (1, 7)), _batch((2, 2)),
                   _batch((41, 5), (41, 6))]  # 41 grows the user space
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as live:
            for users, items in batches:
                live.ingest(users, items)
            users = np.arange(live.num_users, dtype=np.int64)
            want = live.top_k(users, K)
            assert live.wal_stats["records"] == 3
        # No clean shutdown ritual: construction over base + log IS recovery.
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as recovered:
            assert recovered.wal_replayed == 3
            assert recovered.num_users == users.size
            np.testing.assert_array_equal(recovered.top_k(users, K), want)
            assert recovered.wal_stats["replayed_records"] == 3

    def test_torn_ingest_is_not_acknowledged_and_not_replayed(
            self, snap_path, tmp_path):
        wal_path = tmp_path / "ingest.wal"
        plan = FaultPlan(seed=2).inject("wal.append", "torn_write", at=2,
                                        keep_fraction=0.6)
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path,
                                         wal_fault_plan=plan) as crashing:
            crashing.ingest(*_batch((0, 3)))
            crashing.ingest(*_batch((1, 4)))
            with pytest.raises(WalTornWrite):
                crashing.ingest(*_batch((2, 5)))
            # Write-ahead ordering: the batch whose append failed never
            # touched serving state, so the still-live service agrees with
            # what recovery will reconstruct — no silent divergence window.
            assert not crashing.overlay.contains([2], [5])[0]
            assert crashing.ingested_pairs == 2
        # The oracle ingested only what was acknowledged.
        with OnlineRecommendationService(snapshot=snap_path) as oracle:
            oracle.ingest(*_batch((0, 3)))
            oracle.ingest(*_batch((1, 4)))
            users = np.arange(oracle.num_users, dtype=np.int64)
            want = oracle.top_k(users, K)
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as recovered:
            assert recovered.wal_replayed == 2
            np.testing.assert_array_equal(recovered.top_k(users, K), want)

    def test_publish_rotates_the_log_and_recovery_still_works(
            self, snap_path, tmp_path):
        import shutil
        live_snap = tmp_path / "live.snap"
        shutil.copy(snap_path, live_snap)
        wal_path = tmp_path / "ingest.wal"
        with OnlineRecommendationService(snapshot=live_snap,
                                         snapshot_path=live_snap,
                                         wal_path=wal_path) as live:
            live.ingest(*_batch((0, 3), (1, 7)))
            live.publish_snapshot()  # foreground: rotation happens now
            assert live.wal_stats["rotations"] == 1
            assert live.wal_stats["records"] == 0  # baked into the snapshot
            live.ingest(*_batch((2, 2)))  # post-publish tail stays logged
            users = np.arange(live.num_users, dtype=np.int64)
            want = live.top_k(users, K)
        with OnlineRecommendationService(snapshot=live_snap,
                                         wal_path=wal_path) as recovered:
            assert recovered.wal_replayed == 1  # only the tail replays
            np.testing.assert_array_equal(recovered.top_k(users, K), want)

    def test_overlapping_publishes_rotate_consistently(
            self, snap_path, tmp_path, monkeypatch):
        """Regression: a publish overlapping a slow in-flight publish.

        The second publish captures its WAL mark *before* joining the
        first, whose rotation then rewrites the log.  With byte-offset
        marks the second rotation either raised or dropped acknowledged
        records; sequence marks keep every interleaving exact.
        """
        import shutil
        import threading
        import time

        from repro.engine import online as online_module

        live_snap = tmp_path / "live.snap"
        shutil.copy(snap_path, live_snap)
        gate = threading.Event()
        real_save = online_module.save_snapshot
        calls = []

        def slow_save(*args, **kwargs):
            calls.append(time.monotonic())
            if len(calls) == 1:  # stall only the first (background) publish
                assert gate.wait(10)
            return real_save(*args, **kwargs)

        monkeypatch.setattr(online_module, "save_snapshot", slow_save)
        with OnlineRecommendationService(snapshot=live_snap,
                                         snapshot_path=live_snap,
                                         wal_path=tmp_path / "w.wal") as live:
            live.ingest(*_batch((0, 3), (1, 7)))
            live.publish_snapshot(background=True)  # stalls inside save
            live.ingest(*_batch((2, 2)))
            # The foreground publish captures its mark, then blocks joining
            # the stalled background worker; release the worker so its
            # rotation lands between the capture and the second rotate —
            # exactly the reviewed interleaving.
            threading.Timer(0.3, gate.set).start()
            live.publish_snapshot()
            assert live.publishes == 2
            assert live.wal_stats["rotations"] == 2
            assert live.wal_stats["records"] == 0  # all baked into the snap
            live.ingest(*_batch((3, 4)))
            users = np.arange(live.num_users, dtype=np.int64)
            want = live.top_k(users, K)
        with OnlineRecommendationService(snapshot=live_snap,
                                         wal_path=tmp_path / "w.wal") as rec:
            assert rec.wal_replayed == 1  # only the post-publish tail
            np.testing.assert_array_equal(rec.top_k(users, K), want)

    def test_wal_stats_surface_in_online_stats(self, snap_path, tmp_path):
        with OnlineRecommendationService(
                snapshot=snap_path,
                wal_path=tmp_path / "ingest.wal",
                wal_fsync="always") as service:
            service.ingest(*_batch((0, 3)))
            stats = service.online_stats["wal"]
            assert stats["fsync"] == "always"
            assert stats["records"] == 1
            assert stats["syncs"] >= 1
        with OnlineRecommendationService(snapshot=snap_path) as plain:
            assert plain.online_stats["wal"] is None
            assert plain.wal is None
