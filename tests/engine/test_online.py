"""Tests for the online-serving subsystem (delta overlay, ingest, compaction)."""

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    InteractionDelta,
    OnlineRecommendationService,
    OnlineUserItemIndex,
    RecommendationService,
    UserItemIndex,
)
from repro.models import BprMF, MultiVAE


@pytest.fixture()
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


def _rebuild(online: OnlineUserItemIndex) -> UserItemIndex:
    """From-scratch build on the accumulated interactions (the oracle)."""
    users, items = online.all_pairs()
    return UserItemIndex(online.num_users, online.num_items, users, items)


class TestInteractionDelta:
    def test_add_keys_merges_sorted_batches(self):
        delta = InteractionDelta(num_items=10)
        delta.add_keys(np.asarray([7, 12, 31], dtype=np.int64))
        delta.add_keys(np.asarray([3, 15], dtype=np.int64))
        np.testing.assert_array_equal(delta.keys, [3, 7, 12, 15, 31])
        assert delta.nnz == 5

    def test_contains_keys_shapes(self):
        delta = InteractionDelta(num_items=10)
        delta.add_keys(np.asarray([5, 17], dtype=np.int64))
        got = delta.contains_keys(np.asarray([[5, 6], [17, 18]]))
        np.testing.assert_array_equal(got, [[True, False], [True, False]])
        assert not InteractionDelta(10).contains_keys(np.asarray([5])).any()

    def test_pairs_for_and_counts(self):
        delta = InteractionDelta(num_items=10)
        # user 0: items 3, 9 — user 2: item 1
        delta.add_keys(np.asarray([3, 9, 21], dtype=np.int64))
        rows, cols = delta.pairs_for(np.asarray([2, 0, 1]))
        np.testing.assert_array_equal(rows, [0, 1, 1])
        np.testing.assert_array_equal(cols, [1, 3, 9])
        np.testing.assert_array_equal(delta.counts(np.asarray([0, 1, 2])),
                                      [2, 0, 1])


class TestOnlineUserItemIndex:
    def _base(self, rng, num_users=20, num_items=15, nnz=60):
        return UserItemIndex(num_users, num_items,
                             rng.integers(0, num_users, nnz),
                             rng.integers(0, num_items, nnz))

    def test_ingest_drops_base_delta_and_batch_duplicates(self, rng):
        base = self._base(rng)
        online = OnlineUserItemIndex(base)
        known_user = int(base.users_with_items()[0])
        known_item = int(base.items_for(known_user)[0])
        users = np.asarray([known_user, 3, 3, 3])
        items = np.asarray([known_item, 9, 9, 8])
        fresh_users, fresh_items = online.ingest(users, items)
        assert fresh_users.size == 2  # (3,9) and (3,8); dupes + known dropped
        again_users, again_items = online.ingest(users, items)
        assert again_users.size == 0  # now in the delta
        assert online.nnz == base.nnz + 2

    def test_read_api_matches_from_scratch_build(self, rng):
        base = self._base(rng)
        online = OnlineUserItemIndex(base)
        online.ingest(rng.integers(0, 20, 40), rng.integers(0, 15, 40))
        oracle = _rebuild(online)
        users = np.arange(20)
        np.testing.assert_array_equal(online.counts(), oracle.counts())
        np.testing.assert_array_equal(online.membership(users),
                                      oracle.membership(users))
        np.testing.assert_array_equal(online.flat_keys, oracle.flat_keys)
        np.testing.assert_array_equal(online.users_with_items(),
                                      oracle.users_with_items())
        for user in range(20):
            np.testing.assert_array_equal(online.items_for(user),
                                          oracle.items_for(user))
        probe_users = rng.integers(0, 20, (8, 1))
        probe_items = rng.integers(0, 15, (8, 6))
        np.testing.assert_array_equal(online.contains(probe_users, probe_items),
                                      oracle.contains(probe_users, probe_items))
        scores_a = rng.normal(size=(5, 15))
        scores_b = scores_a.copy()
        batch = rng.integers(0, 20, 5)
        np.testing.assert_array_equal(online.mask(scores_a, batch),
                                      oracle.mask(scores_b, batch))

    def test_grown_users_live_in_the_delta(self, rng):
        base = self._base(rng)
        online = OnlineUserItemIndex(base)
        online.grow_users(25)
        online.ingest(np.asarray([22, 22]), np.asarray([1, 4]))
        np.testing.assert_array_equal(online.items_for(22), [1, 4])
        assert online.counts(np.asarray([22]))[0] == 2
        assert online.contains(np.asarray([22]), np.asarray([4]))[0]
        oracle = _rebuild(online)
        np.testing.assert_array_equal(online.membership(np.arange(25)),
                                      oracle.membership(np.arange(25)))

    def test_compact_bit_identical_to_rebuild(self, rng):
        base = self._base(rng)
        online = OnlineUserItemIndex(base)
        online.grow_users(23)
        online.ingest(rng.integers(0, 23, 50), rng.integers(0, 15, 50))
        oracle = _rebuild(online)
        online.compact()
        assert online.delta.nnz == 0
        np.testing.assert_array_equal(online.base.indptr, oracle.indptr)
        np.testing.assert_array_equal(online.base.indices, oracle.indices)
        np.testing.assert_array_equal(online.base.flat_keys, oracle.flat_keys)

    def test_compact_without_delta_keeps_base(self, rng):
        base = self._base(rng)
        online = OnlineUserItemIndex(base)
        online.compact()
        assert online.base is base  # nothing to merge, no rebuild

    def test_from_flat_keys_matches_constructor(self, rng):
        users = rng.integers(0, 12, 40)
        items = rng.integers(0, 9, 40)
        built = UserItemIndex(12, 9, users, items)
        fast = UserItemIndex.from_flat_keys(12, 9, built.flat_keys)
        np.testing.assert_array_equal(fast.indptr, built.indptr)
        np.testing.assert_array_equal(fast.indices, built.indices)
        np.testing.assert_array_equal(fast.flat_keys, built.flat_keys)

    def test_validation(self, rng):
        online = OnlineUserItemIndex(self._base(rng))
        with pytest.raises(IndexError):
            online.ingest(np.asarray([50]), np.asarray([0]))
        with pytest.raises(IndexError):
            online.ingest(np.asarray([0]), np.asarray([99]))
        with pytest.raises(ValueError):
            online.ingest(np.asarray([0, 1]), np.asarray([0]))
        with pytest.raises(ValueError):
            online.grow_users(3)
        with pytest.raises(ValueError):
            OnlineUserItemIndex(self._base(rng), num_users=5)


class TestOnlineService:
    def test_ingested_item_leaves_recommendations(self, model):
        service = OnlineRecommendationService(model)
        before = service.recommend(0, k=3)
        consumed = before[0]
        stats = service.ingest(np.asarray([0]), np.asarray([consumed]))
        assert stats["ingested"] == 1 and stats["touched_users"] == 1
        after = service.recommend(0, k=3)
        assert consumed not in after

    def test_invalidation_is_targeted(self, model):
        service = OnlineRecommendationService(model)
        service.recommend(0, k=3)
        untouched = service.recommend(1, k=3)
        service.ingest(np.asarray([0]), np.asarray([5]))
        assert service.recommend(1, k=3) == untouched
        assert service.cache_hits == 1  # user 1 never left the cache

    def test_overlay_matches_rebuild_service(self, model, tiny_split, rng):
        service = OnlineRecommendationService(model)
        users = rng.integers(0, tiny_split.num_users, 30)
        items = rng.integers(0, tiny_split.num_items, 30)
        service.ingest(users, items)
        all_users = np.arange(service.num_users)
        got = service.top_k(all_users, 5)
        pair_users, pair_items = service.overlay.all_pairs()
        oracle = RecommendationService(index=InferenceIndex(
            service.num_users, service.num_items,
            user_embeddings=service.index.user_embeddings,
            item_embeddings=service.index.item_embeddings,
            exclusion=UserItemIndex(service.num_users, service.num_items,
                                    pair_users, pair_items)))
        np.testing.assert_array_equal(got, oracle.top_k(all_users, 5))
        service.compact()
        np.testing.assert_array_equal(service.top_k(all_users, 5), got)

    def test_auto_compaction_threshold(self, model):
        service = OnlineRecommendationService(model, compact_threshold=5)
        stats = service.ingest(np.asarray([0, 0, 1, 1]),
                               np.asarray([30, 31, 30, 31]))
        if stats["ingested"] < 5:
            assert not stats["compacted"]
        stats = service.ingest(np.asarray([2, 2, 3]), np.asarray([30, 31, 30]))
        assert stats["compacted"] and service.compactions >= 1
        assert service.delta_size == 0

    @pytest.mark.parametrize("policy", ["mean", "zeros"])
    def test_new_users_get_fallback_rows(self, model, tiny_split, policy):
        service = OnlineRecommendationService(model, new_user_policy=policy)
        base_users = tiny_split.num_users
        stats = service.ingest(np.asarray([base_users, base_users]),
                               np.asarray([3, 7]))
        assert stats["new_users"] == 1
        assert service.num_users == base_users + 1
        row = service.index.user_embeddings[base_users]
        if policy == "zeros":
            np.testing.assert_array_equal(row, np.zeros_like(row))
        else:
            np.testing.assert_allclose(
                row, service.index.user_embeddings[:base_users].mean(axis=0))
        recs = service.recommend(base_users, k=4)
        assert 3 not in recs and 7 not in recs  # consumed items excluded

    def test_sharded_overlays_follow_ingest(self, model, tiny_split, rng):
        service = OnlineRecommendationService(model, num_shards=3)
        plain = OnlineRecommendationService(model)
        users = rng.integers(0, tiny_split.num_users + 2, 40)
        items = rng.integers(0, tiny_split.num_items, 40)
        service.ingest(users, items)
        plain.ingest(users, items)
        all_users = np.arange(service.num_users)
        np.testing.assert_array_equal(service.top_k(all_users, 5),
                                      plain.top_k(all_users, 5))
        service.compact()
        np.testing.assert_array_equal(service.top_k(all_users, 5),
                                      plain.top_k(all_users, 5))

    def test_ingest_keeps_quantised_block_compact_rebuilds(self, model):
        service = OnlineRecommendationService(model, candidate_mode="int8")
        backend_before = service.candidates
        block_before = backend_before.block
        service.ingest(np.asarray([0]), np.asarray([4]))
        assert service.candidates is backend_before  # ingest: no requantise
        assert service.candidates.block is block_before
        service.compact()
        assert service.candidates is not backend_before  # compaction rebuilds

    def test_refresh_preserves_ingested_state(self, model, tiny_split):
        service = OnlineRecommendationService(model)
        base_users = tiny_split.num_users
        service.ingest(np.asarray([0, base_users]), np.asarray([9, 9]))
        model.user_factors.data[:] = -model.user_factors.data
        service.refresh()
        assert service.num_users == base_users + 1  # grown user survives
        assert service.overlay.contains(np.asarray([0]), np.asarray([9]))[0]
        assert 9 not in service.recommend(0, k=tiny_split.num_items - 1)

    def test_spurious_refresh_is_a_true_noop(self, model):
        # Nothing ingested, embeddings unchanged: refresh must keep the whole
        # warm stack — overlay object, caches, counters — untouched.
        service = OnlineRecommendationService(model, candidate_mode="int8")
        before = service.recommend(0, k=5)
        index_before = service.index
        overlay_before = service.overlay
        candidates_before = service.candidates
        assert service.refresh() is service
        assert service.index is index_before
        assert service.overlay is overlay_before
        assert service.index.exclusion is overlay_before  # rewrapped
        assert service.candidates is candidates_before
        assert service.recommend(0, k=5) == before
        assert service.cache_hits >= 1  # LRU survived the refresh

    def test_noop_refresh_error_restores_overlay(self, model, tiny_split):
        # Built from a prebuilt index there is no model to re-freeze from;
        # the failed refresh must leave the overlay wrapped back in place.
        index = InferenceIndex.from_model(model, tiny_split)
        service = OnlineRecommendationService(index=index)
        overlay = service.overlay
        with pytest.raises(ValueError, match="no model"):
            service.refresh()
        assert service.index.exclusion is overlay
        assert service.overlay is overlay

    def test_online_stats_counters(self, model):
        service = OnlineRecommendationService(model, compact_threshold=100)
        service.ingest(np.asarray([0, 1]), np.asarray([3, 4]))
        stats = service.online_stats
        assert stats["ingested_pairs"] == 2
        assert stats["delta_size"] == 2
        assert stats["compactions"] == 0
        assert stats["compact_threshold"] == 100

    def test_validation_and_limits(self, model, tiny_split):
        with pytest.raises(ValueError, match="compact_threshold"):
            OnlineRecommendationService(model, compact_threshold=0)
        with pytest.raises(ValueError, match="new_user_policy"):
            OnlineRecommendationService(model, new_user_policy="random")
        service = OnlineRecommendationService(model, max_user_growth=2)
        with pytest.raises(ValueError, match="max_user_growth"):
            service.ingest(np.asarray([tiny_split.num_users + 10]),
                           np.asarray([0]))
        with pytest.raises(IndexError):
            service.ingest(np.asarray([0]), np.asarray([tiny_split.num_items]))
        with pytest.raises(IndexError):
            service.ingest(np.asarray([-1]), np.asarray([0]))

    def test_scorer_fallback_cannot_grow_users(self, tiny_split):
        model = MultiVAE(tiny_split, seed=0)
        model.eval()
        service = OnlineRecommendationService(model, tiny_split)
        # Existing users ingest fine through the scorer path …
        before = service.recommend(0, k=3)
        service.ingest(np.asarray([0]), np.asarray([before[0]]))
        assert before[0] not in service.recommend(0, k=3)
        # … but unseen users have no embedding row to fall back to.
        with pytest.raises(ValueError, match="factorised"):
            service.ingest(np.asarray([tiny_split.num_users]), np.asarray([0]))

    def test_compact_preserves_certificate_counters(self, model):
        service = OnlineRecommendationService(model, candidate_mode="int8")
        service.top_k(np.arange(10), 5)
        stats_before = service.certificate_stats
        assert stats_before["users"] == 10
        service.compact()
        # Compaction is invisible to serving — monitoring counters included.
        assert service.certificate_stats == stats_before
