"""Tests for serving telemetry (repro.engine.observability).

Two invariants anchor the module: **instrumentation never changes
results** (serving with the live registry and a tracer installed is
bit-identical to serving with the no-op registry and no tracer), and
**telemetry never fails a request** (garbled trace meta from the wire
degrades to an untraced request, never an error).  Around them: the
histogram/percentile math is pinned against ``np.percentile``, traces
propagate through asyncio and the frontend's worker thread, and
``service.stats()`` is the one unified surface over every stats dict the
engine grew so far.
"""

import asyncio
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    AsyncRecommendationFrontend,
    FaultPlan,
    InferenceIndex,
    MetricsRegistry,
    NullMetricsRegistry,
    OnlineRecommendationService,
    RecommendationService,
    ShardServer,
    Tracer,
    current_trace,
    format_trace,
    get_tracer,
    metrics,
    save_snapshot,
    set_metrics,
    set_tracer,
    span,
    traced,
)
from repro.engine.observability import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    TraceContext,
    parse_wire_spans,
    percentile,
    shard_reply_trace,
    trace_request_fields,
)
from repro.models import BprMF

K = 6


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Fresh registry, no tracer, per test — and restore the globals after."""
    previous_registry = set_metrics(MetricsRegistry())
    previous_tracer = set_tracer(None)
    yield
    set_metrics(previous_registry)
    set_tracer(previous_tracer)


@pytest.fixture(scope="module")
def index(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return InferenceIndex.from_model(model, tiny_split)


@pytest.fixture(scope="module")
def snap_path(index, tmp_path_factory):
    return save_snapshot(tmp_path_factory.mktemp("obs") / "serve.snap",
                         index, candidate_modes=("int8",))


@pytest.fixture(scope="module")
def servers(snap_path):
    started = [ShardServer(snap_path, shard, 2).start() for shard in range(2)]
    yield started
    for server in started:
        server.close()


@pytest.fixture(scope="module")
def addresses(servers):
    return [f"{host}:{port}" for host, port in
            (server.address for server in servers)]


# --------------------------------------------------------------------- #
# Percentile + histogram math
# --------------------------------------------------------------------- #

class TestPercentile:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 37, 256, 1000])
    def test_matches_numpy_across_sizes(self, rng, size):
        samples = rng.normal(5.0, 2.0, size)
        for q in (0, 1, 25, 50, 75, 90, 99, 99.9, 100):
            assert percentile(samples, q) == \
                pytest.approx(float(np.percentile(samples, q)), abs=1e-12)

    def test_matches_numpy_on_skewed_distributions(self, rng):
        for samples in (rng.lognormal(0.0, 2.0, 500),   # heavy right tail
                        rng.exponential(0.001, 500),     # microsecond-ish
                        np.repeat([1.0, 2.0, 1000.0], [400, 95, 5]),
                        np.full(64, 3.25)):              # constant
            for q in (50, 90, 99):
                assert percentile(samples, q) == \
                    pytest.approx(float(np.percentile(samples, q)),
                                  rel=1e-12)

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestHistogram:
    def test_bucket_counts_land_in_the_right_slots(self):
        hist = Histogram("t_s", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 1e6):
            hist.observe(value)
        summary = hist.summary()
        assert summary["buckets"]["bounds"] == [1.0, 10.0, 100.0]
        # bucket i counts (bounds[i-1], bounds[i]]; the last slot overflows.
        assert summary["buckets"]["counts"] == [2, 2, 2, 1]
        assert summary["count"] == 7

    def test_window_keeps_the_most_recent_samples(self):
        hist = Histogram("t_s", buckets=COUNT_BUCKETS, window=8)
        for value in range(20):
            hist.observe(float(value))
        assert sorted(hist.samples()) == [float(v) for v in range(12, 20)]
        assert hist.count == 20  # lifetime count is not windowed

    def test_percentiles_are_exact_over_the_window(self, rng):
        hist = Histogram("t_s")
        samples = rng.lognormal(-7.0, 1.5, 1000)
        for value in samples:
            hist.observe(value)
        for q in (50, 90, 99):
            assert hist.percentile(q) == \
                pytest.approx(float(np.percentile(samples, q)), rel=1e-12)

    def test_empty_summary_and_validation(self):
        assert Histogram("t_s").summary() == {"count": 0}
        with pytest.raises(ValueError):
            Histogram("t_s", buckets=())

    def test_summary_statistics(self):
        hist = Histogram("t_s")
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.001
        assert summary["max"] == 0.003
        assert summary["mean"] == pytest.approx(0.002)
        assert summary["p50"] == pytest.approx(0.002)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a.calls")
        registry.inc("a.calls", 4)
        registry.set_gauge("a.depth", 7.5)
        registry.observe("a.latency_s", 0.25)
        assert registry.counter("a.calls").value == 5
        assert registry.gauge("a.depth").value == 7.5
        assert registry.histogram("a.latency_s").count == 1

    def test_instruments_are_singletons_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")

    def test_snapshot_is_json_serialisable_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b.two")
        registry.inc("a.one")
        registry.observe("c.lat_s", 0.001)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # numpy leakage would raise here
        assert snapshot["enabled"] is True
        assert list(snapshot["counters"]) == ["a.one", "b.two"]
        assert snapshot["histograms"]["c.lat_s"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_null_registry_does_no_work(self):
        null = NullMetricsRegistry()
        null.inc("a")
        null.set_gauge("b", 1.0)
        null.observe("c_s", 0.1)
        with null.timer("d_s"):
            pass
        assert null.snapshot() == {"enabled": False, "counters": {},
                                   "gauges": {}, "histograms": {}}

    def test_set_metrics_swaps_the_global(self):
        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            assert metrics() is mine
        finally:
            assert set_metrics(previous) is mine

    def test_timer_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t_s"):
            pass
        hist = registry.histogram("t_s")
        assert hist.count == 1
        assert 0.0 <= hist.samples()[0] < 1.0

    def test_counter_and_gauge_primitives(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        gauge = Gauge("g")
        gauge.set(2)
        assert gauge.value == 2.0


# --------------------------------------------------------------------- #
# Tracing primitives
# --------------------------------------------------------------------- #

class TestTracer:
    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            trace = TraceContext(f"req{i}")
            trace.finish()
            tracer.record(trace)
        names = [trace.root.name for trace in tracer.traces]
        assert names == ["req7", "req8", "req9"]

    def test_slowest_orders_by_duration(self):
        tracer = Tracer()
        for duration in (0.002, 0.009, 0.001, 0.005):
            trace = TraceContext(f"{duration}")
            trace.root.duration = duration
            tracer.record(trace)
        slowest = tracer.slowest(2)
        assert [t.root.name for t in slowest] == ["0.009", "0.005"]
        assert len(tracer.slowest(100)) == 4

    def test_capacity_validation_and_clear(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        tracer = Tracer()
        trace = TraceContext("x")
        trace.finish()
        tracer.record(trace)
        tracer.clear()
        assert tracer.traces == []

    def test_traced_is_a_noop_without_a_tracer(self):
        assert get_tracer() is None
        with traced("service.top_k"):
            assert current_trace() is None

    def test_traced_roots_and_nests(self):
        tracer = Tracer()
        set_tracer(tracer)
        with traced("outer"):
            trace = current_trace()
            assert trace is not None
            with traced("inner"), span("leaf"):
                assert current_trace() is trace
        assert current_trace() is None
        recorded = tracer.traces
        assert len(recorded) == 1
        names = [s.name for s in recorded[0].spans()]
        assert names == ["outer", "inner", "leaf"]
        assert all(s.duration is not None for s in recorded[0].spans())

    def test_span_outside_a_trace_is_a_noop(self):
        with span("orphan"):
            assert current_trace() is None

    def test_format_and_as_dict(self):
        tracer = Tracer()
        set_tracer(tracer)
        with traced("req"), span("stage", origin="shard"):
            pass
        trace = tracer.traces[0]
        text = format_trace(trace)
        assert "req" in text and "stage [shard]" in text
        document = trace.as_dict()
        json.dumps(document)
        assert document["trace_id"] == trace.trace_id
        assert document["root"]["children"][0]["name"] == "stage"

    def test_trace_ids_are_unique(self):
        assert len({TraceContext("x").trace_id for _ in range(64)}) == 64


class TestContextPropagation:
    def test_trace_follows_asyncio_tasks(self):
        tracer = Tracer()
        set_tracer(tracer)

        async def leaf(name):
            with span(name):
                await asyncio.sleep(0)

        async def request():
            with traced("request"):
                await asyncio.gather(leaf("a"), leaf("b"))

        asyncio.run(request())
        names = sorted(s.name for s in tracer.traces[0].spans())
        assert names == ["a", "b", "request"]

    def test_trace_crosses_the_frontend_worker_thread(self, index):
        """The frontend's copy_context() seam carries the trace into the
        scoring thread: the recorded tree must contain both frontend spans
        and the worker-side service.top_k span."""
        tracer = Tracer()
        set_tracer(tracer)
        service = RecommendationService(index=index)

        async def run():
            async with AsyncRecommendationFrontend(
                    service, batch_window_ms=1.0) as frontend:
                return await frontend.recommend(1, K)

        row = asyncio.run(run())
        assert row == service.top_k(
            np.array([1], dtype=np.int64), K)[0].tolist()
        roots = [t for t in tracer.traces
                 if t.root.name == "frontend.recommend"]
        assert roots, [t.root.name for t in tracer.traces]
        names = {s.name for s in roots[0].spans()}
        assert "frontend.flush" in names
        assert "service.top_k" in names  # observed from the worker thread
        service.close()

    def test_worker_thread_without_copied_context_stays_untraced(self):
        """A bare thread (no copied context) must not inherit the trace."""
        tracer = Tracer()
        set_tracer(tracer)
        seen = []
        with traced("request"):
            thread = threading.Thread(
                target=lambda: seen.append(current_trace()))
            thread.start()
            thread.join()
        assert seen == [None]


# --------------------------------------------------------------------- #
# Wire-protocol trace meta
# --------------------------------------------------------------------- #

class TestWireTraceMeta:
    def test_request_fields_roundtrip(self):
        assert trace_request_fields(None) == {}
        trace = TraceContext("req")
        fields = trace_request_fields(trace)
        assert fields == {"trace": {"id": trace.trace_id}}
        reply = shard_reply_trace(fields, shard_id=3, kind="top_k",
                                  duration=0.25)
        spans = parse_wire_spans(reply, trace.trace_id)
        assert [s.name for s in spans] == ["shard3.top_k"]
        assert spans[0].origin == "shard"
        assert spans[0].duration == 0.25

    @pytest.mark.parametrize("request_fields", [
        {},                                   # untraced request
        {"trace": None},
        {"trace": "garbage"},
        {"trace": {"id": 17}},
        {"trace": {"id": ""}},
        {"trace": {}},
    ])
    def test_garbled_request_meta_means_untraced_reply(self, request_fields):
        assert shard_reply_trace(request_fields, shard_id=0, kind="top_k",
                                 duration=0.1) == {}

    @pytest.mark.parametrize("reply_fields", [
        {},
        {"trace": "nope"},
        {"trace": {"id": "other"}},           # id mismatch
        {"trace": {"id": "tid", "spans": "oops"}},
        {"trace": {"id": "tid", "spans": [{"name": "x"}]}},  # no duration
        {"trace": {"id": "tid", "spans": [{"duration_s": "NaNsense",
                                           "name": "x"}]}},
        {"trace": {"id": "tid", "spans": [None]}},
    ])
    def test_garbled_reply_meta_degrades_to_no_spans(self, reply_fields):
        assert parse_wire_spans(reply_fields, "tid") == []


class TestRemoteTracePropagation:
    def test_router_trace_contains_shard_server_spans(self, snap_path,
                                                      addresses):
        tracer = Tracer()
        set_tracer(tracer)
        users = np.arange(10, dtype=np.int64)
        with RecommendationService(snapshot=snap_path, executor="remote",
                                   shard_addresses=addresses) as service:
            service.top_k(users, K)
        assert tracer.traces
        trace = tracer.traces[-1]
        shard_spans = [s for s in trace.spans() if s.origin == "shard"]
        assert len(shard_spans) == 2  # one per shard, stitched over the wire
        assert sorted(s.name for s in shard_spans) == \
            ["shard0.top_k", "shard1.top_k"]
        assert all(s.duration is not None and s.duration >= 0
                   for s in shard_spans)

    def test_candidate_requests_are_traced_too(self, snap_path, addresses):
        tracer = Tracer()
        set_tracer(tracer)
        users = np.arange(6, dtype=np.int64)
        with RecommendationService(snapshot=snap_path, executor="remote",
                                   shard_addresses=addresses,
                                   candidate_mode="int8") as service:
            service.top_k(users, K)
        names = {s.name for t in tracer.traces for s in t.spans()}
        assert "shard0.candidates" in names
        assert "shard1.candidates" in names

    def test_untraced_remote_requests_still_serve(self, snap_path,
                                                  addresses):
        # No tracer installed: requests carry no trace meta and the reply
        # parser never runs — serving is unaffected.
        assert get_tracer() is None
        users = np.arange(8, dtype=np.int64)
        with RecommendationService(snapshot=snap_path, executor="remote",
                                   shard_addresses=addresses) as service, \
                RecommendationService(snapshot=snap_path) as oracle:
            assert np.array_equal(service.top_k(users, K),
                                  oracle.top_k(users, K))


# --------------------------------------------------------------------- #
# Unified stats surface
# --------------------------------------------------------------------- #

UNIFIED_KEYS = {"service", "cache", "certificates", "health", "online",
                "wal", "frontend", "faults", "metrics"}


class TestUnifiedStats:
    def test_plain_service_stats_shape(self, index):
        with RecommendationService(index=index) as service:
            service.top_k(np.arange(4, dtype=np.int64), K)
            stats = service.stats()
        assert set(stats) == UNIFIED_KEYS
        assert stats["service"]["num_users"] == index.num_users
        assert stats["service"]["executor"] == "SerialExecutor"
        assert stats["online"] is None and stats["wal"] is None
        assert stats["frontend"] is None and stats["faults"] is None
        assert stats["health"] is None
        assert stats["cache"] == service.cache_stats()      # old accessor
        assert stats["certificates"] == service.certificate_stats
        assert stats["metrics"]["counters"]["service.top_k_calls"] >= 1
        json.dumps(stats)  # the whole surface is JSON-ready

    def test_online_service_fills_online_and_wal(self, snap_path, tmp_path):
        wal_path = tmp_path / "ingest.wal"
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=wal_path) as service:
            service.ingest(np.array([0, 1], dtype=np.int64),
                           np.array([3, 4], dtype=np.int64))
            stats = service.stats()
            assert stats["online"] == service.online_stats  # old accessor
            assert stats["wal"] == service.wal_stats        # old accessor
            assert stats["wal"]["records"] == 1
            assert stats["metrics"]["counters"]["wal.appends"] == 1
            assert stats["metrics"]["counters"]["online.ingest_calls"] == 1

    def test_frontend_appears_once_attached(self, index):
        service = RecommendationService(index=index)
        assert service.stats()["frontend"] is None

        async def run():
            async with AsyncRecommendationFrontend(
                    service, batch_window_ms=1.0) as frontend:
                await frontend.recommend(0, K)
                return service.stats()

        stats = asyncio.run(run())
        assert stats["frontend"]["requests"] == 1
        assert stats["metrics"]["counters"]["frontend.requests"] == 1
        service.close()

    def test_fault_plans_surface_fired_events(self, snap_path, tmp_path):
        plan = FaultPlan(seed=1).inject("wal.append", "delay", at=0,
                                        seconds=0.0)
        with OnlineRecommendationService(snapshot=snap_path,
                                         wal_path=tmp_path / "f.wal",
                                         wal_fault_plan=plan) as service:
            service.ingest(np.array([0], dtype=np.int64),
                           np.array([1], dtype=np.int64))
            faults = service.stats()["faults"]
        assert faults["fired_events"] == [
            {"site": "wal.append", "index": 0, "kind": "delay"}]
        assert faults["fired"] == 1

    def test_remote_service_stats_hold_health(self, snap_path, addresses):
        with RecommendationService(snapshot=snap_path, executor="remote",
                                   shard_addresses=addresses) as service:
            service.top_k(np.arange(4, dtype=np.int64), K)
            stats = service.stats()
        assert stats["health"]["num_shards"] == 2
        assert stats["health"] == service.health_stats()    # old accessor
        assert stats["service"]["executor"] == "RemoteExecutor"


# --------------------------------------------------------------------- #
# Results neutrality + hot-path hygiene
# --------------------------------------------------------------------- #

class TestResultsNeutral:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"num_shards": 2},
        {"candidate_mode": "int8"},
        {"num_shards": 2, "candidate_mode": "int8", "parallel": True},
    ])
    def test_serving_is_bit_identical_on_vs_off(self, index, kwargs):
        users = np.arange(index.num_users, dtype=np.int64)
        set_metrics(MetricsRegistry())
        set_tracer(Tracer())
        with RecommendationService(index=index, **kwargs) as service:
            with_telemetry = service.top_k(users, K)
        set_metrics(NullMetricsRegistry())
        set_tracer(None)
        with RecommendationService(index=index, **kwargs) as service:
            without = service.top_k(users, K)
        assert np.array_equal(with_telemetry, without)

    def test_ingest_is_bit_identical_on_vs_off(self, snap_path):
        events = (np.array([0, 1, 2], dtype=np.int64),
                  np.array([5, 6, 7], dtype=np.int64))
        probe = np.arange(10, dtype=np.int64)
        set_metrics(MetricsRegistry())
        with OnlineRecommendationService(snapshot=snap_path) as service:
            service.ingest(*events)
            with_telemetry = service.top_k(probe, K)
        set_metrics(NullMetricsRegistry())
        with OnlineRecommendationService(snapshot=snap_path) as service:
            service.ingest(*events)
            without = service.top_k(probe, K)
        assert np.array_equal(with_telemetry, without)


def test_engine_never_calls_wall_clock_time():
    """Hot-path hygiene (also a CI grep): engine timing must come from
    ``time.perf_counter()``/``time.monotonic()`` — ``time.time()`` can step
    backwards under NTP and would poison histograms and traces."""
    engine_dir = Path(__file__).resolve().parents[2] / "src/repro/engine"
    offenders = [path.name for path in sorted(engine_dir.glob("*.py"))
                 if "time.time()" in path.read_text()]
    assert offenders == [], (
        f"time.time() found in {offenders}; use time.perf_counter()")
