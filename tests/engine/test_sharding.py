"""Tests for item-partitioned sharded serving (repro.engine.sharding)."""

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    ItemShard,
    RecommendationService,
    SerialExecutor,
    ShardedInferenceIndex,
    ThreadedExecutor,
    UserItemIndex,
    partition_items,
)
from repro.models import BprMF, MultiVAE


@pytest.fixture()
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


@pytest.fixture()
def index(model, tiny_split):
    return InferenceIndex.from_model(model, tiny_split)


def safe_masked_k(index):
    """Largest k whose masked top-k never reaches the -inf tail.

    Beyond it the lists pad with exact-tied -inf entries whose order is
    arbitrary on the unsharded path, so bit-exact comparisons stop there.
    """
    return index.num_items - int(index.exclusion.counts().max())


class TestPartitionItems:
    def test_contiguous_blocks(self):
        parts = partition_items(10, 4, "contiguous")
        assert [list(p) for p in parts] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_strided_deal(self):
        parts = partition_items(7, 3, "strided")
        assert [list(p) for p in parts] == [[0, 3, 6], [1, 4], [2, 5]]

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    def test_non_divisible_catalogue_leaves_empty_shards(self, policy):
        parts = partition_items(5, 7, policy)
        assert len(parts) == 7
        assert sum(p.size for p in parts) == 5
        assert sum(p.size == 0 for p in parts) == 2

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    @pytest.mark.parametrize("num_items,num_shards",
                             [(40, 1), (40, 7), (40, 40), (3, 8), (0, 3)])
    def test_exact_disjoint_cover(self, policy, num_items, num_shards):
        parts = partition_items(num_items, num_shards, policy)
        assert len(parts) == num_shards
        merged = np.concatenate(parts) if parts else np.empty(0, np.int64)
        assert sorted(merged.tolist()) == list(range(num_items))
        for part in parts:  # each shard's ids arrive sorted
            assert np.array_equal(part, np.sort(part))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_items(10, 0)
        with pytest.raises(ValueError):
            partition_items(10, 2, policy="roundrobin")


class TestItemShard:
    def test_locate_maps_owned_items_only(self, index):
        ids = np.array([3, 7, 11], dtype=np.int64)
        shard = ItemShard(0, ids, index.item_embeddings[ids])
        owned, local = shard.locate(np.array([3, 4, 11, 7, 0]))
        np.testing.assert_array_equal(owned, [True, False, True, True, False])
        assert list(local[owned]) == [0, 2, 1]

    def test_empty_shard_yields_zero_width_candidates(self, index):
        empty = np.empty(0, dtype=np.int64)
        shard = ItemShard(0, empty, index.item_embeddings[empty])
        users = np.arange(4)
        ids, scores = shard.local_top_k(index.user_embeddings[users], users,
                                        k=5, exclude_train=False)
        assert ids.shape == (4, 0) and scores.shape == (4, 0)
        owned, _ = shard.locate(np.array([0, 1]))
        assert not owned.any()

    def test_local_exclusion_matches_parent_slice(self, index, tiny_split):
        sharded = ShardedInferenceIndex.from_index(index, 3, policy="strided")
        parent = index.exclusion
        for shard in sharded.shards:
            for user in range(0, tiny_split.num_users, 7):
                expected = [item for item in parent.items_for(user)
                            if item in set(shard.item_ids.tolist())]
                got = shard.item_ids[shard.exclusion.items_for(user)]
                assert list(got) == expected

    def test_mismatched_embedding_slice_raises(self, index):
        with pytest.raises(ValueError):
            ItemShard(0, np.array([0, 1]), index.item_embeddings[:3])


class TestShardedParity:
    """The acceptance gate: sharded == unsharded wherever scores are distinct."""

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_masked_top_k_parity(self, index, policy, num_shards):
        users = np.arange(index.num_users)
        k = safe_masked_k(index)
        sharded = ShardedInferenceIndex.from_index(index, num_shards,
                                                   policy=policy)
        np.testing.assert_array_equal(index.top_k(users, k),
                                      sharded.top_k(users, k))

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_k_larger_than_any_shard(self, index, policy, num_shards):
        """k > items-per-shard: every shard returns all it has, merge is exact."""
        users = np.arange(index.num_users)
        k = index.num_items  # larger than every shard for num_shards >= 2
        sharded = ShardedInferenceIndex.from_index(index, num_shards,
                                                   policy=policy)
        result = sharded.top_k(users, k, exclude_train=False)
        assert result.shape == (users.size, index.num_items)  # no over-return
        np.testing.assert_array_equal(
            index.top_k(users, k, exclude_train=False), result)

    def test_k_beyond_catalogue_clamps_like_unsharded(self, index):
        users = np.arange(5)
        sharded = ShardedInferenceIndex.from_index(index, 4)
        result = sharded.top_k(users, index.num_items + 100, exclude_train=False)
        assert result.shape == (5, index.num_items)
        np.testing.assert_array_equal(
            index.top_k(users, index.num_items + 100, exclude_train=False),
            result)

    def test_more_shards_than_items(self, index):
        """Empty shards (S > catalogue) contribute nothing and break nothing."""
        users = np.arange(index.num_users)
        sharded = ShardedInferenceIndex.from_index(index, index.num_items + 5)
        assert any(s.num_local_items == 0 for s in sharded.shards)
        np.testing.assert_array_equal(index.top_k(users, 10),
                                      sharded.top_k(users, 10))

    def test_each_row_has_unique_items(self, index):
        sharded = ShardedInferenceIndex.from_index(index, 7, policy="strided")
        result = sharded.top_k(np.arange(index.num_users), index.num_items,
                               exclude_train=False)
        for row in result:  # no item fabricated or duplicated by the merge
            assert len(set(row.tolist())) == result.shape[1]

    def test_score_pairs_parity_and_range_check(self, index, rng):
        users = rng.integers(0, index.num_users, 64)
        items = rng.integers(0, index.num_items, 64)
        sharded = ShardedInferenceIndex.from_index(index, 5, policy="strided")
        np.testing.assert_array_equal(index.score_pairs(users, items),
                                      sharded.score_pairs(users, items))
        with pytest.raises(IndexError):
            sharded.score_pairs(users[:1], np.array([index.num_items]))

    def test_recommend_matches_unsharded(self, index):
        sharded = ShardedInferenceIndex.from_index(index, 3)
        assert sharded.recommend(4, k=6) == index.recommend(4, k=6)


class TestMergeDeterminism:
    def test_ties_break_by_ascending_item_id(self):
        ids = np.array([[9, 2, 5], [1, 8, 0]])
        scores = np.array([[1.0, 1.0, 2.0], [3.0, 3.0, 3.0]])
        merged = ShardedInferenceIndex._merge(ids, scores, width=3)
        np.testing.assert_array_equal(merged, [[5, 2, 9], [0, 1, 8]])

    def test_neg_inf_candidates_sort_last(self):
        ids = np.array([[0, 1, 2]])
        scores = np.array([[-np.inf, 5.0, -np.inf]])
        merged = ShardedInferenceIndex._merge(ids, scores, width=3)
        np.testing.assert_array_equal(merged, [[1, 0, 2]])


class TestExecutors:
    def test_serial_runs_in_order(self):
        calls = []
        tasks = [lambda i=i: calls.append(i) or i for i in range(5)]
        assert SerialExecutor().run(tasks) == [0, 1, 2, 3, 4]
        assert calls == [0, 1, 2, 3, 4]

    def test_threaded_preserves_task_order(self):
        executor = ThreadedExecutor(max_workers=4)
        tasks = [lambda i=i: i * i for i in range(8)]
        assert executor.run(tasks) == [i * i for i in range(8)]
        executor.close()
        assert executor._pool is None  # close releases the pool

    def test_threaded_single_task_runs_inline(self):
        executor = ThreadedExecutor()
        assert executor.run([lambda: 42]) == [42]
        assert executor._pool is None  # no pool spun up for one task
        executor.close()

    def test_threaded_fanout_parity(self, index):
        users = np.arange(index.num_users)
        serial = ShardedInferenceIndex.from_index(index, 4)
        threaded = ShardedInferenceIndex.from_index(
            index, 4, executor=ThreadedExecutor(max_workers=4))
        np.testing.assert_array_equal(serial.top_k(users, 10),
                                      threaded.top_k(users, 10))
        threaded.close()


class TestValidation:
    def test_requires_factorized_index(self, tiny_split):
        vae = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        vae.eval()
        scorer_index = InferenceIndex.from_model(vae, tiny_split)
        assert not scorer_index.is_factorized
        with pytest.raises(ValueError, match="factorised"):
            ShardedInferenceIndex.from_index(scorer_index, 2)

    def test_top_k_argument_validation(self, index):
        sharded = ShardedInferenceIndex.from_index(index, 2)
        with pytest.raises(ValueError):
            sharded.top_k(np.arange(3), 0)
        with pytest.raises(ValueError):
            sharded.top_k(np.arange(4).reshape(2, 2), 3)

    def test_exclude_train_without_exclusion_raises(self, index):
        bare = InferenceIndex(index.num_users, index.num_items,
                              user_embeddings=index.user_embeddings,
                              item_embeddings=index.item_embeddings)
        sharded = ShardedInferenceIndex.from_index(bare, 2)
        with pytest.raises(ValueError):
            sharded.top_k(np.arange(3), 5)
        np.testing.assert_array_equal(
            sharded.top_k(np.arange(3), 5, exclude_train=False),
            bare.top_k(np.arange(3), 5, exclude_train=False))

    def test_shards_must_cover_catalogue(self, index):
        ids = np.arange(3, dtype=np.int64)
        shard = ItemShard(0, ids, index.item_embeddings[ids])
        with pytest.raises(ValueError, match="cover"):
            ShardedInferenceIndex(index.num_users, index.num_items,
                                  index.user_embeddings, [shard])


class TestServiceIntegration:
    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_service_routes_through_shards(self, model, tiny_split, num_shards):
        users = np.arange(tiny_split.num_users)
        plain = RecommendationService(model)
        sharded = RecommendationService(model, num_shards=num_shards)
        assert sharded.sharded is not None
        assert sharded.sharded.num_shards == num_shards
        np.testing.assert_array_equal(plain.top_k(users, 8),
                                      sharded.top_k(users, 8))

    def test_service_parallel_executor(self, model, tiny_split):
        users = np.arange(tiny_split.num_users)
        sharded = RecommendationService(model, num_shards=4, parallel=True)
        plain = RecommendationService(model)
        np.testing.assert_array_equal(plain.top_k(users, 8),
                                      sharded.top_k(users, 8))
        sharded.close()

    def test_single_shard_stays_on_plain_path(self, model):
        service = RecommendationService(model, num_shards=1)
        assert service.sharded is None

    def test_invalid_shard_count(self, model):
        with pytest.raises(ValueError):
            RecommendationService(model, num_shards=0)

    def test_parallel_without_shards_rejected(self, model):
        """parallel=True on one shard is a silent no-op — refuse it loudly."""
        with pytest.raises(ValueError, match="num_shards"):
            RecommendationService(model, parallel=True)

    def test_refresh_reshards_new_snapshot(self, model, tiny_split):
        service = RecommendationService(model, num_shards=3)
        executor = service.sharded.executor
        model.user_factors.data[:] = -model.user_factors.data
        service.refresh()
        # The sharded backend was rebuilt from the new snapshot (same
        # executor, fresh shard slices) and serves the new weights.
        assert service.sharded.executor is executor
        plain = RecommendationService(model)
        users = np.arange(tiny_split.num_users)
        np.testing.assert_array_equal(plain.top_k(users, 8),
                                      service.top_k(users, 8))

    def test_batched_requests_cross_shard_blocks(self, model, tiny_split):
        users = np.arange(tiny_split.num_users)
        small = RecommendationService(model, num_shards=4, batch_size=7)
        large = RecommendationService(model, num_shards=4, batch_size=10_000)
        np.testing.assert_array_equal(small.top_k(users, 5),
                                      large.top_k(users, 5))

    def test_repr_mentions_sharding(self, model):
        service = RecommendationService(model, num_shards=3, parallel=True)
        assert "shards=3" in repr(service)
        service.close()
