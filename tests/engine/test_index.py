"""Tests for UserItemIndex / InferenceIndex (vectorised masking and top-K)."""

import numpy as np
import pytest

from repro.engine import InferenceIndex, UserItemIndex, train_exclusion_index
from repro.engine.index import top_k_indices
from repro.models import BprMF, LightGCN, MultiVAE


class TestUserItemIndex:
    def test_items_sorted_and_deduped(self):
        index = UserItemIndex(3, 5, users=[1, 1, 1, 0], items=[4, 2, 4, 0])
        np.testing.assert_array_equal(index.items_for(0), [0])
        np.testing.assert_array_equal(index.items_for(1), [2, 4])
        np.testing.assert_array_equal(index.items_for(2), [])
        assert index.nnz == 3

    def test_counts_and_active_users(self):
        index = UserItemIndex(4, 6, users=[0, 2, 2], items=[1, 3, 5])
        np.testing.assert_array_equal(index.counts(), [1, 0, 2, 0])
        np.testing.assert_array_equal(index.counts(np.array([2, 0])), [2, 1])
        np.testing.assert_array_equal(index.users_with_items(), [0, 2])

    def test_flat_pairs_cover_batch(self):
        index = UserItemIndex(4, 6, users=[0, 2, 2], items=[1, 3, 5])
        rows, cols = index.flat_pairs(np.array([2, 1, 0]))
        np.testing.assert_array_equal(rows, [0, 0, 2])
        np.testing.assert_array_equal(cols, [3, 5, 1])

    def test_mask_matches_per_user_loop(self, tiny_split, rng):
        """The satellite guarantee: flat-index masking == per-user masking."""
        index = train_exclusion_index(tiny_split)
        positives = tiny_split.train_positive_sets()
        users = rng.choice(tiny_split.num_users, size=17, replace=False)

        scores = rng.normal(size=(users.size, tiny_split.num_items))
        expected = scores.copy()
        for row, user in enumerate(users):
            seen = positives[int(user)]
            if seen:
                expected[row, list(seen)] = -np.inf

        index.mask(scores, users)
        np.testing.assert_array_equal(scores, expected)

    def test_membership_matches_sets(self, tiny_split):
        index = train_exclusion_index(tiny_split)
        positives = tiny_split.train_positive_sets()
        users = np.arange(tiny_split.num_users)
        matrix = index.membership(users)
        for user in users:
            assert set(np.nonzero(matrix[user])[0]) == positives[int(user)]

    def test_split_cache_shared(self, tiny_split):
        assert train_exclusion_index(tiny_split) is train_exclusion_index(tiny_split)
        assert (UserItemIndex.from_split(tiny_split, "test")
                is UserItemIndex.from_split(tiny_split, "test"))

    def test_invalid_partition_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            UserItemIndex.from_split(tiny_split, "nope")

    def test_empty_batch(self):
        index = UserItemIndex(3, 4, users=[], items=[])
        rows, cols = index.flat_pairs(np.array([0, 1], dtype=np.int64))
        assert rows.size == 0 and cols.size == 0
        scores = np.ones((2, 4))
        index.mask(scores, np.array([0, 1]))
        np.testing.assert_array_equal(scores, np.ones((2, 4)))

    def test_flat_keys_sorted_and_complete(self, tiny_split):
        index = train_exclusion_index(tiny_split)
        keys = index.flat_keys
        assert keys.size == index.nnz
        assert np.all(np.diff(keys) > 0)  # strictly sorted unique pairs
        expected = set()
        for user, item in zip(tiny_split.train_users, tiny_split.train_items):
            expected.add(int(user) * tiny_split.num_items + int(item))
        assert set(keys.tolist()) == expected

    def test_contains_matches_sets(self, tiny_split, rng):
        index = train_exclusion_index(tiny_split)
        positives = tiny_split.train_positive_sets()
        users = rng.integers(tiny_split.num_users, size=40)
        candidates = rng.integers(tiny_split.num_items, size=(40, 7))
        result = index.contains(users[:, None], candidates)
        assert result.shape == (40, 7)
        for row, user in enumerate(users):
            for col in range(7):
                expected = int(candidates[row, col]) in positives[int(user)]
                assert result[row, col] == expected

    def test_contains_searchsorted_fallback_matches_dense(self):
        """Id spaces above the dense-table limit use the flat-key search."""
        users = [0, 1, 9000, 9000]
        items = [5, 9999, 0, 123]
        big = UserItemIndex(10_000, 10_000, users=users, items=items)  # 1e8 cells
        assert big._dense_membership() is None
        probe_users = np.array([0, 0, 1, 9000, 9000, 42])
        probe_items = np.array([5, 6, 9999, 123, 124, 42])
        expected = np.array([True, False, True, True, False, False])
        np.testing.assert_array_equal(big.contains(probe_users, probe_items), expected)

    def test_contains_rejects_out_of_range_ids_in_both_branches(self):
        small = UserItemIndex(3, 4, users=[0, 1], items=[1, 0])  # dense table
        big = UserItemIndex(10_000, 10_000, users=[0, 1], items=[5, 0])  # flat keys
        for index in (small, big):
            with pytest.raises(IndexError):
                index.contains(np.array([0]), np.array([index.num_items]))
            with pytest.raises(IndexError):
                index.contains(np.array([0]), np.array([-1]))
            with pytest.raises(IndexError):
                index.contains(np.array([index.num_users]), np.array([0]))

    def test_contains_on_empty_index(self):
        index = UserItemIndex(3, 4, users=[], items=[])
        result = index.contains(np.array([[0], [1]]), np.array([[1, 2], [0, 3]]))
        assert result.shape == (2, 2)
        assert not result.any()


class TestTopKIndices:
    def test_sorted_by_score(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        np.testing.assert_array_equal(top_k_indices(scores, 3)[0], [1, 3, 2])

    def test_k_capped_at_items(self):
        scores = np.array([[0.3, 0.1]])
        assert top_k_indices(scores, 10).shape == (1, 2)


class TestInferenceIndex:
    def test_factorized_matches_score_users(self, tiny_split):
        model = LightGCN(tiny_split, embedding_dim=8, num_layers=2, seed=0)
        model.eval()
        index = InferenceIndex.from_model(model)
        assert index.is_factorized
        users = np.array([0, 3, 5])
        np.testing.assert_allclose(index.scores(users), model.score_users(users))

    def test_scorer_fallback(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        index = InferenceIndex.from_model(model)
        assert not index.is_factorized
        users = np.array([1, 2])
        np.testing.assert_allclose(index.scores(users), model.score_users(users))

    def test_masked_scores_match_per_user_masking(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model)
        users = np.arange(min(12, tiny_split.num_users))

        expected = np.asarray(model.score_users(users), dtype=np.float64).copy()
        positives = tiny_split.train_positive_sets()
        for row, user in enumerate(users):
            seen = positives[int(user)]
            if seen:
                expected[row, list(seen)] = -np.inf

        np.testing.assert_allclose(index.scores(users, mask_train=True), expected)

    def test_embeddings_are_frozen_copies(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        index = InferenceIndex.from_model(model)
        before = index.scores(np.array([0]))
        model.user_factors.data += 100.0  # training continues...
        np.testing.assert_allclose(index.scores(np.array([0])), before)

    def test_score_pairs(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model)
        users = np.array([0, 1, 2])
        items = np.array([3, 0, 5])
        full = model.score_users(users)
        np.testing.assert_allclose(index.score_pairs(users, items),
                                   full[np.arange(3), items])

    def test_top_k_excludes_train_items(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model)
        positives = tiny_split.train_positive_sets()
        top = index.top_k(np.arange(tiny_split.num_users), k=5)
        for user, row in enumerate(top):
            assert not (set(int(i) for i in row) & positives[user])

    def test_requires_scorer_or_embeddings(self):
        with pytest.raises(ValueError):
            InferenceIndex(3, 4)
        with pytest.raises(ValueError):
            InferenceIndex(3, 4, user_embeddings=np.zeros((3, 2)))

    def test_item_norms_cached_and_correct(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model)
        norms = index.item_norms
        np.testing.assert_allclose(
            norms, np.linalg.norm(index.item_embeddings, axis=1))
        assert index.item_norms is norms  # one build per snapshot
        assert not norms.flags.writeable

    def test_item_norms_require_factorized_index(self, tiny_split):
        model = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        index = InferenceIndex.from_model(model)
        with pytest.raises(ValueError, match="factorised"):
            index.item_norms

    def test_rescore_matches_full_scores(self, tiny_split, rng):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model)
        users = np.array([0, 2, 5])
        lists = rng.integers(0, tiny_split.num_items, size=(3, 6))
        expected = np.take_along_axis(index.scores(users), lists, axis=1)
        np.testing.assert_allclose(index.rescore(users, lists), expected)
        with pytest.raises(ValueError):
            index.rescore(users, lists[:2])

    def test_rescore_scorer_fallback(self, tiny_split, rng):
        model = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        model.eval()
        index = InferenceIndex.from_model(model)
        users = np.array([1, 3])
        lists = rng.integers(0, tiny_split.num_items, size=(2, 4))
        expected = np.take_along_axis(index.scores(users), lists, axis=1)
        np.testing.assert_allclose(index.rescore(users, lists), expected)

    def test_dtype_configurable(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        index = InferenceIndex.from_model(model, dtype=np.float32)
        assert index.scores(np.array([0])).dtype == np.float32

    def test_masking_never_corrupts_scorer_owned_arrays(self, tiny_split):
        """A scorer returning its own cached matrix must not get -inf
        written back into it by a masked scores() call."""
        cached = np.zeros((tiny_split.num_users, tiny_split.num_items))

        class _CachedScorer:
            split = tiny_split

            def score_users(self, users):
                return cached  # the scorer's own array, shared across calls

        index = InferenceIndex.from_model(_CachedScorer(), tiny_split)
        users = np.arange(tiny_split.num_users)
        masked = index.scores(users, mask_train=True)
        assert np.isneginf(masked).any()
        assert np.isfinite(cached).all(), "scorer's cached array was corrupted"


class TestTopKScoreBuffer:
    """The perf satellite: ``top_k`` reuses one preallocated score buffer."""

    @pytest.fixture()
    def index(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        return InferenceIndex.from_model(model)

    def test_no_allocation_growth_across_calls(self, index, tiny_split):
        users = np.arange(tiny_split.num_users)
        index.top_k(users, 5)
        buffer = index._score_buffer
        assert buffer.shape == (tiny_split.num_users, tiny_split.num_items)
        for _ in range(10):
            index.top_k(users, 5)
            index.top_k(users[:3], 2)  # smaller batches reuse a prefix view
            assert index._score_buffer is buffer, (
                "top_k must not reallocate its score buffer between calls")

    def test_buffer_grows_once_for_larger_batches(self, index):
        index.top_k(np.arange(4), 3)
        small = index._score_buffer
        index.top_k(np.arange(9), 3)
        grown = index._score_buffer
        assert grown is not small and grown.shape[0] == 9
        index.top_k(np.arange(6), 3)
        assert index._score_buffer is grown

    def test_buffered_path_matches_scores_oracle(self, index, tiny_split):
        users = np.arange(tiny_split.num_users)
        expected = top_k_indices(index.scores(users, mask_train=True), 5)
        np.testing.assert_array_equal(index.top_k(users, 5), expected)
        # Masking -inf into the buffer must not leak into the next call.
        unmasked = top_k_indices(index.scores(users), 5)
        np.testing.assert_array_equal(
            index.top_k(users, 5, exclude_train=False), unmasked)

    def test_top_k_without_exclusion_still_raises(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=1)
        model.eval()
        index = InferenceIndex.from_model(model, exclusion=None)
        index.exclusion = None
        with pytest.raises(ValueError, match="exclusion"):
            index.top_k(np.arange(3), 2)

    def test_oversized_batches_never_pin_a_giant_buffer(self, index):
        from repro.engine.index import _SCORE_BUFFER_MAX_ROWS
        index.top_k(np.arange(5), 3)
        small = index._score_buffer
        # A score-everyone batch (user ids may repeat) must not grow the
        # resident buffer past the cap — it takes the fresh-allocation path.
        huge = np.zeros(_SCORE_BUFFER_MAX_ROWS + 7, dtype=np.int64)
        expected = top_k_indices(index.scores(huge, mask_train=True), 3)
        np.testing.assert_array_equal(index.top_k(huge, 3), expected)
        assert index._score_buffer is small

    def test_concurrent_top_k_calls_stay_correct(self, index, tiny_split):
        """Racing threads must never corrupt each other's shared buffer."""
        import threading

        users_a = np.arange(tiny_split.num_users)
        users_b = users_a[::-1].copy()
        expected = {
            "a": top_k_indices(index.scores(users_a, mask_train=True), 5),
            "b": top_k_indices(index.scores(users_b, mask_train=True), 5),
        }
        failures = []
        barrier = threading.Barrier(2)

        def hammer(label, users):
            barrier.wait()
            for _ in range(50):
                if not np.array_equal(index.top_k(users, 5), expected[label]):
                    failures.append(label)
                    return

        threads = [threading.Thread(target=hammer, args=("a", users_a)),
                   threading.Thread(target=hammer, args=("b", users_b))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
