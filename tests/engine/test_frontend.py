"""Tests for the async micro-batching front-end (coalescing, deadlines,
backpressure/load-shedding, ingest pooling, exact parity)."""

import asyncio
import time

import numpy as np
import pytest

from repro.engine import (
    AsyncRecommendationFrontend,
    OnlineRecommendationService,
    OverloadedError,
    RecommendationService,
)
from repro.models import BprMF


@pytest.fixture()
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


@pytest.fixture()
def service(model):
    return RecommendationService(model, cache_size=0)


def run(coroutine):
    return asyncio.run(coroutine)


def _slow_top_k(service, delay: float):
    """A wrapper making ``service.top_k`` slow (for queue-pressure tests)."""
    original = RecommendationService.top_k

    def wrapped(users, k, exclude_train=True):
        time.sleep(delay)
        return original(service, users, k, exclude_train=exclude_train)

    return wrapped


class TestParity:
    def test_single_request_matches_service(self, service, tiny_split):
        async def scenario():
            async with AsyncRecommendationFrontend(service) as frontend:
                return await frontend.recommend(0, 5)

        assert run(scenario()) == [int(i) for i in
                                   service.top_k(np.asarray([0]), 5)[0]]

    def test_concurrent_mixed_requests_bit_identical(self, service, tiny_split):
        requests = [(user % tiny_split.num_users, 3 + user % 4, user % 2 == 0)
                    for user in range(60)]

        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=16, batch_window_ms=20) as frontend:
                return await asyncio.gather(*[
                    frontend.recommend(u, k, exclude_train=x)
                    for u, k, x in requests])

        results = run(scenario())
        for (user, k, exclude), got in zip(requests, results):
            want = service.top_k(np.asarray([user]), k, exclude_train=exclude)
            assert got == [int(i) for i in want[0]]

    def test_sharded_candidate_service_parity(self, model, tiny_split):
        with RecommendationService(model, num_shards=4,
                                   candidate_mode="int8") as service:
            users = [u % tiny_split.num_users for u in range(24)]

            async def scenario():
                async with AsyncRecommendationFrontend(
                        service, max_batch_size=8,
                        batch_window_ms=20) as frontend:
                    return await asyncio.gather(*[
                        frontend.recommend(u, 5) for u in users])

            results = run(scenario())
            oracle = service.top_k(np.asarray(users, dtype=np.int64), 5)
            for got, want in zip(results, oracle):
                assert got == [int(i) for i in want]


class TestCoalescing:
    def test_full_burst_forms_one_capped_batch(self, service):
        async def scenario():
            # Window far beyond the test budget: only the size trigger can
            # flush, so finishing quickly proves the burst path works.
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=8, batch_window_ms=30_000,
                    ) as frontend:
                await asyncio.gather(*[frontend.recommend(u % 10, 5)
                                       for u in range(8)])
                return frontend.stats()

        start = time.perf_counter()
        stats = run(scenario())
        assert time.perf_counter() - start < 10.0
        assert stats["batches"] == 1
        assert stats["max_occupancy"] == 8
        assert stats["mean_occupancy"] == 8.0

    def test_batches_never_exceed_max_batch_size(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=8, batch_window_ms=50) as frontend:
                await asyncio.gather(*[frontend.recommend(u % 10, 5)
                                       for u in range(40)])
                return frontend.stats()

        stats = run(scenario())
        assert stats["batched_requests"] == 40
        assert stats["max_occupancy"] <= 8
        assert stats["batches"] >= 5

    def test_lone_request_served_by_deadline_not_batch_fill(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=1024,
                    batch_window_ms=40) as frontend:
                start = time.perf_counter()
                result = await frontend.recommend(1, 6)
                elapsed = time.perf_counter() - start
                return result, elapsed, frontend.stats()

        result, elapsed, stats = run(scenario())
        assert result == [int(i) for i in service.top_k(np.asarray([1]), 6)[0]]
        # Served by the deadline timer (~40ms), never waiting for 1024
        # co-requests; generous ceiling for slow CI machines.
        assert elapsed < 10.0
        assert stats["batches"] == 1 and stats["max_occupancy"] == 1

    def test_requests_group_by_k_and_exclusion(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=4, batch_window_ms=20) as frontend:
                await asyncio.gather(
                    *[frontend.recommend(u, 5) for u in range(4)],
                    *[frontend.recommend(u, 7) for u in range(4)],
                    *[frontend.recommend(u, 5, exclude_train=False)
                      for u in range(4)])
                return frontend.stats()

        stats = run(scenario())
        # Three signatures -> three separate (full) batches.
        assert stats["batches"] == 3
        assert stats["batched_requests"] == 12
        assert stats["max_occupancy"] == 4

    def test_cached_results_skip_the_queue(self, model):
        service = RecommendationService(model, cache_size=64)

        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=4, batch_window_ms=20) as frontend:
                first = await asyncio.gather(*[frontend.recommend(u, 5)
                                               for u in range(4)])
                batches_after_first = frontend.stats()["batches"]
                second = await asyncio.gather(*[frontend.recommend(u, 5)
                                                for u in range(4)])
                return first, second, batches_after_first, frontend.stats()

        first, second, batches_after_first, stats = run(scenario())
        assert first == second
        assert batches_after_first == 1
        assert stats["batches"] == 1  # round two served from the LRU
        assert stats["cache_hits"] == 4
        assert service.cache_stats()["hits"] == 4


class TestBackpressure:
    def test_reject_sheds_above_capacity_and_queue_stays_consistent(
            self, service, tiny_split):
        service.top_k = _slow_top_k(service, delay=0.05)

        async def scenario():
            frontend = AsyncRecommendationFrontend(
                service, max_batch_size=8, batch_window_ms=30_000,
                max_pending=8, shed="reject")
            results = await asyncio.gather(
                *[frontend.recommend(u % tiny_split.num_users, 5)
                  for u in range(30)],
                return_exceptions=True)
            # After the shed burst the queue must be fully consistent: no
            # stranded slots, and new requests serve exact results.  (The
            # huge window keeps the burst deterministic, so the follow-up is
            # flushed explicitly instead of waiting out the deadline.)
            assert frontend.pending == 0
            follow_task = asyncio.ensure_future(frontend.recommend(2, 5))
            await asyncio.sleep(0)
            await frontend.flush()
            follow_up = await follow_task
            stats = frontend.stats()
            await frontend.close()
            return results, follow_up, stats

        results, follow_up, stats = run(scenario())
        served = [r for r in results if isinstance(r, list)]
        shed = [r for r in results if isinstance(r, OverloadedError)]
        # Submissions run back-to-back on the loop: exactly max_pending are
        # admitted (filling one full batch), the rest shed deterministically.
        assert len(served) == 8 and len(shed) == 22
        assert stats["shed"] == 22
        oracle = RecommendationService.top_k(service, np.asarray([2]), 5)
        assert follow_up == [int(i) for i in oracle[0]]

    def test_block_policy_waits_for_capacity_instead_of_shedding(
            self, service, tiny_split):
        service.top_k = _slow_top_k(service, delay=0.02)

        async def scenario():
            frontend = AsyncRecommendationFrontend(
                service, max_batch_size=4, batch_window_ms=30_000,
                max_pending=4, shed="block")
            results = await asyncio.wait_for(
                asyncio.gather(*[frontend.recommend(u % tiny_split.num_users, 5)
                                 for u in range(12)]),
                timeout=30.0)
            stats = frontend.stats()
            await frontend.close()
            return results, stats

        results, stats = run(scenario())
        assert len(results) == 12 and all(isinstance(r, list) for r in results)
        assert stats["shed"] == 0
        assert stats["queue_high_water"] <= 4

    def test_queue_high_water_mark_tracked(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=64, batch_window_ms=20,
                    max_pending=64) as frontend:
                await asyncio.gather(*[frontend.recommend(u % 10, 5)
                                       for u in range(16)])
                return frontend.stats()

        stats = run(scenario())
        assert stats["queue_high_water"] == 16
        assert stats["pending"] == 0


class TestIngest:
    def test_concurrent_ingests_coalesce_into_one_merge(self, model, tiny_split):
        online = OnlineRecommendationService(model, tiny_split,
                                             compact_threshold=10 ** 9)

        async def scenario():
            async with AsyncRecommendationFrontend(
                    online, max_batch_size=4, batch_window_ms=20) as frontend:
                stats_list = await asyncio.gather(*[
                    frontend.ingest([user], [user % tiny_split.num_items])
                    for user in range(4)])
                return stats_list, frontend.stats()

        stats_list, frontend_stats = run(scenario())
        assert frontend_stats["ingest_batches"] == 1
        assert frontend_stats["ingest_events"] == 4
        for stats in stats_list:
            assert stats["coalesced_calls"] == 4
            assert stats["events"] == 4

    def test_ingested_items_drop_out_and_match_direct_service(
            self, model, tiny_split):
        online = OnlineRecommendationService(model, tiny_split,
                                             compact_threshold=10 ** 9,
                                             cache_size=0)

        async def scenario():
            async with AsyncRecommendationFrontend(
                    online, max_batch_size=8, batch_window_ms=20) as frontend:
                before = await frontend.recommend(0, 5)
                await frontend.ingest([0, 0], [before[0], before[1]])
                after = await frontend.recommend(0, 5)
                return before, after

        before, after = run(scenario())
        assert before[0] not in after and before[1] not in after
        assert after == [int(i) for i in online.top_k(np.asarray([0]), 5)[0]]

    def test_ingest_needs_an_online_service(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(service) as frontend:
                await frontend.ingest([0], [0])

        with pytest.raises(TypeError):
            run(scenario())

    def test_ingest_validates_alignment(self, model, tiny_split):
        online = OnlineRecommendationService(model, tiny_split)

        async def scenario():
            async with AsyncRecommendationFrontend(online) as frontend:
                await frontend.ingest([0, 1], [0])

        with pytest.raises(ValueError):
            run(scenario())

    def test_ingest_error_propagates_to_every_waiter(self, model, tiny_split):
        online = OnlineRecommendationService(model, tiny_split,
                                             compact_threshold=10 ** 9)

        async def scenario():
            async with AsyncRecommendationFrontend(
                    online, max_batch_size=2, batch_window_ms=20) as frontend:
                results = await asyncio.gather(
                    # Items beyond the catalogue fail inside service.ingest.
                    frontend.ingest([0], [tiny_split.num_items + 5]),
                    frontend.ingest([1], [tiny_split.num_items + 6]),
                    return_exceptions=True)
                assert frontend.pending == 0
                return results

        results = run(scenario())
        assert all(isinstance(r, IndexError) for r in results)


class TestLifecycle:
    def test_close_flushes_pending_requests(self, service):
        async def scenario():
            frontend = AsyncRecommendationFrontend(
                service, max_batch_size=64, batch_window_ms=30_000)
            pending = [asyncio.ensure_future(frontend.recommend(u, 5))
                       for u in range(3)]
            await asyncio.sleep(0)  # let the submissions enqueue
            await frontend.close()
            return await asyncio.gather(*pending), frontend.stats()

        results, stats = run(scenario())
        assert len(results) == 3 and all(isinstance(r, list) for r in results)
        assert stats["pending"] == 0

    def test_requests_after_close_raise(self, service):
        async def scenario():
            frontend = AsyncRecommendationFrontend(service)
            await frontend.close()
            await frontend.recommend(0, 5)

        with pytest.raises(RuntimeError):
            run(scenario())

    def test_scoring_error_propagates_and_releases_queue(self, service):
        def broken_top_k(users, k, exclude_train=True):
            raise RuntimeError("scoring backend down")

        service.top_k = broken_top_k

        async def scenario():
            frontend = AsyncRecommendationFrontend(
                service, max_batch_size=2, batch_window_ms=20)
            results = await asyncio.gather(
                frontend.recommend(0, 5), frontend.recommend(1, 5),
                return_exceptions=True)
            pending = frontend.pending
            await frontend.close()
            return results, pending

        results, pending = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert pending == 0

    def test_cancelled_waiter_does_not_poison_the_batch(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(
                    service, max_batch_size=64, batch_window_ms=30) as frontend:
                doomed = asyncio.ensure_future(frontend.recommend(0, 5))
                survivor = asyncio.ensure_future(frontend.recommend(1, 5))
                await asyncio.sleep(0)
                doomed.cancel()
                return await survivor

        result = run(scenario())
        assert result == [int(i) for i in service.top_k(np.asarray([1]), 5)[0]]

    def test_constructor_validation(self, service):
        with pytest.raises(ValueError):
            AsyncRecommendationFrontend(service, max_batch_size=0)
        with pytest.raises(ValueError):
            AsyncRecommendationFrontend(service, batch_window_ms=0.0)
        with pytest.raises(ValueError):
            AsyncRecommendationFrontend(service, max_pending=0)
        with pytest.raises(ValueError):
            AsyncRecommendationFrontend(service, shed="drop-everything")

    def test_invalid_k_rejected_before_queueing(self, service):
        async def scenario():
            async with AsyncRecommendationFrontend(service) as frontend:
                with pytest.raises(ValueError):
                    await frontend.recommend(0, 0)
                return frontend.stats()

        stats = run(scenario())
        assert stats["pending"] == 0 and stats["batches"] == 0
