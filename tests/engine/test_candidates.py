"""Tests for two-stage candidate serving (quantisation, bounds, certificates)."""

import numpy as np
import pytest

from repro.engine import (
    CandidateIndex,
    InferenceIndex,
    RecommendationService,
    ShardedCandidateIndex,
    ShardedInferenceIndex,
    UserItemIndex,
    quantize_item_matrix,
)
from repro.models import BprMF, MultiVAE


def _random_index(rng, num_users=30, num_items=80, dim=12, nnz=150,
                  dtype=np.float64):
    users = rng.integers(0, num_users, nnz)
    items = rng.integers(0, num_items, nnz)
    exclusion = UserItemIndex(num_users, num_items, users, items)
    return InferenceIndex(
        num_users, num_items,
        user_embeddings=rng.normal(size=(num_users, dim)),
        item_embeddings=rng.normal(size=(num_items, dim)),
        exclusion=exclusion, dtype=dtype)


class TestQuantizeItemMatrix:
    def test_int8_roundtrip_error_bounded(self, rng):
        matrix = rng.normal(size=(50, 16))
        block = quantize_item_matrix(matrix, "int8")
        assert block.codes.dtype == np.int8
        dequant = block.codes.astype(np.float64) * block.scales[:, None]
        scales = np.max(np.abs(matrix), axis=1) / 127.0
        assert (np.abs(matrix - dequant) <= scales[:, None] / 2 + 1e-12).all()

    def test_zero_rows_quantise_cleanly(self):
        matrix = np.zeros((3, 8))
        matrix[1] = 1.0
        block = quantize_item_matrix(matrix, "int8")
        assert (block.codes[0] == 0).all() and (block.codes[2] == 0).all()
        assert block.bound_norms[0] == 0.0

    def test_float32_mode_is_a_cast(self, rng):
        matrix = rng.normal(size=(20, 8))
        block = quantize_item_matrix(matrix, "float32")
        assert block.codes.dtype == np.float32
        assert block.scales is None
        np.testing.assert_array_equal(block.codes, matrix.astype(np.float32))

    def test_int8_snapshot_is_much_smaller(self, rng):
        matrix = rng.normal(size=(100, 64))
        block = quantize_item_matrix(matrix, "int8")
        assert matrix.nbytes / block.nbytes >= 3.0

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="candidate mode"):
            quantize_item_matrix(rng.normal(size=(4, 4)), "int4")

    @pytest.mark.parametrize("mode", ["int8", "float32"])
    def test_upper_bound_is_sound(self, rng, mode):
        """approx + ||u||*bound_norm must dominate the exact score everywhere."""
        items = rng.normal(size=(200, 24))
        users = rng.normal(size=(40, 24))
        block = quantize_item_matrix(items, mode)
        exact = users @ items.T
        approx = block.approx_scores(users)
        norms = np.linalg.norm(users, axis=1)
        upper = approx + norms[:, None] * block.bound_norms[None, :]
        assert (upper >= exact).all()
        # ... and so must the Cauchy–Schwarz norm cap.
        assert (norms[:, None] * block.item_norms[None, :] >= exact).all()


class TestCandidateIndex:
    def test_full_coverage_factor_matches_exact_bitwise(self, rng):
        """factor*k >= catalogue => no pruning, certified, bit-identical."""
        index = _random_index(rng)
        users = np.arange(index.num_users)
        exact = index.top_k(users, 10)
        backend = CandidateIndex(index, "int8", factor=index.num_items)
        ids, certificate = backend.top_k_with_certificate(users, 10)
        assert certificate.all_certified
        np.testing.assert_array_equal(ids, exact)

    @pytest.mark.parametrize("mode", ["int8", "float32"])
    def test_certified_rows_equal_exact(self, rng, mode):
        index = _random_index(rng)
        users = np.arange(index.num_users)
        exact = index.top_k(users, 8)
        ids, certificate = CandidateIndex(index, mode, 4).top_k_with_certificate(
            users, 8)
        np.testing.assert_array_equal(ids[certificate.certified],
                                      exact[certificate.certified])

    def test_train_items_never_served(self, rng):
        index = _random_index(rng)
        users = np.arange(index.num_users)
        ids = CandidateIndex(index, "int8", 2).top_k(users, 10)
        assert not index.exclusion.contains(users[:, None], ids).any()

    def test_exclude_train_toggle_changes_results(self, rng):
        index = _random_index(rng)
        backend = CandidateIndex(index, "float32", 4)
        users = np.arange(index.num_users)
        masked = backend.top_k(users, 10, exclude_train=True)
        unmasked = backend.top_k(users, 10, exclude_train=False)
        assert not np.array_equal(masked, unmasked)

    def test_certificate_counters_accumulate(self, rng):
        index = _random_index(rng)
        backend = CandidateIndex(index, "float32", 4)
        backend.top_k(np.arange(10), 5)
        backend.top_k(np.arange(10, 30), 5)
        assert backend.total_batches == 2
        assert backend.total_users == 30
        assert backend.last_certificate.num_users == 20

    def test_width_clamps_to_catalogue(self, rng):
        index = _random_index(rng, num_items=6, nnz=0)
        ids = CandidateIndex(index, "int8", 4).top_k(
            np.arange(index.num_users), 10, exclude_train=False)
        assert ids.shape == (index.num_users, 6)

    def test_score_pairs_stays_exact(self, rng):
        index = _random_index(rng)
        backend = CandidateIndex(index, "int8", 4)
        users = np.array([0, 3, 7])
        items = np.array([2, 5, 1])
        np.testing.assert_array_equal(backend.score_pairs(users, items),
                                      index.score_pairs(users, items))

    def test_validation_errors(self, rng):
        index = _random_index(rng)
        with pytest.raises(ValueError, match="positive integer"):
            CandidateIndex(index, "int8", 0)
        with pytest.raises(ValueError, match="candidate mode"):
            CandidateIndex(index, "fp16", 4)
        backend = CandidateIndex(index, "int8", 4)
        with pytest.raises(ValueError):
            backend.top_k(np.arange(4), 0)
        with pytest.raises(ValueError):
            backend.top_k(np.arange(4).reshape(2, 2), 3)

    def test_scorer_fallback_rejected(self, tiny_split):
        model = MultiVAE(tiny_split, seed=0)
        model.eval()
        index = InferenceIndex.from_model(model, tiny_split)
        with pytest.raises(ValueError, match="factorised"):
            CandidateIndex(index, "int8", 4)


class TestShardedCandidateIndex:
    @pytest.mark.parametrize("num_shards,policy", [(2, "contiguous"),
                                                   (3, "strided"),
                                                   (7, "contiguous")])
    def test_certified_rows_equal_exact(self, rng, num_shards, policy):
        index = _random_index(rng)
        users = np.arange(index.num_users)
        exact = index.top_k(users, 9)
        sharded = ShardedInferenceIndex.from_index(index, num_shards,
                                                   policy=policy)
        backend = ShardedCandidateIndex(sharded, "int8", 4)
        ids, certificate = backend.top_k_with_certificate(users, 9)
        assert ids.shape == exact.shape
        np.testing.assert_array_equal(ids[certificate.certified],
                                      exact[certificate.certified])

    def test_empty_shards_contribute_nothing(self, rng):
        # 6 items over 5 contiguous ceil-width-2 blocks leaves empty shards.
        index = _random_index(rng, num_items=6, nnz=20)
        sharded = ShardedInferenceIndex.from_index(index, 5)
        backend = ShardedCandidateIndex(sharded, "float32", 4)
        ids, certificate = backend.top_k_with_certificate(
            np.arange(index.num_users), 6, exclude_train=False)
        np.testing.assert_array_equal(
            ids[certificate.certified],
            index.top_k(np.arange(index.num_users), 6,
                        exclude_train=False)[certificate.certified])

    def test_quantized_bytes_sum_over_shards(self, rng):
        index = _random_index(rng)
        unsharded = CandidateIndex(index, "int8", 4)
        sharded = ShardedCandidateIndex(
            ShardedInferenceIndex.from_index(index, 4), "int8", 4)
        # Per-shard blocks re-store the same catalogue (modulo per-item
        # vectors, identical either way).
        assert sharded.quantized_nbytes == unsharded.quantized_nbytes


class TestServiceIntegration:
    @pytest.fixture()
    def model(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=2)
        model.eval()
        return model

    def test_certified_service_matches_exact_service(self, model):
        exact = RecommendationService(model)
        two_stage = RecommendationService(model, candidate_mode="float32",
                                          candidate_factor=4)
        users = np.arange(exact.num_users)
        expected = exact.top_k(users, 5)
        got = two_stage.top_k(users, 5)
        stats = two_stage.certificate_stats
        assert stats["users"] == exact.num_users
        certified = two_stage.candidates.last_certificate.certified
        np.testing.assert_array_equal(got[certified], expected[certified])

    def test_sharded_candidate_service(self, model):
        service = RecommendationService(model, num_shards=3,
                                        candidate_mode="int8",
                                        candidate_factor=6)
        assert isinstance(service.candidates, ShardedCandidateIndex)
        ids = service.top_k(np.arange(10), 4)
        assert ids.shape == (10, 4)
        assert service.certificate_stats["batches"] == 1

    def test_exact_path_reports_no_stats(self, model):
        service = RecommendationService(model)
        assert service.certificate_stats is None
        assert service.candidates is None

    def test_recommend_routes_through_candidates_and_cache(self, model):
        service = RecommendationService(model, candidate_mode="float32")
        first = service.recommend(0, k=5)
        second = service.recommend(0, k=5)
        assert first == second
        assert service.cache_hits == 1
        # The cached second call never reached the candidate backend.
        assert service.certificate_stats["batches"] == 1

    def test_refresh_requantises_snapshot(self, model):
        service = RecommendationService(model, candidate_mode="int8")
        before = service.candidates
        model.user_factors.data[:] = -model.user_factors.data
        model.item_factors.data[:] = -model.item_factors.data
        service.refresh()
        assert service.candidates is not before
        assert service.certificate_stats["batches"] == 0

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            RecommendationService(model, candidate_mode="int4")
        with pytest.raises(ValueError):
            RecommendationService(model, candidate_mode="int8",
                                  candidate_factor=0)

    def test_scorer_fallback_model_rejected(self, tiny_split):
        model = MultiVAE(tiny_split, seed=0)
        model.eval()
        with pytest.raises(ValueError, match="factorised"):
            RecommendationService(model, tiny_split, candidate_mode="int8")


class TestAdaptiveEscalation:
    """Escalated serving must always equal exhaustive exact search."""

    def _tight_index(self, rng, **kwargs):
        # Near-degenerate item embeddings cluster the scores so a factor-1
        # int8 pass cannot certify everyone — escalation has real work.
        index = _random_index(rng, **kwargs)
        index.item_embeddings *= 0.01
        index.item_embeddings += rng.normal(scale=1e-4,
                                            size=index.item_embeddings.shape)
        index._item_norms = None
        return index

    def test_adaptive_equals_exact_flat(self, rng):
        index = self._tight_index(rng)
        backend = CandidateIndex(index, "int8", factor=1)
        users = np.arange(index.num_users)
        got = backend.top_k_adaptive(users, 10, max_factor=16)
        np.testing.assert_array_equal(got, index.top_k(users, 10))

    def test_adaptive_equals_exact_sharded(self, rng):
        index = self._tight_index(rng)
        sharded = ShardedInferenceIndex.from_index(index, 4)
        backend = ShardedCandidateIndex(sharded, "int8", factor=1)
        users = np.arange(index.num_users)
        got = backend.top_k_adaptive(users, 10, max_factor=16)
        np.testing.assert_array_equal(got, sharded.top_k(users, 10))

    def test_escalation_counters_advance(self, rng):
        index = self._tight_index(rng)
        backend = CandidateIndex(index, "int8", factor=1)
        users = np.arange(index.num_users)
        backend.top_k_adaptive(users, 10, max_factor=16)
        # The tight scores force at least one doubling (or the certificate
        # fired everywhere, in which case nothing may be counted).
        uncertified_initially = backend.escalated_users > 0
        if uncertified_initially:
            assert backend.escalation_rounds >= 1
        else:
            assert backend.escalation_rounds == 0
            assert backend.exact_fallback_users == 0

    def test_max_factor_bounds_doubling_then_exact_fallback(self, rng):
        index = self._tight_index(rng)
        backend = CandidateIndex(index, "int8", factor=1)
        users = np.arange(index.num_users)
        # max_factor == factor: no doubling allowed — every uncertified user
        # must go straight to the exact fallback, and parity still holds.
        got = backend.top_k_adaptive(users, 10, max_factor=1)
        assert backend.escalation_rounds == 0
        np.testing.assert_array_equal(got, index.top_k(users, 10))

    def test_max_factor_below_factor_rejected(self, rng):
        backend = CandidateIndex(_random_index(rng), "int8", factor=4)
        with pytest.raises(ValueError, match="max_factor"):
            backend.top_k_adaptive(np.arange(5), 3, max_factor=2)

    def test_service_escalation_stats_and_parity(self, rng):
        index = self._tight_index(rng)
        exact = InferenceIndex(index.num_users, index.num_items,
                               user_embeddings=index.user_embeddings,
                               item_embeddings=index.item_embeddings,
                               exclusion=index.exclusion)
        service = RecommendationService(index=index, candidate_mode="int8",
                                        candidate_factor=1,
                                        candidate_escalation=True,
                                        max_candidate_factor=16)
        users = np.arange(index.num_users)
        np.testing.assert_array_equal(service.top_k(users, 10),
                                      exact.top_k(users, 10))
        stats = service.certificate_stats
        assert stats["escalation"] is True and stats["max_factor"] == 16
        assert stats["escalated_users"] == service.candidates.escalated_users
        assert stats["exact_fallback_users"] >= 0

    def test_service_escalation_requires_candidate_mode(self, tiny_split):
        model = BprMF(tiny_split, embedding_dim=8, seed=2)
        model.eval()
        with pytest.raises(ValueError, match="candidate_mode"):
            RecommendationService(model, candidate_escalation=True)
        with pytest.raises(ValueError, match="max_candidate_factor"):
            RecommendationService(model, candidate_mode="int8",
                                  candidate_factor=8, max_candidate_factor=4)

    def test_adaptive_does_not_inflate_aggregate_counters(self, rng):
        index = self._tight_index(rng)
        backend = CandidateIndex(index, "int8", factor=1)
        users = np.arange(index.num_users)
        backend.top_k_adaptive(users, 10, max_factor=16)
        # One served batch of N users — escalation re-serves must not
        # double-count them in the aggregate certification rate.
        assert backend.total_users == index.num_users
        assert backend.total_batches == 1
        assert backend.certified_users <= backend.total_users

    def test_adaptive_stops_doubling_once_catalogue_covered(self, rng):
        index = self._tight_index(rng, num_items=30)
        backend = CandidateIndex(index, "int8", factor=4)
        users = np.arange(index.num_users)
        # factor*k = 40 >= 30 items: the first pass is already exhaustive, so
        # doubling can never newly certify — uncertified users must go
        # straight to the exact fallback without burning escalation rounds.
        got = backend.top_k_adaptive(users, 10, max_factor=64)
        assert backend.escalation_rounds == 0
        np.testing.assert_array_equal(got, index.top_k(users, 10))
