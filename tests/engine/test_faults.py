"""Tests for the deterministic fault-injection harness (repro.engine.faults).

The harness's contract is determinism: the same plan observing the same
sequence of operations injects the same faults — across runs, threads, and
process boundaries (pickle).  Everything the serving stack's fault-tolerance
tests claim rests on that.
"""

import pickle
import threading

import pytest

from repro.engine import FaultAction, FaultPlan, FaultRule


class TestFaultRule:
    def test_at_matches_exact_indices(self):
        rule = FaultRule("site", "reset", at=3)
        assert not rule.matches(2)
        assert rule.matches(3)
        assert not rule.matches(4)

    def test_at_accepts_iterables(self):
        rule = FaultRule("site", "reset", at=(1, 4))
        assert [index for index in range(6) if rule.matches(index)] == [1, 4]

    def test_after_matches_every_later_index(self):
        rule = FaultRule("site", "reset", after=2)
        assert [index for index in range(5) if rule.matches(index)] == [2, 3, 4]

    def test_no_window_matches_everything(self):
        rule = FaultRule("site", "reset")
        assert all(rule.matches(index) for index in range(5))

    def test_count_bounds_firings(self):
        rule = FaultRule("site", "reset", count=2)
        assert rule.matches(0)
        rule.fired = 2
        assert not rule.matches(0)

    def test_at_and_after_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultRule("site", "reset", at=1, after=2)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="count"):
            FaultRule("site", "reset", count=0)
        with pytest.raises(ValueError, match="after"):
            FaultRule("site", "reset", after=-1)


class TestFaultPlan:
    def test_advance_ticks_one_counter_per_site(self):
        plan = FaultPlan()
        for _ in range(3):
            plan.advance("a")
        plan.advance("b")
        assert plan.requests_seen("a") == 3
        assert plan.requests_seen("b") == 1
        assert plan.requests_seen("never-seen") == 0

    def test_scheduled_fault_fires_at_its_index_only(self):
        plan = FaultPlan().inject("site", "delay", at=1, seconds=0.25)
        assert plan.advance("site") is None
        action = plan.advance("site")
        assert isinstance(action, FaultAction)
        assert action.kind == "delay"
        assert action.index == 1
        assert action.param("seconds") == 0.25
        assert action.param("missing", "default") == "default"
        assert plan.advance("site") is None

    def test_sites_are_independent(self):
        plan = FaultPlan().inject("a", "reset", at=0)
        assert plan.advance("b") is None  # does not consume a's index 0
        assert plan.advance("a").kind == "reset"

    def test_first_matching_rule_wins(self):
        plan = (FaultPlan()
                .inject("site", "reset", at=0)
                .inject("site", "garble", at=0))
        assert plan.advance("site").kind == "reset"

    def test_count_limits_an_unbounded_rule(self):
        plan = FaultPlan().inject("site", "reset", count=2)
        kinds = [getattr(plan.advance("site"), "kind", None) for _ in range(4)]
        assert kinds == ["reset", "reset", None, None]

    def test_fired_log_is_chronological(self):
        plan = (FaultPlan()
                .inject("a", "reset", at=1)
                .inject("b", "garble", at=0))
        plan.advance("a")
        plan.advance("b")
        plan.advance("a")
        assert plan.fired == [("b", 0, "garble"), ("a", 1, "reset")]

    def test_stats_counts_operations_and_injections(self):
        plan = FaultPlan(seed=7).inject("site", "reset", after=1)
        for _ in range(3):
            plan.advance("site")
        stats = plan.stats()
        assert stats["seed"] == 7
        assert stats["rules"] == 1
        assert stats["operations"] == {"site": 3}
        assert stats["injected"] == {"site": 2}
        assert stats["fired"] == 2

    def test_seeded_rng_is_reproducible(self):
        draws_a = [FaultPlan(seed=11).rng.random() for _ in range(1)]
        draws_b = [FaultPlan(seed=11).rng.random() for _ in range(1)]
        assert draws_a == draws_b

    def test_pickle_round_trip_continues_the_schedule(self):
        plan = FaultPlan(seed=5).inject("site", "reset", at=(1, 3))
        plan.advance("site")  # index 0: no fault
        plan.advance("site")  # index 1: fires
        clone = pickle.loads(pickle.dumps(plan))
        # The clone resumes at index 2 with the history intact.
        assert clone.requests_seen("site") == 2
        assert clone.fired == [("site", 1, "reset")]
        assert clone.advance("site") is None        # index 2
        assert clone.advance("site").kind == "reset"  # index 3
        # ...and it can be advanced concurrently (the lock was recreated).
        threads = [threading.Thread(target=clone.advance, args=("site",))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clone.requests_seen("site") == 12

    def test_concurrent_advance_never_loses_a_tick(self):
        plan = FaultPlan().inject("site", "reset", at=500)
        fired = []

        def worker():
            for _ in range(100):
                action = plan.advance("site")
                if action is not None:
                    fired.append(action)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.requests_seen("site") == 800
        assert len(fired) == 1  # exactly one thread drew index 500
