"""Tests for serving snapshots (repro.engine.snapshot) and process fan-out."""

import struct
import zlib

import numpy as np
import pytest

from repro.engine import (
    InferenceIndex,
    OnlineRecommendationService,
    ProcessExecutor,
    RecommendationService,
    SerialExecutor,
    SNAPSHOT_VERSION,
    ServingSnapshot,
    SnapshotFormatError,
    ThreadedExecutor,
    UserItemIndex,
    load_snapshot,
    quantize_item_matrix,
    save_snapshot,
    snapshot_info,
)
from repro.models import BprMF, MultiVAE

K = 6


@pytest.fixture()
def model(tiny_split):
    model = BprMF(tiny_split, embedding_dim=8, seed=2)
    model.eval()
    return model


@pytest.fixture()
def index(model, tiny_split):
    return InferenceIndex.from_model(model, tiny_split)


@pytest.fixture()
def snap_path(index, tmp_path):
    return save_snapshot(tmp_path / "serve.snap", index,
                         candidate_modes=("int8",),
                         metadata={"model": "bpr", "seed": 2})


class TestRoundTrip:
    def test_header_describes_the_index(self, index, snap_path):
        info = snapshot_info(snap_path)
        assert info["format_version"] == SNAPSHOT_VERSION
        assert info["num_users"] == index.num_users
        assert info["num_items"] == index.num_items
        assert info["dim"] == index.user_embeddings.shape[1]
        assert info["dtype"] == index.dtype.name
        assert info["candidate_modes"] == ["int8"]
        assert info["has_exclusion"] is True
        assert info["metadata"] == {"model": "bpr", "seed": 2}

    @pytest.mark.parametrize("mmap", [True, False])
    def test_sections_round_trip_bit_exact(self, index, snap_path, mmap):
        snapshot = load_snapshot(snap_path, mmap=mmap)
        np.testing.assert_array_equal(snapshot.section("user_embeddings"),
                                      index.user_embeddings)
        np.testing.assert_array_equal(snapshot.section("item_embeddings"),
                                      index.item_embeddings)
        np.testing.assert_array_equal(snapshot.section("item_norms"),
                                      index.item_norms)
        excl = snapshot.exclusion()
        np.testing.assert_array_equal(excl.indptr, index.exclusion.indptr)
        np.testing.assert_array_equal(excl.indices, index.exclusion.indices)

    def test_mmap_views_are_read_only_memmaps(self, snap_path):
        snapshot = load_snapshot(snap_path, mmap=True)
        for name in snapshot.section_names:
            section = snapshot.section(name)
            assert isinstance(section, np.memmap), name
            assert not section.flags.writeable, name
        with pytest.raises(ValueError):
            snapshot.section("user_embeddings")[0, 0] = 1.0

    def test_owning_load_gives_writable_arrays(self, snap_path):
        snapshot = load_snapshot(snap_path, mmap=False)
        section = snapshot.section("user_embeddings")
        assert not isinstance(section, np.memmap)
        section[0, 0] = 42.0  # owning copy: mutation must not raise

    def test_section_alignment(self, snap_path):
        info = snapshot_info(snap_path)
        for name, spec in info["sections"].items():
            assert spec["offset"] % 64 == 0, name

    def test_unknown_section_lists_available(self, snap_path):
        snapshot = load_snapshot(snap_path)
        with pytest.raises(KeyError, match="item_norms"):
            snapshot.section("nope")

    def test_exclusion_optional(self, index, tmp_path):
        bare = InferenceIndex(index.num_users, index.num_items,
                              user_embeddings=index.user_embeddings,
                              item_embeddings=index.item_embeddings)
        path = save_snapshot(tmp_path / "bare.snap", bare)
        snapshot = load_snapshot(path)
        assert not snapshot.has_exclusion
        assert snapshot.exclusion() is None
        assert snapshot.inference_index().exclusion is None

    def test_candidate_modes_deduped(self, index, tmp_path):
        path = save_snapshot(tmp_path / "dupe.snap", index,
                             candidate_modes=("int8", "int8"))
        assert snapshot_info(path)["candidate_modes"] == ["int8"]

    def test_repr_mentions_geometry(self, snap_path):
        text = repr(load_snapshot(snap_path))
        assert "mmap" in text and "users=" in text and "items=" in text


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="cannot read"):
            load_snapshot(tmp_path / "absent.snap")

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"definitely not a snapshot, but long enough to read")
        with pytest.raises(SnapshotFormatError, match="not a repro serving"):
            load_snapshot(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"REPRO")
        with pytest.raises(SnapshotFormatError, match="too short"):
            load_snapshot(path)

    def test_version_mismatch(self, snap_path):
        # Rewrite the preamble with a bumped version, same header length/crc.
        raw = snap_path.read_bytes()
        magic, _, header_len, crc = struct.unpack("<8sIQI", raw[:24])
        snap_path.write_bytes(
            struct.pack("<8sIQI", magic, SNAPSHOT_VERSION + 1, header_len, crc)
            + raw[24:])
        with pytest.raises(SnapshotFormatError, match="version"):
            load_snapshot(snap_path)

    def test_corrupted_header_fails_checksum(self, snap_path):
        raw = bytearray(snap_path.read_bytes())
        raw[30] ^= 0xFF  # flip a byte inside the JSON header
        snap_path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            load_snapshot(snap_path)

    def test_tampered_header_with_fixed_crc_cannot_lie_about_size(
            self, snap_path):
        # Even a checksum-consistent header cannot point sections past EOF.
        import json
        raw = snap_path.read_bytes()
        magic, version, header_len, _ = struct.unpack("<8sIQI", raw[:24])
        header = json.loads(raw[24:24 + header_len].decode("utf-8"))
        header["sections"]["item_norms"]["nbytes"] = 10 ** 12
        patched = json.dumps(header, sort_keys=True).encode("utf-8")
        snap_path.write_bytes(
            struct.pack("<8sIQI", magic, version, len(patched),
                        zlib.crc32(patched))
            + patched + raw[24 + header_len:])
        with pytest.raises(SnapshotFormatError,
                           match="does not match|past"):
            load_snapshot(snap_path)

    def _rewrite_header(self, snap_path, mutate):
        """Apply ``mutate(header)`` and re-checksum, keeping the data region."""
        import json
        raw = snap_path.read_bytes()
        magic, version, header_len, _ = struct.unpack("<8sIQI", raw[:24])
        header = json.loads(raw[24:24 + header_len].decode("utf-8"))
        mutate(header)
        patched = json.dumps(header, sort_keys=True).encode("utf-8")
        snap_path.write_bytes(
            struct.pack("<8sIQI", magic, version, len(patched),
                        zlib.crc32(patched))
            + patched + raw[24 + header_len:])

    def test_negative_offset_rejected_despite_valid_crc(self, snap_path):
        # A negative offset would alias the preamble/header bytes as data.
        def mutate(header):
            header["sections"]["item_norms"]["offset"] = -64
        self._rewrite_header(snap_path, mutate)
        with pytest.raises(SnapshotFormatError, match="negative"):
            load_snapshot(snap_path)

    def test_nbytes_inconsistent_with_shape_rejected(self, snap_path):
        # nbytes must equal prod(shape) * itemsize or the section view would
        # reshape-fail (mmap) or read garbage (owning load).
        def mutate(header):
            header["sections"]["item_norms"]["nbytes"] -= 8
        self._rewrite_header(snap_path, mutate)
        with pytest.raises(SnapshotFormatError, match="does not match"):
            load_snapshot(snap_path)

    def test_negative_dimension_rejected(self, snap_path):
        def mutate(header):
            header["sections"]["item_norms"]["shape"] = [-1]
        self._rewrite_header(snap_path, mutate)
        with pytest.raises(SnapshotFormatError, match="negative"):
            load_snapshot(snap_path)

    def test_missing_section_table_rejected(self, snap_path):
        def mutate(header):
            del header["sections"]
        self._rewrite_header(snap_path, mutate)
        with pytest.raises(SnapshotFormatError, match="section table"):
            load_snapshot(snap_path)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_truncated_sections(self, snap_path, mmap):
        raw = snap_path.read_bytes()
        snap_path.write_bytes(raw[:len(raw) - 128])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(snap_path, mmap=mmap)

    def test_truncated_header(self, snap_path):
        snap_path.write_bytes(snap_path.read_bytes()[:30])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(snap_path)

    def test_format_error_is_a_value_error(self):
        assert issubclass(SnapshotFormatError, ValueError)

    def test_save_rejects_unknown_candidate_mode(self, index, tmp_path):
        with pytest.raises(ValueError, match="unknown candidate mode"):
            save_snapshot(tmp_path / "x.snap", index, candidate_modes=("pq",))

    def test_save_rejects_scorer_fallback(self, tiny_split, tmp_path):
        vae = MultiVAE(tiny_split, embedding_dim=8, seed=0)
        vae.eval()
        scorer = InferenceIndex.from_model(vae, tiny_split)
        with pytest.raises(ValueError, match="factorised"):
            save_snapshot(tmp_path / "x.snap", scorer)

    def test_failed_save_leaves_no_temp_file(self, index, tmp_path):
        with pytest.raises(ValueError):
            save_snapshot(tmp_path / "x.snap", index, candidate_modes=("pq",))
        assert list(tmp_path.iterdir()) == []


class TestServingParity:
    def _oracle(self, index, users):
        return index.top_k(users, K)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_inference_index_serves_identically(self, index, snap_path, mmap):
        users = np.arange(index.num_users)
        rebuilt = load_snapshot(snap_path, mmap=mmap).inference_index()
        np.testing.assert_array_equal(rebuilt.top_k(users, K),
                                      self._oracle(index, users))

    def test_stored_block_matches_requantisation(self, index, snap_path):
        snapshot = load_snapshot(snap_path)
        stored = snapshot.quantized_block("int8")
        fresh = quantize_item_matrix(index.item_embeddings, "int8",
                                     item_norms=index.item_norms)
        np.testing.assert_array_equal(stored.codes, fresh.codes)
        np.testing.assert_array_equal(stored.scales, fresh.scales)
        np.testing.assert_array_equal(stored.bound_norms, fresh.bound_norms)

    def test_unstored_mode_falls_back_to_quantising(self, index, snap_path):
        snapshot = load_snapshot(snap_path)
        block = snapshot.quantized_block("float32")
        fresh = quantize_item_matrix(index.item_embeddings, "float32",
                                     item_norms=index.item_norms)
        np.testing.assert_array_equal(block.codes, fresh.codes)
        with pytest.raises(ValueError, match="unknown candidate mode"):
            snapshot.quantized_block("pq")

    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    def test_sharded_index_parity(self, index, snap_path, policy):
        users = np.arange(index.num_users)
        sharded = load_snapshot(snap_path).sharded_index(3, policy=policy)
        np.testing.assert_array_equal(sharded.top_k(users, K),
                                      self._oracle(index, users))

    @pytest.mark.parametrize("mode", [None, "int8"])
    def test_service_snapshot_kwarg_parity(self, index, snap_path, mode):
        users = np.arange(index.num_users)
        with RecommendationService(index=index, num_shards=2,
                                   candidate_mode=mode) as oracle:
            expected = oracle.top_k(users, K)
        for source in (snap_path, load_snapshot(snap_path)):
            with RecommendationService(snapshot=source, num_shards=2,
                                       candidate_mode=mode) as service:
                np.testing.assert_array_equal(service.top_k(users, K),
                                              expected)


class TestProcessExecutor:
    def test_requires_at_least_one_worker(self, snap_path):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessExecutor(snap_path, 2, max_workers=0)

    def test_bind_check_rejects_mismatched_geometry(self, snap_path):
        executor = ProcessExecutor(snap_path, 2)
        with pytest.raises(ValueError, match="shard"):
            executor.bind_check(3, "contiguous")
        executor.close()

    def test_close_is_idempotent_and_context_managed(self, snap_path):
        with ProcessExecutor(snap_path, 2) as executor:
            executor.close()
        executor.close()  # second close is a no-op

    def test_process_fanout_matches_serial(self, index, snap_path):
        users = np.arange(index.num_users)
        with RecommendationService(index=index, num_shards=2) as oracle:
            expected = oracle.top_k(users, K)
        with RecommendationService(snapshot=snap_path, num_shards=2,
                                   executor="process") as service:
            assert isinstance(service._executor, ProcessExecutor)
            np.testing.assert_array_equal(service.top_k(users, K), expected)

    def test_refresh_rejects_stale_process_workers(self, tiny_split,
                                                   snap_path):
        # The workers map the superseded snapshot file; silently fanning
        # re-frozen embeddings out to them would serve divergent results.
        changed = BprMF(tiny_split, embedding_dim=8, seed=99)
        changed.eval()
        with RecommendationService(snapshot=snap_path, num_shards=2,
                                   executor="process") as service:
            with pytest.raises(ValueError, match="process executor"):
                service.refresh(changed)

    def test_spurious_refresh_with_process_executor_is_a_noop(
            self, model, snap_path):
        # Unchanged embeddings: refresh keeps the whole stack, including the
        # snapshot-bound executor — no raise, no detach.
        with RecommendationService(snapshot=snap_path, num_shards=2,
                                   executor="process") as service:
            assert service.refresh(model) is service
            assert service.snapshot is not None

    def test_worker_cache_keyed_by_file_identity(self, model, tiny_split,
                                                 index, snap_path):
        from repro.engine.snapshot import (_WORKER_BLOCKS, _WORKER_SHARDS,
                                           _worker_shard)
        first = _worker_shard(str(snap_path), 2, "contiguous", 0)
        again = _worker_shard(str(snap_path), 2, "contiguous", 0)
        assert again is first  # same file: cached
        changed = BprMF(tiny_split, embedding_dim=8, seed=99)
        changed.eval()
        save_snapshot(snap_path, InferenceIndex.from_model(changed, tiny_split),
                      candidate_modes=("int8",))
        fresh = _worker_shard(str(snap_path), 2, "contiguous", 0)
        assert fresh is not first  # republish invalidates
        assert not np.array_equal(fresh[0].item_embeddings,
                                  first[0].item_embeddings)
        # superseded entries were evicted, not accumulated
        keys = [key for key in _WORKER_SHARDS if key[0] == str(snap_path)]
        assert len(keys) == 1 and keys[0][1] == fresh[3]
        assert all(key[1] == fresh[3] for key in _WORKER_BLOCKS
                   if key[0] == str(snap_path))


class TestOnlineProcessParity:
    """Payload fan-out must see the router's online state, not just the file:
    ingested pairs must stay excluded and grown user ids must serve — the
    same results as the in-process serial path, bit for bit."""

    @pytest.mark.parametrize("mode", [None, "int8"])
    def test_ingest_then_serve_matches_serial_path(self, index, snap_path,
                                                   mode):
        new_user = index.num_users + 2  # leaves an id gap to backfill
        all_users = np.concatenate([np.arange(index.num_users), [new_user]])
        events = (np.asarray([0, 1, 1, 3, new_user, new_user]),
                  np.asarray([2, 5, 6, 1, 0, 4]))
        late_events = (np.asarray([2]), np.asarray([7]))
        with OnlineRecommendationService(
                snapshot=snap_path, num_shards=2,
                candidate_mode=mode) as oracle, OnlineRecommendationService(
                snapshot=snap_path, num_shards=2, executor="process",
                candidate_mode=mode) as proc:
            assert oracle.ingest(*events) == proc.ingest(*events)
            served = proc.top_k(all_users, K)
            np.testing.assert_array_equal(served,
                                          oracle.top_k(all_users, K))
            # Freshly ingested train items must not be recommended back.
            rows = {int(u): i for i, u in enumerate(all_users)}
            for user, item in zip(*events):
                assert int(item) not in served[rows[int(user)]]
            # Compaction swaps the base CSR out from under the snapshot's
            # stored one; the payload path must keep excluding everything.
            oracle.compact(publish=False)
            proc.compact(publish=False)
            np.testing.assert_array_equal(proc.top_k(all_users, K),
                                          oracle.top_k(all_users, K))
            assert oracle.ingest(*late_events) == proc.ingest(*late_events)
            np.testing.assert_array_equal(proc.top_k(all_users, K),
                                          oracle.top_k(all_users, K))


class TestExecutorHygiene:
    @pytest.mark.parametrize("workers", [0, -3])
    def test_rejects_non_positive_workers(self, workers):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadedExecutor(max_workers=workers)

    @pytest.mark.parametrize("executor_cls", [SerialExecutor,
                                              ThreadedExecutor])
    def test_context_manager_closes(self, executor_cls):
        with executor_cls() as executor:
            assert executor.run([lambda: 1, lambda: 2]) == [1, 2]
        executor.close()  # already closed: still a no-op

    def test_service_close_shuts_executor_down(self, index):
        executor = ThreadedExecutor(max_workers=2)
        service = RecommendationService(index=index, num_shards=2,
                                        executor=executor)
        service.top_k(np.arange(4), K)
        service.close()
        assert executor._pool is None


class TestServiceWiring:
    def test_snapshot_and_index_are_exclusive(self, index, snap_path):
        with pytest.raises(ValueError, match="not both"):
            RecommendationService(index=index, snapshot=snap_path)

    def test_process_executor_requires_snapshot(self, index):
        with pytest.raises(ValueError, match="requires snapshot"):
            RecommendationService(index=index, num_shards=2,
                                  executor="process")

    def test_unknown_executor_name(self, index):
        with pytest.raises(ValueError, match="executor"):
            RecommendationService(index=index, num_shards=2,
                                  executor="gpu")

    def test_snapshot_sets_dtype_and_property(self, snap_path):
        with RecommendationService(snapshot=snap_path) as service:
            assert service.snapshot is not None
            assert service.index.dtype == service.snapshot.dtype

    def test_refresh_detaches_the_snapshot(self, model, tiny_split, snap_path):
        service = RecommendationService(model, tiny_split, num_shards=1)
        assert service.snapshot is None
        with RecommendationService(snapshot=snap_path) as snap_service:
            assert snap_service.snapshot is not None


class TestOnlinePublish:
    def _service(self, model, tmp_path, **kwargs):
        return OnlineRecommendationService(
            model, snapshot_path=tmp_path / "live.snap", **kwargs)

    def test_publish_then_reload_serves_identically(self, model, tmp_path):
        service = self._service(model, tmp_path)
        users = np.arange(service.num_users)
        expected = service.top_k(users, K)
        path = service.publish_snapshot()
        service.close()
        with RecommendationService(snapshot=path) as reloaded:
            np.testing.assert_array_equal(reloaded.top_k(users, K), expected)

    def test_publish_folds_pending_delta(self, model, tmp_path):
        service = self._service(model, tmp_path)
        users = np.arange(service.num_users)
        service.ingest(np.asarray([0, 1]), np.asarray([3, 4]))
        expected = service.top_k(users, K)
        path = service.publish_snapshot()
        assert service.delta_size == 0  # publishing compacted first
        service.close()
        with RecommendationService(snapshot=path) as reloaded:
            np.testing.assert_array_equal(reloaded.top_k(users, K), expected)

    def test_compact_publishes_in_background(self, model, tmp_path):
        service = self._service(model, tmp_path)
        service.ingest(np.asarray([0]), np.asarray([5]))
        service.compact()
        service.wait_published()
        assert service.publishes == 1
        assert (tmp_path / "live.snap").exists()
        stats = service.online_stats
        assert stats["publishes"] == 1
        assert stats["snapshot_path"].endswith("live.snap")
        service.close()

    def test_background_publish_error_surfaces_on_wait(self, model, tmp_path):
        service = OnlineRecommendationService(
            model, snapshot_path=tmp_path / "missing-dir" / "live.snap")
        service.publish_snapshot(background=True)
        with pytest.raises(OSError):
            service.wait_published()
        service.close()

    def test_publish_without_a_path_anywhere_raises(self, model):
        service = OnlineRecommendationService(model)
        with pytest.raises(ValueError, match="path"):
            service.publish_snapshot()
        service.close()

    def test_overlay_with_pending_delta_cannot_be_saved_directly(
            self, model, tmp_path):
        service = OnlineRecommendationService(model)
        service.ingest(np.asarray([0]), np.asarray([2]))
        with pytest.raises(ValueError, match="compact"):
            save_snapshot(tmp_path / "x.snap", service.index)
        service.close()

    def test_served_user_item_space_survives_round_trip(self, model, tmp_path):
        service = self._service(model, tmp_path)
        path = service.publish_snapshot()
        service.close()
        snapshot = load_snapshot(path)
        assert isinstance(snapshot, ServingSnapshot)
        assert "compactions" in snapshot.metadata
        assert isinstance(snapshot.exclusion(), UserItemIndex)
